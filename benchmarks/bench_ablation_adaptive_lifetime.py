"""Ablation: global vs per-node adaptive pseudonym lifetimes.

Section III-C: "it might be better to let each node adapt the lifetime
of its pseudonyms based on the availability characteristics of the
other participating nodes."  We implement the local variant — each node
sizes lifetimes from an EWMA of its *own* offline stints — and compare
it against the global ``r x Toff`` setting under *heterogeneous* churn,
where a single global lifetime cannot fit everyone: half the population
is rarely online (long stints; the global lifetime is too short for
them), half is almost always online (the global lifetime is
unnecessarily long, i.e. worse privacy).

Expected outcome: adaptive lifetimes keep robustness on par with the
global setting while cutting the lifetime granted to high-availability
nodes (shorter traffic-analysis exposure windows), and granting
low-availability nodes the longer lifetimes they actually need.
"""

import numpy as np

from repro.churn import homogeneous_specs
from repro.core import AdaptiveLifetime, Overlay
from repro.experiments import format_table, make_config, make_trust_graph
from repro.metrics import MetricsCollector

from conftest import SEED, emit


def _heterogeneous_specs(num_nodes, mean_offline):
    """Two availability classes with *different offline stints*.

    The low half disappears for 2x the nominal Toff (think mobile
    users), the high half for Toff/5 (always-on desktops).  A global
    lifetime of 3 x Toff is then simultaneously too short for the first
    class (r_effective = 1.5) and needlessly long for the second
    (r_effective = 15, a wide traffic-analysis window).
    """
    low = homogeneous_specs(num_nodes // 2, 0.15, 2.0 * mean_offline)
    high = homogeneous_specs(num_nodes - num_nodes // 2, 0.8, mean_offline / 5.0)
    return low + high


def _run(trust_graph, config, scale):
    specs = _heterogeneous_specs(scale.num_nodes, scale.mean_offline_time)
    overlay = Overlay.build(trust_graph, config, churn_specs=specs)
    collector = MetricsCollector(overlay, interval=scale.collector_interval)
    overlay.start()
    collector.start()
    overlay.run_until(scale.total_horizon)
    tail = scale.measure_window / scale.total_horizon
    return overlay, collector.disconnected.tail_mean(tail)


class TestAdaptiveLifetimeAblation:
    def test_bench_adaptive_vs_global(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        fixed_config = make_config(scale, alpha=0.5, f=0.5, seed=SEED)
        adaptive_config = fixed_config.replace(adaptive_lifetime=True)

        def run():
            fixed_overlay, fixed_disc = _run(trust_graph, fixed_config, scale)
            adaptive_overlay, adaptive_disc = _run(
                trust_graph, adaptive_config, scale
            )
            return {
                "fixed": (fixed_overlay, fixed_disc),
                "adaptive": (adaptive_overlay, adaptive_disc),
            }

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        adaptive_overlay, adaptive_disc = outcomes["adaptive"]
        _, fixed_disc = outcomes["fixed"]

        # Lifetimes the adaptive policy actually grants, split by the
        # node's availability class (first half low, second half high).
        half = scale.num_nodes // 2
        low_lifetimes = []
        high_lifetimes = []
        for node in adaptive_overlay.nodes:
            policy = node._lifetime_policy
            if not isinstance(policy, AdaptiveLifetime) or policy.observations == 0:
                continue
            bucket = low_lifetimes if node.node_id < half else high_lifetimes
            bucket.append(policy.next_lifetime())

        rows = [
            ("fixed (global r x Toff)", fixed_disc, fixed_config.pseudonym_lifetime),
            (
                "adaptive (low-availability half)",
                adaptive_disc,
                float(np.mean(low_lifetimes)) if low_lifetimes else None,
            ),
            (
                "adaptive (high-availability half)",
                adaptive_disc,
                float(np.mean(high_lifetimes)) if high_lifetimes else None,
            ),
        ]
        emit(
            results_dir,
            "ablation_adaptive_lifetime",
            format_table(
                ["policy", "disconnected", "mean granted lifetime (sp)"],
                rows,
                title="Ablation: global vs adaptive pseudonym lifetimes "
                "(heterogeneous churn, mean alpha ~ 0.5)",
            ),
        )

        # Robustness on par with the global setting...
        assert adaptive_disc <= fixed_disc + 0.05
        # ...while differentiating lifetimes by availability class:
        # rarely-online nodes get clearly longer lifetimes than
        # almost-always-online nodes.
        assert low_lifetimes and high_lifetimes
        assert np.mean(low_lifetimes) > 1.5 * np.mean(high_lifetimes)