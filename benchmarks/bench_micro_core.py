"""Micro-benchmarks of the protocol's hot paths.

These use pytest-benchmark's normal statistical mode (the operations
are microseconds-scale): slot-sampler batch folding, cache merging,
snapshot construction, and the connectivity metric.
"""

import numpy as np

from repro import Overlay, SystemConfig
from repro.core import Pseudonym, PseudonymCache, SamplerSlots
from repro.graphs import fraction_disconnected
from repro.privlink import Address
from repro.experiments import SMOKE, make_config, make_trust_graph

from conftest import SEED


def _pseudonyms(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Pseudonym(
            value=int(value),
            address=Address(int(value) + 1),
            expires_at=float(expiry),
        )
        for value, expiry in zip(
            rng.integers(0, 1 << 62, size=count),
            rng.uniform(10.0, 1000.0, size=count),
        )
    ]


class TestSlotMicro:
    def test_bench_offer_batch_40_into_50(self, benchmark):
        slots = SamplerSlots(50, np.random.default_rng(SEED))
        batch = _pseudonyms(40)
        benchmark(slots.offer_batch, batch)

    def test_bench_offer_single(self, benchmark):
        slots = SamplerSlots(50, np.random.default_rng(SEED))
        pseudonym = _pseudonyms(1)[0]
        benchmark(slots.offer, pseudonym)

    def test_bench_sample(self, benchmark):
        slots = SamplerSlots(50, np.random.default_rng(SEED))
        slots.offer_batch(_pseudonyms(200))
        result = benchmark(slots.sample)
        assert result


class TestCacheMicro:
    def test_bench_merge_40_into_400(self, benchmark):
        cache = PseudonymCache(400)
        cache.merge(_pseudonyms(400, seed=1), now=0.0)
        batch = _pseudonyms(40, seed=2)
        benchmark(cache.merge, batch, 1.0)

    def test_bench_select_for_shuffle(self, benchmark):
        cache = PseudonymCache(400)
        cache.merge(_pseudonyms(400, seed=1), now=0.0)
        rng = np.random.default_rng(SEED)
        result = benchmark(cache.select_for_shuffle, rng, 39, 1.0)
        assert len(result) == 39


class TestSnapshotMicro:
    def _converged_overlay(self):
        graph = make_trust_graph(SMOKE, f=0.5, seed=SEED)
        config = make_config(SMOKE, alpha=0.5, f=0.5, seed=SEED)
        overlay = Overlay.build(graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(15.0)
        return overlay

    def test_bench_snapshot(self, benchmark):
        overlay = self._converged_overlay()
        snapshot = benchmark(overlay.snapshot)
        assert snapshot.number_of_nodes() == SMOKE.num_nodes

    def test_bench_fraction_disconnected(self, benchmark):
        overlay = self._converged_overlay()
        snapshot = overlay.snapshot()
        result = benchmark(fraction_disconnected, snapshot)
        assert 0.0 <= result <= 1.0


class TestSimulationMicro:
    def test_bench_one_shuffle_period(self, benchmark):
        """Cost of advancing a converged smoke-scale system one period."""
        graph = make_trust_graph(SMOKE, f=0.5, seed=SEED)
        config = make_config(SMOKE, alpha=0.5, f=0.5, seed=SEED)
        overlay = Overlay.build(graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(10.0)
        state = {"now": 10.0}

        def advance():
            state["now"] += 1.0
            overlay.run_until(state["now"])

        benchmark.pedantic(advance, rounds=30, iterations=1)
