"""Ablation: Brahms-style slot sampling vs naive newest-cache links.

Design question (DESIGN.md §4): does min-wise slot sampling matter, or
would linking to whatever arrived last in the cache do?  Both keep the
overlay connected at moderate churn, but the slot sampler converges to
a *stable* random link set (the paper's Figure 9 observation that
"nodes quickly find the best overlay links [and] do not need to make
any further changes"), while the newest-cache variant rebuilds its link
set continuously — several times the steady-state replacement
overhead, each replacement being a new privacy-preserving circuit to
establish.
"""

from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)

from conftest import SEED, emit


def _replacement_rate(result):
    """Stable links-replaced-per-node-per-period rate."""
    return result.collector.replacements_per_node.tail_mean(0.25)


class TestSamplerAblation:
    def test_bench_sampler_modes(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)

        def run():
            outcomes = {}
            for mode in ("slots", "cache"):
                config = make_config(scale, alpha=0.5, f=0.5, seed=SEED).replace(
                    sampler_mode=mode
                )
                outcomes[mode] = run_overlay_experiment(
                    trust_graph,
                    config,
                    horizon=scale.total_horizon,
                    measure_window=scale.measure_window,
                )
            return outcomes

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (
                mode,
                outcome.disconnected,
                _replacement_rate(outcome),
                outcome.full_edge_count,
            )
            for mode, outcome in outcomes.items()
        ]
        emit(
            results_dir,
            "ablation_sampler",
            format_table(
                ["sampler", "disconnected", "replacements_per_sp", "edges"],
                rows,
                title="Ablation: slot sampling vs newest-cache links (alpha=0.5)",
            ),
        )

        # Both keep the overlay connected at alpha=0.5...
        assert outcomes["slots"].disconnected < 0.05
        assert outcomes["cache"].disconnected < 0.10
        # ...but the naive sampler thrashes its links: at least twice
        # the steady-state replacement overhead of the slot sampler.
        assert _replacement_rate(outcomes["cache"]) > 2.0 * _replacement_rate(
            outcomes["slots"]
        )
