"""Figure 4: normalized average path length vs availability.

Paper claims reproduced here: the overlay's normalized path length is
significantly lower than the trust graph's and closely matches the
Erdős–Rényi baseline across availability values.
"""

from conftest import emit


class TestFigure4:
    def test_bench_path_length_sweeps(self, benchmark, sweeps, scale, results_dir):
        def collect():
            return sweeps

        result = benchmark.pedantic(collect, rounds=1, iterations=1)
        for f, sweep in result.items():
            emit(results_dir, f"fig4_f{f:g}", sweep.format_table("path"))

        for f, sweep in result.items():
            for point in sweep.points:
                if point.alpha < 0.25:
                    continue  # both baselines degenerate at extreme churn
                # Overlay paths significantly shorter than the trust graph.
                assert point.overlay_path_length < point.trust_path_length, (
                    f"overlay paths not shorter at f={f}, alpha={point.alpha}"
                )
                # And close to the random baseline (within 2x).
                assert (
                    point.overlay_path_length < 2.0 * point.random_path_length
                ), f"overlay far from random baseline at f={f}, alpha={point.alpha}"
