"""Ablation: degree-adaptive sampler size S vs uniform S.

The paper sizes each node's sampler as S = target - trusted_degree so
that "all nodes will have a similar number of overlay links".  With a
uniform S (min_pseudonym_links = target_degree), hubs stack pseudonym
links on top of their many trust links, re-skewing the degree
distribution.
"""

import numpy as np

from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)

from conftest import SEED, emit


def _degree_spread(result):
    degrees = np.array([degree for _, degree in result.snapshot.degree()])
    if degrees.size == 0 or degrees.mean() == 0:
        return 0.0
    return float(degrees.std() / degrees.mean())


class TestAdaptiveSAblation:
    def test_bench_adaptive_vs_uniform(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)

        def run():
            adaptive_config = make_config(scale, alpha=0.5, f=0.5, seed=SEED)
            uniform_config = adaptive_config.replace(
                min_pseudonym_links=scale.target_degree
            )
            return {
                "adaptive": run_overlay_experiment(
                    trust_graph,
                    adaptive_config,
                    horizon=scale.total_horizon,
                    measure_window=scale.measure_window,
                ),
                "uniform": run_overlay_experiment(
                    trust_graph,
                    uniform_config,
                    horizon=scale.total_horizon,
                    measure_window=scale.measure_window,
                ),
            }

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (name, outcome.disconnected, _degree_spread(outcome), outcome.full_edge_count)
            for name, outcome in outcomes.items()
        ]
        emit(
            results_dir,
            "ablation_adaptive_s",
            format_table(
                ["s_allocation", "disconnected", "degree_spread", "edges"],
                rows,
                title="Ablation: adaptive vs uniform sampler size S (alpha=0.5)",
            ),
        )

        # Uniform S gives hubs extra links: more edges overall and a
        # degree distribution at least as skewed as the adaptive one.
        assert (
            outcomes["uniform"].full_edge_count
            > outcomes["adaptive"].full_edge_count
        )
        assert outcomes["adaptive"].disconnected < 0.05
