"""Ablation: shuffle-length (gossip fanout l) sensitivity.

Each shuffle message carries up to l pseudonyms (Table I: 40).  Small l
slows pseudonym mixing — returning nodes take longer to refill their
samplers — while large l mostly adds message size.  This bench sweeps l
at low availability, where mixing speed matters most.
"""

from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)

from conftest import SEED, emit


class TestFanoutAblation:
    def test_bench_shuffle_lengths(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        lengths = sorted({2, max(4, scale.shuffle_length // 4), scale.shuffle_length})

        def run():
            outcomes = {}
            for length in lengths:
                config = make_config(scale, alpha=0.25, f=0.5, seed=SEED).replace(
                    shuffle_length=length
                )
                outcomes[length] = run_overlay_experiment(
                    trust_graph,
                    config,
                    horizon=scale.total_horizon,
                    measure_window=scale.measure_window,
                )
            return outcomes

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (length, outcome.disconnected, outcome.full_edge_count)
            for length, outcome in sorted(outcomes.items())
        ]
        emit(
            results_dir,
            "ablation_fanout",
            format_table(
                ["shuffle_length", "disconnected", "edges"],
                rows,
                title="Ablation: shuffle-length sweep (alpha=0.25)",
            ),
        )

        default = outcomes[scale.shuffle_length]
        minimal = outcomes[lengths[0]]
        # The default fanout is at least as robust as the minimal one.
        assert default.disconnected <= minimal.disconnected + 0.05
        assert default.disconnected < 0.25
