"""Figure 9: pseudonym-link replacements per node per shuffle period.

Paper claims reproduced here: with non-expiring pseudonyms (r = inf)
nodes quickly find the best links and the replacement rate falls to
(near) zero; finite lifetimes sustain a positive replacement rate that
is higher for r = 3 than for r = 9; and the r = 9 run oscillates early
because the initial synchronized pseudonym cohort expires together.
"""

import math

import numpy as np

from repro.experiments import figure9

from conftest import SEED, emit

_RATIOS = (3.0, 9.0, math.inf)


class TestFigure9:
    def test_bench_replacement_rates(self, benchmark, scale, results_dir):
        def run():
            return figure9(scale, seed=SEED, alpha=0.25, ratios=_RATIOS)

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(results_dir, "fig9_replacement", result.format_table())

        stable = result.stable_rates
        # Ordering: no expiry < slow expiry < fast expiry.
        assert stable[math.inf] < stable[9.0] < stable[3.0]
        # Non-expiring pseudonyms almost stop reconfiguring.
        assert stable[math.inf] < 0.5
        # Finite lifetimes sustain a clearly positive replacement rate.
        assert stable[3.0] > 1.0

        # Early oscillation for r = 9: the peak replacement rate in the
        # first pseudonym generation far exceeds the stable rate.
        series = result.series[9.0]
        lifetime = 9.0 * scale.mean_offline_time
        early_values = [
            value
            for time, value in series
            if lifetime * 0.5 <= time <= lifetime * 2.5
        ]
        assert max(early_values) > 2.0 * stable[9.0], (
            "no expiry-cohort oscillation visible for r=9"
        )
