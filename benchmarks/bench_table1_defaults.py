"""Table I: default system parameters.

Asserts that :class:`repro.config.SystemConfig` defaults reproduce the
paper's Table I exactly, and benchmarks one overlay run under the
default configuration (scaled population).
"""

import pytest

from repro import SystemConfig
from repro.experiments import make_config, make_trust_graph, run_overlay_experiment

from conftest import SEED, emit


class TestTable1:
    def test_defaults_match_table1(self):
        config = SystemConfig()
        assert config.num_nodes == 1000
        assert config.sampling_f == 0.5
        assert config.mean_offline_time == 30.0
        assert config.pseudonym_lifetime == 90.0  # 3 x Toff
        assert config.cache_size == 400
        assert config.shuffle_length == 40
        assert config.target_degree == 50

    def test_bench_default_scenario(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        config = make_config(scale, alpha=0.5, f=0.5, seed=SEED)

        def run():
            return run_overlay_experiment(
                trust_graph,
                config,
                horizon=scale.total_horizon,
                measure_window=scale.measure_window,
            )

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(
            results_dir,
            "table1_defaults",
            "Table I default scenario "
            f"({scale.name} scale, alpha=0.5, f=0.5):\n"
            f"  overlay disconnected fraction: {result.disconnected:.4f}\n"
            f"  trust-graph disconnected fraction: {result.trust_disconnected:.4f}\n"
            f"  overlay edges (all nodes): {result.full_edge_count}",
        )
        assert result.disconnected < 0.05
        assert result.disconnected <= result.trust_disconnected
