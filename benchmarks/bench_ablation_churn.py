"""Ablation: churn-model sensitivity (homogeneous vs heterogeneous vs
heavy-tailed).

The paper evaluates homogeneous exponential churn only, while its churn
model's source (Yao et al.) emphasizes heterogeneity and heavy-tailed
session times.  This bench drives the overlay with three churn models
of equal average availability and checks that the robustness conclusion
is not an artifact of the homogeneous-exponential choice:

* homogeneous exponential (the paper's setting);
* heterogeneous: half the population at low availability, half high;
* Pareto (heavy-tailed) on/off durations.
"""

from repro.churn import NodeChurnSpec, Pareto, homogeneous_specs
from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)

from conftest import SEED, emit

_ALPHA = 0.35


def _heterogeneous_specs(num_nodes, mean_offline):
    """Half the nodes at alpha=0.1, half at alpha=0.6 (mean 0.35)."""
    low = homogeneous_specs(num_nodes // 2, 0.1, mean_offline)
    high = homogeneous_specs(num_nodes - num_nodes // 2, 0.6, mean_offline)
    return low + high


def _pareto_specs(num_nodes, alpha, mean_offline):
    mean_online = alpha * mean_offline / (1.0 - alpha)
    return [
        NodeChurnSpec(Pareto(mean_online, shape=2.5), Pareto(mean_offline, shape=2.5))
        for _ in range(num_nodes)
    ]


class TestChurnAblation:
    def test_bench_churn_models(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        config = make_config(scale, alpha=_ALPHA, f=0.5, seed=SEED)

        def run():
            outcomes = {}
            outcomes["exponential"] = run_overlay_experiment(
                trust_graph,
                config,
                horizon=scale.total_horizon,
                measure_window=scale.measure_window,
            )
            # Heterogeneous and Pareto models reuse the same protocol
            # parameters, only the churn specs change.
            from repro.core import Overlay
            from repro.metrics import MetricsCollector

            for name, specs in (
                (
                    "heterogeneous",
                    _heterogeneous_specs(
                        scale.num_nodes, scale.mean_offline_time
                    ),
                ),
                (
                    "pareto",
                    _pareto_specs(
                        scale.num_nodes, _ALPHA, scale.mean_offline_time
                    ),
                ),
            ):
                overlay = Overlay.build(trust_graph, config, churn_specs=specs)
                collector = MetricsCollector(
                    overlay, interval=scale.collector_interval
                )
                overlay.start()
                collector.start()
                overlay.run_until(scale.total_horizon)
                tail = scale.measure_window / scale.total_horizon
                outcomes[name] = (
                    collector.disconnected.tail_mean(tail),
                    collector.trust_disconnected.tail_mean(tail),
                )
            return outcomes

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        exponential = outcomes["exponential"]
        rows = [
            (
                "exponential",
                exponential.disconnected,
                exponential.trust_disconnected,
            ),
            ("heterogeneous", *outcomes["heterogeneous"]),
            ("pareto", *outcomes["pareto"]),
        ]
        emit(
            results_dir,
            "ablation_churn",
            format_table(
                ["churn_model", "overlay_disconnected", "trust_disconnected"],
                rows,
                title=f"Ablation: churn models at mean alpha={_ALPHA}",
            ),
        )

        # The overlay clearly beats the trust baseline under every model.
        for name, overlay_disc, trust_disc in rows:
            assert overlay_disc < 0.6 * trust_disc + 0.02, (
                f"overlay not robust under {name} churn "
                f"({overlay_disc:.3f} vs trust {trust_disc:.3f})"
            )
