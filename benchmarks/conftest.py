"""Shared fixtures for the benchmark harness.

Each ``bench_figN`` module regenerates one figure of the paper at the
scale selected by the environment (``REPRO_FULL=1`` for paper scale,
default quick — see DESIGN.md §5), prints the same rows/series the
paper plots, saves them under ``benchmarks/results/``, and asserts the
qualitative shape the paper reports.

Figures 3 and 4 come from the same availability sweeps, so the sweeps
are computed once per session and shared.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import availability_sweep, scale_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SEED = 1


@pytest.fixture(scope="session")
def scale():
    """The experiment scale for this benchmark session."""
    return scale_from_env()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sweeps(scale):
    """Availability sweeps for f = 1.0 and f = 0.5 (Figures 3 and 4)."""
    return {
        f: availability_sweep(scale, f=f, seed=SEED) for f in (1.0, 0.5)
    }


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
