"""Extension: the price of privacy vs a centralized directory.

Section II-E rejects a centralized node directory because a compromise
leaks the entire membership in one shot; Whisper (related work) accepts
that trade.  This bench runs both designs side by side and quantifies
what the decentralized, pseudonym-based protocol pays for avoiding the
directory:

* **convergence** — the directory overlay is connected almost
  immediately; the gossip overlay needs some tens of shuffling periods;
* **steady-state robustness** — both end up comparable;
* **privacy under compromise** — breaching the directory exposes every
  identity and the full link structure; compromising any single node of
  the gossip overlay exposes only its own trust neighborhood.
"""

from repro.baselines import CentralizedOverlay
from repro.core import Overlay
from repro.experiments import format_table, make_config, make_trust_graph
from repro.metrics import MetricsCollector

from conftest import SEED, emit

_ALPHA = 0.5


class TestCentralizedBaseline:
    def test_bench_price_of_privacy(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        config = make_config(scale, alpha=_ALPHA, f=0.5, seed=SEED)

        def run():
            gossip = Overlay.build(trust_graph, config)
            gossip_collector = MetricsCollector(gossip, interval=1.0)
            gossip.start()
            gossip_collector.start()
            gossip.run_until(scale.total_horizon)

            central = CentralizedOverlay.build(config)
            central.start()
            central.run_until(scale.total_horizon)
            from repro.graphs import fraction_disconnected

            return {
                "gossip_convergence": gossip_collector.convergence_time(0.05),
                "gossip_stable": gossip_collector.disconnected.tail_mean(0.25),
                "gossip_messages": gossip.stats().messages_sent,
                "central_stable": fraction_disconnected(central.snapshot()),
                "central_messages": central.messages_sent,
                "breach": central.directory.breach(),
            }

        outcome = benchmark.pedantic(run, rounds=1, iterations=1)
        breach = outcome["breach"]
        rows = [
            (
                "pseudonym gossip (this paper)",
                outcome["gossip_stable"],
                outcome["gossip_convergence"],
                outcome["gossip_messages"],
                "one node's friends",
            ),
            (
                "central directory (rejected)",
                outcome["central_stable"],
                0.0,
                outcome["central_messages"],
                f"{breach.identities_exposed} identities + "
                f"{len(breach.links)} links",
            ),
        ]
        emit(
            results_dir,
            "baseline_centralized",
            format_table(
                [
                    "design",
                    "disconnected",
                    "convergence_sp",
                    "messages",
                    "single compromise leaks",
                ],
                rows,
                title=f"Price of privacy (alpha={_ALPHA})",
            ),
        )

        # Comparable steady-state robustness...
        assert outcome["gossip_stable"] < 0.05
        assert outcome["central_stable"] < 0.05
        # ...for a bounded convergence price...
        assert outcome["gossip_convergence"] is not None
        assert outcome["gossip_convergence"] < scale.total_horizon / 2
        # ...while the directory's compromise surface is total.
        assert breach.identities_exposed == config.num_nodes
