"""Ablation: trust-graph substrate sensitivity.

The evaluation uses Facebook-crawl samples; is the overlay's advantage
an artifact of that substrate?  This bench repeats the core comparison
(overlay vs trust graph at moderate churn) on three structurally
different trust graphs of matched size:

* the default synthetic Facebook-like graph (power law + clustering);
* a community-partitioned social graph (dense clusters, thin bridges —
  the worst case for a trust overlay);
* a Watts–Strogatz small world (high clustering, narrow degree
  distribution — no hubs at all).
"""

import networkx as nx

from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)
from repro.graphs import generate_community_social_graph, sample_trust_graph
from repro.rng import RandomStreams

from conftest import SEED, emit

_ALPHA = 0.3


def _substrates(scale):
    streams = RandomStreams(SEED)
    substrates = {"facebook-like": make_trust_graph(scale, f=0.5, seed=SEED)}

    community_source = generate_community_social_graph(
        scale.num_nodes * 4,
        num_communities=8,
        edges_per_node=8,
        intra_probability=0.95,
        rng=streams.substream("community-source"),
    )
    substrates["community"] = sample_trust_graph(
        community_source,
        scale.num_nodes,
        f=0.5,
        rng=streams.substream("community-sample"),
    )

    substrates["small-world"] = nx.connected_watts_strogatz_graph(
        scale.num_nodes, 8, 0.1, seed=SEED
    )
    return substrates


class TestSubstrateSensitivity:
    def test_bench_substrates(self, benchmark, scale, results_dir):
        config = make_config(scale, alpha=_ALPHA, f=0.5, seed=SEED)
        substrates = _substrates(scale)

        def run():
            outcomes = {}
            for name, graph in substrates.items():
                outcomes[name] = run_overlay_experiment(
                    graph,
                    config,
                    horizon=scale.total_horizon,
                    measure_window=scale.measure_window,
                )
            return outcomes

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (
                name,
                substrates[name].number_of_edges(),
                result.trust_disconnected,
                result.disconnected,
            )
            for name, result in outcomes.items()
        ]
        emit(
            results_dir,
            "substrate_sensitivity",
            format_table(
                ["substrate", "trust_edges", "trust_disconnected", "overlay_disconnected"],
                rows,
                title=f"Substrate sensitivity at alpha={_ALPHA}",
            ),
        )

        for name, result in outcomes.items():
            # The overlay stays robust on every substrate...
            assert result.disconnected < 0.1, f"overlay fragile on {name}"
            # ...and never does worse than the bare trust graph.
            assert result.disconnected <= result.trust_disconnected + 0.02, name