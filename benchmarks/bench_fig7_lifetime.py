"""Figure 7: connectivity for different pseudonym lifetimes.

Paper claims reproduced here: robustness improves monotonically in the
lifetime ratio r; for r = 9 and r = infinite the overlay closely
resembles the random graph, r = 3 degrades only at very low
availability, and r = 1 behaves much more like the bare trust graph
because most pseudonym links of returning nodes have expired.
"""

import math

from repro.experiments import figure7

from conftest import SEED, emit

_RATIOS = (1.0, 3.0, 9.0, math.inf)


class TestFigure7:
    def test_bench_lifetime_sweep(self, benchmark, scale, results_dir):
        alphas = tuple(alpha for alpha in scale.alphas if alpha <= 0.75)

        def run():
            return figure7(scale, seed=SEED, ratios=_RATIOS, alphas=alphas)

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(results_dir, "fig7_lifetimes", result.format_table())

        curves = result.overlay_curves
        for index, alpha in enumerate(result.alphas):
            if alpha < 0.25:
                continue  # extreme churn: every variant struggles
            # Monotone improvement in r (with noise tolerance).
            assert curves[3.0][index] <= curves[1.0][index] + 0.08
            assert curves[9.0][index] <= curves[3.0][index] + 0.05
            assert curves[math.inf][index] <= curves[9.0][index] + 0.05
            # r >= 9 keeps the overlay nearly fully connected.
            assert curves[9.0][index] < 0.12
            assert curves[math.inf][index] < 0.12

        # r = 1 is dominated by the trust graph's weakness at low alpha:
        # it must be clearly worse than r = 9 somewhere below 0.5.
        gaps = [
            curves[1.0][index] - curves[9.0][index]
            for index, alpha in enumerate(result.alphas)
            if alpha <= 0.5
        ]
        assert max(gaps) > 0.05, "r=1 never degraded relative to r=9"
