"""Figure 5: degree distribution over online nodes at alpha = 0.5.

Paper claims reproduced here: pseudonym links shift the trust graph's
degree distribution to the right, close to the random graph's, but less
concentrated around the mean because skewed trust degrees remain.
"""

import numpy as np
import pytest

from repro.experiments import figure5

from conftest import SEED, emit


def _stats(histogram):
    degrees = np.array(
        [degree for degree, count in histogram.items() for _ in range(count)],
        dtype=float,
    )
    return degrees.mean(), degrees.std()


class TestFigure5:
    def test_bench_degree_distributions(self, benchmark, scale, results_dir):
        def run():
            return figure5(scale, seed=SEED, fs=(1.0, 0.5), alpha=0.5)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        for f, dist in results.items():
            emit(results_dir, f"fig5_f{f:g}", dist.format_table())

        for f, dist in results.items():
            trust_mean, trust_std = _stats(dist.trust_histogram)
            overlay_mean, overlay_std = _stats(dist.overlay_histogram)
            random_mean, random_std = _stats(dist.random_histogram)

            # Distribution shifted right of the trust graph...
            assert overlay_mean > 2.0 * trust_mean, f"no right shift at f={f}"
            # ...matching the equal-size ER reference in the mean...
            assert overlay_mean == pytest.approx(random_mean, rel=0.15)
            # ...but less concentrated than ER because trust links skew it.
            assert overlay_std > random_std, (
                f"overlay unexpectedly tighter than ER at f={f}"
            )
