"""Ablation: pseudonym-service backend (interactive vs storage-backed).

Section III-B offers two realizations of the pseudonym service: an
interactive rendezvous (Tor-hidden-service-like; messages to an offline
owner are lost — the paper's ideal model) and a third-party storage
service ("email or a DHT") where messages queue until the owner polls.
This bench runs the full overlay on both and compares robustness at low
availability, where queued delivery plausibly helps rejoining nodes
refresh their links faster.
"""

from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)
from repro.privlink import (
    IdealAnonymityService,
    LinkLayer,
    MailboxPseudonymService,
    MailboxStore,
    NodeDirectory,
)

from conftest import SEED, emit

_ALPHA = 0.25


def _mailbox_link_layer_factory(retention):
    def factory(sim, rng):
        directory = NodeDirectory()
        anonymity = IdealAnonymityService(sim, directory, rng, max_latency=0.05)
        store = MailboxStore(capacity_per_box=64, retention=retention)
        pseudonym = MailboxPseudonymService(
            sim, directory, store=store, poll_interval=0.5
        )
        layer = LinkLayer(directory, anonymity, pseudonym)
        layer.mailbox_store = store  # expose for reporting
        return layer

    return factory


class TestBackendAblation:
    def test_bench_pseudonym_backends(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        config = make_config(scale, alpha=_ALPHA, f=0.5, seed=SEED)
        retention = 2.0 * scale.mean_offline_time

        def run():
            ideal = run_overlay_experiment(
                trust_graph,
                config,
                horizon=scale.total_horizon,
                measure_window=scale.measure_window,
            )
            # The mailbox variant needs its own link layer.
            from repro.core import Overlay
            from repro.metrics import MetricsCollector

            overlay = Overlay.build(
                trust_graph,
                config,
                link_layer_factory=_mailbox_link_layer_factory(retention),
            )
            collector = MetricsCollector(overlay, interval=scale.collector_interval)
            overlay.start()
            collector.start()
            overlay.run_until(scale.total_horizon)
            tail = scale.measure_window / scale.total_horizon
            return {
                "ideal": ideal.disconnected,
                "mailbox": collector.disconnected.tail_mean(tail),
                "mailbox_store": overlay.link_layer.mailbox_store,
                "trust": ideal.trust_disconnected,
            }

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        store = outcomes["mailbox_store"]
        rows = [
            ("ideal (drop while offline)", outcomes["ideal"]),
            ("mailbox (queue + poll)", outcomes["mailbox"]),
            ("trust baseline", outcomes["trust"]),
        ]
        emit(
            results_dir,
            "ablation_backend",
            format_table(
                ["pseudonym backend", "disconnected"],
                rows,
                title=(
                    f"Ablation: pseudonym-service backends at alpha={_ALPHA} "
                    f"(mailbox stored {store.stored_count} messages, "
                    f"{store.expired_count} expired unread)"
                ),
            ),
        )

        # Both backends must clearly beat the trust baseline; the
        # storage-backed service must not *hurt* robustness.
        assert outcomes["ideal"] < 0.6 * outcomes["trust"] + 0.02
        assert outcomes["mailbox"] < 0.6 * outcomes["trust"] + 0.02
        assert outcomes["mailbox"] <= outcomes["ideal"] + 0.05
