"""Figure 6: messages sent per shuffle period, ranked by trust degree.

Paper claims reproduced here: the system-wide average is 2 messages per
node per shuffle period (one request sent, one response on average);
nodes with larger overlay degree answer more shuffle requests and thus
send more messages.
"""

import numpy as np

from repro.experiments import figure6

from conftest import SEED, emit


class TestFigure6:
    def test_bench_message_overhead(self, benchmark, scale, results_dir):
        def run():
            return figure6(scale, seed=SEED, fs=(1.0, 0.5), alpha=0.5)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        for f, result in results.items():
            emit(results_dir, f"fig6_f{f:g}", result.format_table())

        for f, result in results.items():
            # System-wide mean near 2 messages per period: 1 request per
            # node plus a response whenever the partner is online (the
            # paper's idealized count of exactly 2 assumes an always-
            # responsive partner).
            assert 1.3 < result.system_mean < 2.6, (
                f"system mean {result.system_mean} far from 2 at f={f}"
            )
            rates = np.array(
                [entry.messages_per_period for entry in result.overheads]
            )
            degrees = np.array(
                [entry.max_out_degree for entry in result.overheads]
            )
            # Higher-degree nodes answer more requests: positive
            # correlation between overlay degree and message rate.
            correlation = np.corrcoef(degrees, rates)[0, 1]
            assert correlation > 0.2, (
                f"degree/message-rate correlation {correlation} at f={f}"
            )
            # The top-ranked (hub) node sends more than the median node.
            median_rate = float(np.median(rates))
            assert result.overheads[0].messages_per_period > median_rate
