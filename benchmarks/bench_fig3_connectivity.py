"""Figure 3: fraction of disconnected nodes vs availability.

Paper claims reproduced here: as availability decreases the trust
graphs partition badly, while the overlay stays highly connected down
to alpha = 0.25 (f = 0.5) and even alpha = 0.125 (f = 1.0, where the
denser trust graph helps), tracking the random-graph baseline.
"""

from conftest import emit


class TestFigure3:
    def test_bench_connectivity_sweeps(self, benchmark, sweeps, scale, results_dir):
        def collect():
            return sweeps  # session fixture: computed once

        result = benchmark.pedantic(collect, rounds=1, iterations=1)
        for f, sweep in result.items():
            emit(
                results_dir,
                f"fig3_f{f:g}",
                sweep.format_table("disconnected"),
            )

        for f, sweep in result.items():
            by_alpha = {point.alpha: point for point in sweep.points}
            for alpha, point in by_alpha.items():
                # The overlay never does (meaningfully) worse than the
                # bare trust graph.
                assert (
                    point.overlay_disconnected
                    <= point.trust_disconnected + 0.05
                ), f"overlay worse than trust graph at f={f}, alpha={alpha}"
            # High connectivity for alpha >= 0.25 (the paper's claim).
            for point in sweep.points:
                if point.alpha >= 0.25:
                    assert point.overlay_disconnected < 0.25, (
                        f"overlay badly partitioned at f={f}, "
                        f"alpha={point.alpha}"
                    )
                if point.alpha >= 0.5:
                    assert point.overlay_disconnected < 0.05

        # The denser f=1.0 trust graph yields better low-alpha overlay
        # connectivity than f=0.5 (Figure 3's second claim).
        lowest_alpha = min(p.alpha for p in result[1.0].points)
        dense = next(
            p for p in result[1.0].points if p.alpha == lowest_alpha
        )
        sparse = next(
            p for p in result[0.5].points if p.alpha == lowest_alpha
        )
        assert dense.overlay_disconnected <= sparse.overlay_disconnected + 0.05
