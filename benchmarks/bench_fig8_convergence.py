"""Figure 8: connectivity over time at alpha = 0.25.

Paper claims reproduced here: starting from a cold overlay, the
disconnected fraction drops sharply within a few shuffling periods and
stabilizes near full connectivity, while the trust-graph baseline stays
heavily partitioned for the whole run.
"""

from repro.experiments import figure8

from conftest import SEED, emit


class TestFigure8:
    def test_bench_convergence(self, benchmark, scale, results_dir):
        def run():
            return figure8(scale, seed=SEED, alpha=0.25, ratios=(3.0, 9.0))

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        emit(results_dir, "fig8_convergence", result.format_table())

        # The overlay converges: by the end, both r-variants are far
        # below the trust baseline's stable disconnection level.
        trust_tail = result.trust_series.tail_mean(0.3)
        for ratio, series in result.overlay_series.items():
            overlay_tail = series.tail_mean(0.3)
            assert overlay_tail < 0.5 * trust_tail, (
                f"overlay r={ratio} did not separate from the trust "
                f"baseline ({overlay_tail:.3f} vs {trust_tail:.3f})"
            )
        # r=9 stabilizes at (near-)full connectivity.
        assert result.overlay_series[9.0].tail_mean(0.3) < 0.12

        # Convergence happens early: within 40% of the horizon the r=9
        # overlay already dipped below 0.1 disconnected.
        early = result.overlay_series[9.0].time_to_reach(0.1, below=True)
        assert early is not None and early < 0.4 * scale.fig8_horizon

        # The trust baseline never converges.
        assert trust_tail > 0.15
