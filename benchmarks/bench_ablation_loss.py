"""Ablation: message loss tolerance.

The evaluation assumes ideal reliable links (§IV); real anonymity
networks lose messages.  Gossip is naturally redundant — every period
brings a fresh exchange — so moderate loss should barely dent
robustness.  This bench sweeps independent per-message loss rates.
"""

from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
)
from repro.core import Overlay
from repro.metrics import MetricsCollector
from repro.privlink import make_ideal_link_layer

from conftest import SEED, emit

_ALPHA = 0.35
_LOSS_RATES = (0.0, 0.1, 0.3)


class TestLossAblation:
    def test_bench_loss_rates(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        config = make_config(scale, alpha=_ALPHA, f=0.5, seed=SEED)

        def run():
            outcomes = {}
            for loss_rate in _LOSS_RATES:
                overlay = Overlay.build(
                    trust_graph,
                    config,
                    link_layer_factory=lambda sim, rng, rate=loss_rate: (
                        make_ideal_link_layer(
                            sim,
                            rng,
                            max_latency=config.message_latency,
                            loss_rate=rate,
                        )
                    ),
                )
                collector = MetricsCollector(
                    overlay, interval=scale.collector_interval
                )
                overlay.start()
                collector.start()
                overlay.run_until(scale.total_horizon)
                tail = scale.measure_window / scale.total_horizon
                outcomes[loss_rate] = (
                    collector.disconnected.tail_mean(tail),
                    collector.trust_disconnected.tail_mean(tail),
                    overlay.link_layer.anonymity.loss.dropped
                    + overlay.link_layer.pseudonym.loss.dropped,
                )
            return outcomes

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (rate, overlay_disc, trust_disc, dropped)
            for rate, (overlay_disc, trust_disc, dropped) in sorted(
                outcomes.items()
            )
        ]
        emit(
            results_dir,
            "ablation_loss",
            format_table(
                ["loss_rate", "overlay_disconnected", "trust_disconnected", "messages_lost"],
                rows,
                title=f"Ablation: per-message loss at alpha={_ALPHA}",
            ),
        )

        lossless = outcomes[0.0][0]
        # The loss machinery is exercised...
        assert outcomes[0.3][2] > 0
        assert outcomes[0.0][2] == 0
        # ...and even 30% loss costs little robustness (graceful decay).
        assert outcomes[0.1][0] <= lossless + 0.05
        assert outcomes[0.3][0] <= lossless + 0.10
        # Loss never helps the bare trust baseline either way; the
        # overlay still beats it.
        assert outcomes[0.3][0] < outcomes[0.3][1]
