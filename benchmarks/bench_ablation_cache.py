"""Ablation: pseudonym cache size sensitivity.

The cache is the gossip working set (Table I uses 400 entries for 1000
nodes).  Too small a cache limits how many distinct pseudonyms a node
can relay, slowing mixing; beyond a saturation point extra capacity
buys little.  This bench sweeps the cache size at fixed availability.
"""

from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)

from conftest import SEED, emit


class TestCacheAblation:
    def test_bench_cache_sizes(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        sizes = sorted(
            {
                max(4, scale.cache_size // 16),
                max(8, scale.cache_size // 4),
                scale.cache_size,
            }
        )

        def run():
            outcomes = {}
            for size in sizes:
                config = make_config(scale, alpha=0.25, f=0.5, seed=SEED).replace(
                    cache_size=size
                )
                outcomes[size] = run_overlay_experiment(
                    trust_graph,
                    config,
                    horizon=scale.total_horizon,
                    measure_window=scale.measure_window,
                )
            return outcomes

        outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (size, outcome.disconnected, outcome.full_edge_count)
            for size, outcome in sorted(outcomes.items())
        ]
        emit(
            results_dir,
            "ablation_cache",
            format_table(
                ["cache_size", "disconnected", "edges"],
                rows,
                title="Ablation: cache-size sweep (alpha=0.25)",
            ),
        )

        # The default cache keeps the overlay robust; a drastically
        # smaller cache must not do better than the default.
        default = outcomes[scale.cache_size]
        tiny = outcomes[sizes[0]]
        assert default.disconnected <= tiny.disconnected + 0.05
        assert default.disconnected < 0.25
