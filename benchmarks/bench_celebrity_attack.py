"""Extension experiment: celebrity-attack resilience.

The paper's related work (MCONs) motivates degree caps by the
"celebrity attack": compromising or removing a hub of the social graph
devastates a trust-based overlay.  The rewired overlay should resist it
— its pseudonym links spread degree nearly uniformly.  This bench
removes the top-degree nodes of the *trust graph* from both topologies
and compares the damage, and also reports single-point-of-failure
statistics (articulation ratio) for both.
"""

from repro.analysis import articulation_ratio, targeted_failure_curve
from repro.experiments import (
    format_table,
    make_config,
    make_trust_graph,
    run_overlay_experiment,
)

from conftest import SEED, emit

_FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.35)


class TestCelebrityAttack:
    def test_bench_hub_removal(self, benchmark, scale, results_dir):
        trust_graph = make_trust_graph(scale, f=0.5, seed=SEED)
        # Measure the overlay at full availability so the comparison
        # isolates topology (churn robustness is Figures 3/7/8).
        config = make_config(scale, alpha=0.9, f=0.5, seed=SEED)

        def run():
            result = run_overlay_experiment(
                trust_graph,
                config,
                horizon=scale.total_horizon / 2,
                measure_window=scale.measure_window / 2,
                with_churn=False,
            )
            overlay_snapshot = result.snapshot
            # The attacker compromises the same celebrity *users* in
            # both topologies: removal follows the trust graph's hub
            # order everywhere.
            hub_order = [
                node
                for node, _ in sorted(
                    trust_graph.degree(), key=lambda pair: (-pair[1], pair[0])
                )
            ]
            trust_points = targeted_failure_curve(
                trust_graph,
                fractions=_FRACTIONS,
                strategy="custom",
                removal_order=hub_order,
            )
            overlay_points = targeted_failure_curve(
                overlay_snapshot,
                fractions=_FRACTIONS,
                strategy="custom",
                removal_order=hub_order,
            )
            return {
                "trust_points": trust_points,
                "overlay_points": overlay_points,
                "trust_articulation": articulation_ratio(trust_graph),
                "overlay_articulation": articulation_ratio(overlay_snapshot),
            }

        outcome = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            (
                point.removed_fraction,
                trust_point.disconnected,
                point.disconnected,
            )
            for trust_point, point in zip(
                outcome["trust_points"], outcome["overlay_points"]
            )
        ]
        emit(
            results_dir,
            "celebrity_attack",
            format_table(
                ["removed_fraction", "trust_disconnected", "overlay_disconnected"],
                rows,
                title=(
                    "Celebrity attack: removing top-degree nodes "
                    f"(articulation ratio: trust "
                    f"{outcome['trust_articulation']:.3f}, overlay "
                    f"{outcome['overlay_articulation']:.3f})"
                ),
            ),
        )

        trust_final = outcome["trust_points"][-1].disconnected
        overlay_final = outcome["overlay_points"][-1].disconnected
        # Hub compromise damages the trust graph measurably while the
        # overlay shrugs it off (its links are spread uniformly).
        assert trust_final > 0.05
        assert overlay_final < 0.5 * trust_final
        # The overlay has no more single points of failure than the
        # trust graph (usually none at all).
        assert outcome["overlay_articulation"] <= outcome["trust_articulation"]
