#!/usr/bin/env python
"""Threat-model walkthrough: what can observers actually learn?

Reproduces the reasoning of the paper's Section III-E on a live
system:

1. **Static exposure** — what a colluding coalition's position in the
   trust graph gives it (known IDs, vertex-cut power).
2. **Size estimation** (III-E4) — observers count distinct live
   pseudonyms to estimate the group size; allowed by the privacy model.
3. **Timing-analysis link detection** (III-E2) — colluders inject a
   marked pseudonym and watch for its reappearance; the paper argues
   success is unreliable, which the measured precision shows.
4. **External observer view** — with the mixnet link layer, the traffic
   log shows that no sender-receiver channel is ever directly visible.

Run with:  python examples/attack_analysis.py
"""

from repro import Overlay, SystemConfig
from repro.attacks import (
    ObserverCoalition,
    coalition_exposure,
    estimate_overlay_size,
    run_link_detection_trials,
)
from repro.graphs import generate_social_graph, sample_trust_graph
from repro.privlink import TrafficLog, make_mixnet_link_layer
from repro.rng import RandomStreams


def main() -> None:
    streams = RandomStreams(seed=31337)
    social = generate_social_graph(1500, rng=streams.substream("social"))
    trust = sample_trust_graph(social, 120, f=0.5, rng=streams.substream("invite"))

    config = SystemConfig(
        num_nodes=120,
        availability=0.6,
        mean_offline_time=20.0,
        cache_size=80,
        shuffle_length=12,
        target_degree=15,
        seed=31337,
    )

    # 1. Static exposure of a 3-node coalition.
    coalition_members = [0, 1, 2]
    exposure = coalition_exposure(trust, coalition_members)
    print("1. static coalition exposure")
    print(f"   members: {coalition_members}")
    print(f"   IDs known (members + their friends): {len(exposure.known_ids)}")
    print(f"   forms a vertex cut: {exposure.forms_vertex_cut}")
    print(f"   certainly-inferable trust edges: {len(exposure.isolated_pairs)}")

    # 2. Size estimation by internal observers.
    overlay = Overlay.build(trust, config)
    coalition = ObserverCoalition(overlay, coalition_members)
    coalition.install()
    overlay.start()
    overlay.run_until(55.0)
    estimate = estimate_overlay_size(overlay, coalition, window=50.0)
    print("\n2. overlay-size estimation (paper III-E4: permitted knowledge)")
    print(f"   true size: {estimate.true_size}")
    print(f"   live-pseudonym estimate: {estimate.live_value_estimate}")
    print(f"   relative error: {estimate.relative_error:.1%}")

    # 3. Timing-analysis link detection.
    print("\n3. timing-analysis link detection (paper III-E2)")
    pairs = []
    for observer_n in coalition_members:
        neighbors = list(trust.neighbors(observer_n))
        if len(neighbors) >= 2:
            pairs.append((observer_n, neighbors[0], observer_n, neighbors[1]))
    outcomes = run_link_detection_trials(overlay, pairs, detection_window=4.0)
    detected = sum(outcome.detected_via_b for outcome in outcomes)
    correct = sum(outcome.correct for outcome in outcomes)
    print(f"   trials: {len(outcomes)}, detections: {detected}, "
          f"correct conclusions: {correct}")
    print("   (low, unreliable detection matches the paper's argument)")

    # 3b. Vertex-cut flow control (III-E3), on a purpose-built topology.
    print("\n3b. vertex-cut flow control (paper III-E3)")
    import networkx as nx

    from repro.attacks import install_flow_control, measure_flow_control

    barbell = nx.barbell_graph(12, 0)  # two cliques joined at 11-12
    cut_config = SystemConfig(
        num_nodes=24,
        availability=0.9,
        mean_offline_time=10.0,
        cache_size=40,
        shuffle_length=8,
        target_degree=18,
        seed=7,
    )
    for deviate in (False, True):
        cut_overlay = Overlay.build(barbell, cut_config, with_churn=False)
        if deviate:
            install_flow_control(cut_overlay, [11, 12])
        cut_overlay.start()
        cut_overlay.run_until(26.0)
        outcome = measure_flow_control(cut_overlay, [11, 12])
        kind = "deviating" if deviate else "honest"
        print(
            f"   {kind:>9} cut {{11,12}}: "
            f"{outcome.cross_side_links} uncontrolled cross-side links, "
            f"{outcome.coalition_mediated_links} coalition-mediated "
            f"({outcome.uncontrolled_fraction:.0%} escape the coalition)"
        )
    print("   a deviating vertex cut controls (almost) all cross-side flow,")
    print("   as Section III-E3 argues — the honest protocol does not.")

    # 4. External observer against the mixnet link layer.
    print("\n4. external observer vs the mixnet link layer")
    traffic = TrafficLog(enabled=True)
    mix_config = config.replace(num_nodes=40, seed=99)
    mix_trust = sample_trust_graph(
        social, 40, f=0.5, rng=streams.substream("mix-invite")
    )
    mix_overlay = Overlay.build(
        mix_trust,
        mix_config,
        link_layer_factory=lambda sim, rng: make_mixnet_link_layer(
            sim, rng, num_relays=12, circuit_length=3, traffic=traffic
        ),
    )
    mix_overlay.start()
    mix_overlay.run_until(10.0)
    direct = [
        (src, dst)
        for (src, dst) in traffic.channels()
        if src.startswith("node:") and dst.startswith("node:")
    ]
    print(f"   observed channel records: {len(traffic)}")
    print(f"   direct node-to-node channels visible: {len(direct)}")
    assert not direct, "mixnet must never expose a direct channel"
    print("   every observed channel touches a relay — senders and")
    print("   receivers are never linkable by channel inspection alone.")


if __name__ == "__main__":
    main()
