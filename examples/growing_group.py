#!/usr/bin/env python
"""A group that grows by invitation while the overlay is live.

The paper's sampling model mimics "an invitation model for
participating in the group, which is common in real-world applications
where privacy is a concern", and notes that *adding* nodes or trust
edges raises no privacy concerns (only revocation is future work).
This example exercises exactly that: a support community starts with a
seed of 120 members and grows to 220 while the overlay keeps running
under churn — every newcomer knows only their inviters, bootstraps from
empty protocol state, and is woven into the random overlay by ordinary
gossip.

Run with:  python examples/growing_group.py
"""

from repro import Overlay, SystemConfig
from repro.graphs import fraction_disconnected, generate_social_graph, sample_trust_graph
from repro.rng import RandomStreams


def report(overlay, label):
    snapshot = overlay.snapshot()
    trust = overlay.trust_snapshot()
    print(
        f"{label:>28}: {len(overlay.nodes):3d} members, "
        f"{len(overlay.online_ids()):3d} online, "
        f"overlay {fraction_disconnected(snapshot):5.1%} disconnected "
        f"(trust graph {fraction_disconnected(trust):5.1%})"
    )


def main() -> None:
    streams = RandomStreams(seed=1984)
    social = generate_social_graph(2500, rng=streams.substream("social"))
    trust = sample_trust_graph(social, 120, f=0.5, rng=streams.substream("seed-group"))

    config = SystemConfig(
        num_nodes=120,
        availability=0.5,
        mean_offline_time=30.0,
        lifetime_ratio=3.0,
        cache_size=120,
        shuffle_length=20,
        target_degree=25,
        seed=1984,
    )
    overlay = Overlay.build(trust, config)
    overlay.start()
    overlay.run_until(80.0)
    report(overlay, "seed group stabilized")

    # Growth: in five waves, members invite friends (1-3 inviters each).
    invite_rng = streams.substream("growth")
    for wave in range(5):
        for _ in range(20):
            population = len(overlay.nodes)
            inviter_count = int(invite_rng.integers(1, 4))
            inviters = [
                int(node) for node in
                invite_rng.choice(population, size=inviter_count, replace=False)
            ]
            overlay.add_node(inviters)
        overlay.run_until(overlay.sim.now + 25.0)
        report(overlay, f"after wave {wave + 1} (+20 members)")

    # Newcomers are full citizens: check the last-added node's links.
    newest = overlay.nodes[-1]
    print(
        f"\nnewest member (id {newest.node_id}): "
        f"{newest.links.trusted_degree} trusted links, "
        f"{len(newest.valid_pseudonym_links())} pseudonym links, "
        f"{newest.counters.messages_sent} messages sent"
    )
    print(
        "each newcomer disclosed its identity only to its inviters; the "
        "rest of the group sees only pseudonyms."
    )


if __name__ == "__main__":
    main()
