#!/usr/bin/env python
"""Quickstart: build a robust privacy-preserving overlay in ~40 lines.

Walks through the library's whole pipeline:

1. generate a synthetic Facebook-like social graph,
2. sample a trust graph with the paper's invitation (f) model,
3. run the overlay-maintenance protocol under churn,
4. compare the overlay's robustness against the bare trust graph.

Run with:  python examples/quickstart.py
"""

from repro import Overlay, SystemConfig
from repro.graphs import (
    fraction_disconnected,
    generate_social_graph,
    sample_trust_graph,
)
from repro.rng import RandomStreams


def main() -> None:
    streams = RandomStreams(seed=2012)

    # 1. A synthetic social graph standing in for a Facebook crawl.
    social = generate_social_graph(3000, rng=streams.substream("social"))
    print(
        f"social graph: {social.number_of_nodes()} nodes, "
        f"{social.number_of_edges()} edges"
    )

    # 2. A 300-user privacy-sensitive group formed by invitations, each
    #    user inviting about half of their friends (f = 0.5).
    trust = sample_trust_graph(social, 300, f=0.5, rng=streams.substream("invite"))
    print(f"trust graph:  {trust.number_of_nodes()} nodes, {trust.number_of_edges()} edges")

    # 3. Run the overlay protocol: nodes are online half the time on
    #    average, pseudonyms live 3x the mean offline period.
    config = SystemConfig(
        num_nodes=300,
        availability=0.5,
        mean_offline_time=30.0,
        lifetime_ratio=3.0,
        cache_size=150,
        shuffle_length=24,
        target_degree=30,
        seed=2012,
    )
    overlay = Overlay.build(trust, config)
    overlay.start()
    print("running 150 shuffling periods under churn ...")
    overlay.run_until(150.0)

    # 4. Compare the overlay against the bare trust graph.
    online = overlay.online_ids()
    overlay_snapshot = overlay.snapshot()
    trust_snapshot = overlay.trust_snapshot()
    print(f"\nonline nodes: {len(online)} / {config.num_nodes}")
    print(
        "disconnected from the largest component:\n"
        f"  bare trust graph: {fraction_disconnected(trust_snapshot):6.1%}\n"
        f"  robust overlay:   {fraction_disconnected(overlay_snapshot):6.1%}"
    )
    stats = overlay.stats()
    print(
        f"\nprotocol cost: {stats.messages_sent} messages, "
        f"{stats.pseudonyms_created} pseudonyms minted, "
        f"{stats.link_replacements} link replacements"
    )


if __name__ == "__main__":
    main()
