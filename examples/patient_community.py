#!/usr/bin/env python
"""Patient support community: lifetime tuning and epidemic updates.

Scenario from the paper's introduction: "a worldwide community of
patients with the same chronic illness trying to support each other
with information".  Privacy is paramount (nobody should learn the
member list), members have moderate availability, and the community
exchanges regular digest updates.

The script demonstrates the pseudonym-lifetime trade-off (paper §III-C
and Figure 7): shorter lifetimes are better for privacy — an observer
can correlate traffic to one pseudonym only briefly — but too short a
lifetime degrades connectivity because returning members find all their
pseudonym links expired.  It then disseminates a digest by epidemic
push gossip over the best configuration.

Run with:  python examples/patient_community.py
"""

import math

from repro import Overlay, SystemConfig
from repro.dissemination import EpidemicBroadcast, coverage_report
from repro.graphs import fraction_disconnected, generate_social_graph, sample_trust_graph
from repro.rng import RandomStreams


def measure_lifetime(trust, base_config, ratio, horizon=150.0):
    config = base_config.replace(lifetime_ratio=ratio)
    overlay = Overlay.build(trust, config)
    overlay.start()
    overlay.run_until(horizon)
    return overlay, fraction_disconnected(overlay.snapshot())


def main() -> None:
    streams = RandomStreams(seed=77)
    social = generate_social_graph(2500, rng=streams.substream("social"))
    trust = sample_trust_graph(social, 250, f=0.5, rng=streams.substream("invite"))

    base_config = SystemConfig(
        num_nodes=250,
        availability=0.4,
        mean_offline_time=30.0,
        cache_size=150,
        shuffle_length=24,
        target_degree=30,
        seed=77,
    )

    print("pseudonym-lifetime trade-off (alpha = 0.4):")
    print(f"{'ratio r':>10}  {'disconnected':>12}   privacy exposure window")
    overlays = {}
    for ratio in (1.0, 3.0, 9.0, math.inf):
        overlay, disconnected = measure_lifetime(trust, base_config, ratio)
        overlays[ratio] = overlay
        label = "Infinite" if math.isinf(ratio) else f"{ratio:g}"
        window = (
            "unbounded"
            if math.isinf(ratio)
            else f"{ratio * base_config.mean_offline_time:.0f} periods"
        )
        print(f"{label:>10}  {disconnected:>12.1%}   {window}")

    print(
        "\nr = 3 is the sweet spot: near-full connectivity with a "
        "bounded traffic-analysis window per pseudonym.\n"
    )

    # Disseminate a weekly digest over the r = 3 overlay.
    overlay = overlays[3.0]
    epidemic = EpidemicBroadcast(overlay, fanout=8, ttl=15)
    epidemic.install()
    online = overlay.online_ids()  # audience at broadcast time
    record = epidemic.broadcast(online[0], payload="weekly digest")
    overlay.run_until(overlay.sim.now + 3.0)
    report = coverage_report(record, online)
    print(f"epidemic digest dissemination: {report}")
    print(
        f"(flooding would send ~{overlay.snapshot().number_of_edges() * 2} "
        f"messages; the epidemic used {report.forwards})"
    )


if __name__ == "__main__":
    main()
