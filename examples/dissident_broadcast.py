#!/usr/bin/env python
"""Dissident micro-news: privacy-preserving broadcast under heavy churn.

Scenario from the paper's introduction: "a group of dissidents in a
country that limits freedom of expression attempting to reach out to a
broader audience".  Members are online rarely (alpha = 0.3 — think
mobile devices and intermittent connectivity), and no participant may
learn who else belongs to the group beyond their own friends.

The script compares broadcasting a news item by controlled flooding

* over the bare friend-to-friend (trust) overlay, and
* over the robust overlay after the maintenance protocol has run,

reporting the fraction of online members reached and the latency.

Run with:  python examples/dissident_broadcast.py
"""

from repro import Overlay, SystemConfig
from repro.dissemination import FloodBroadcast, coverage_report
from repro.graphs import generate_social_graph, sample_trust_graph
from repro.rng import RandomStreams


def build_overlay(trust, config, warmup):
    overlay = Overlay.build(trust, config)
    overlay.start()
    overlay.run_until(warmup)
    return overlay


def pick_online_origin(overlay):
    online = overlay.online_ids()
    if not online:
        raise RuntimeError("nobody is online; rerun with higher availability")
    return online[0]


def main() -> None:
    streams = RandomStreams(seed=451)
    social = generate_social_graph(2500, rng=streams.substream("social"))
    trust = sample_trust_graph(social, 250, f=0.4, rng=streams.substream("invite"))

    config = SystemConfig(
        num_nodes=250,
        availability=0.3,          # heavy churn
        mean_offline_time=30.0,
        lifetime_ratio=3.0,
        cache_size=150,
        shuffle_length=24,
        target_degree=30,
        seed=451,
    )

    # --- baseline: flood over trust links only ------------------------
    # A pure F2F overlay is this protocol with zero pseudonym links.
    baseline_config = config.replace(target_degree=1, min_pseudonym_links=0)
    baseline = build_overlay(trust, baseline_config, warmup=120.0)
    flood = FloodBroadcast(baseline, ttl=15)
    flood.install()
    origin = pick_online_origin(baseline)
    audience = baseline.online_ids()  # members online at broadcast time
    record = flood.broadcast(origin, payload="manifesto #1")
    baseline.run_until(baseline.sim.now + 3.0)
    baseline_report = coverage_report(record, audience)

    # --- robust overlay: flood over trust + pseudonym links -----------
    robust = build_overlay(trust, config, warmup=120.0)
    flood = FloodBroadcast(robust, ttl=15)
    flood.install()
    origin = pick_online_origin(robust)
    audience = robust.online_ids()
    record = flood.broadcast(origin, payload="manifesto #1")
    robust.run_until(robust.sim.now + 3.0)
    robust_report = coverage_report(record, audience)

    print("flooding a news item to the group (alpha = 0.3):\n")
    print(f"  bare F2F overlay:  {baseline_report}")
    print(f"  robust overlay:    {robust_report}\n")
    gain = robust_report.coverage - baseline_report.coverage
    print(
        f"robust overlay reaches {gain:+.1%} more of the online group; "
        "no member ever learned another member's identity beyond their "
        "own friends."
    )


if __name__ == "__main__":
    main()
