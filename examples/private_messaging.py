#!/usr/bin/env python
"""Private point-to-point messaging over the robust overlay.

The paper names "an additional routing layer" as one of the
applications its overlay enables.  This example runs that layer: a job
seeker wants to answer a specific post in the group — they know only
the author's *pseudonym* (it arrived with the post) and must reach its
holder without anyone learning either party's identity.

Steps demonstrated:

1. run the overlay under churn until it is robust;
2. discover a route to a pseudonym value (flooded request, reverse-path
   reply, forward pointers by pseudonym only);
3. unicast a reply along the discovered route, and reuse the cached
   route for a follow-up at zero discovery cost;
4. show the route breaking when the target's pseudonym expires, and
   recovering via rediscovery against the renewed pseudonym.

Run with:  python examples/private_messaging.py
"""

from repro import Overlay, SystemConfig
from repro.graphs import generate_social_graph, sample_trust_graph
from repro.rng import RandomStreams
from repro.routing import PseudonymRouter


def main() -> None:
    streams = RandomStreams(seed=60221023)
    social = generate_social_graph(2000, rng=streams.substream("social"))
    trust = sample_trust_graph(social, 200, f=0.5, rng=streams.substream("invite"))

    config = SystemConfig(
        num_nodes=200,
        availability=0.7,
        mean_offline_time=30.0,
        lifetime_ratio=3.0,
        cache_size=120,
        shuffle_length=20,
        target_degree=25,
        seed=60221023,
    )
    overlay = Overlay.build(trust, config)
    router = PseudonymRouter(overlay, discovery_ttl=8)
    router.install()
    overlay.start()
    print("warming up the overlay (100 shuffling periods) ...")
    overlay.run_until(100.0)

    online = overlay.online_ids()
    sender, receiver = online[0], online[-1]
    target_value = overlay.nodes[receiver].own.value
    print(
        f"sender knows only the author's pseudonym value "
        f"{target_value:016x} — no identity.\n"
    )

    # 2 + 3: discover and send.
    record = router.send(sender, target_value, payload="re: your post — interested!")
    overlay.run_until(overlay.sim.now + 5.0)
    discovery = next(iter(router.discoveries.values()))
    print(f"route discovery: {'ok' if discovery.succeeded else 'failed'} "
          f"({discovery.route_hops} hops, "
          f"{discovery.latency:.2f} periods round trip)")
    print(f"first message delivered: {record.delivered} "
          f"after {record.hops} hops")

    control_before = router.control_messages
    followup = None
    for attempt in range(5):  # a hop may be offline; retry like any app would
        followup = router.send(sender, target_value, payload="ping — still there?")
        overlay.run_until(overlay.sim.now + 3.0)
        if followup.delivered:
            break
        # Cached path broken (a hop churned out): issue a route error
        # and rediscover on the next attempt.
        router.invalidate(sender, target_value)
    print(
        f"follow-up delivered: {followup.delivered} "
        f"({router.control_messages - control_before} extra control "
        f"messages, {attempt + 1} attempt(s))"
    )

    # 4: the pseudonym expires (lifetime 90 periods); pointers rot.
    print("\nadvancing past the pseudonym's expiry ...")
    overlay.run_until(overlay.sim.now + config.pseudonym_lifetime + 5.0)
    stale = router.send(sender, target_value, payload="anyone home?")
    overlay.run_until(overlay.sim.now + 5.0)
    print(f"send to the expired pseudonym delivered: {stale.delivered} "
          "(expected False: the address is gone — by design)")

    node = overlay.nodes[receiver]
    while not node.online:  # wait out the receiver's offline stint
        overlay.run_until(overlay.sim.now + 5.0)
    fresh_value = node.own.value
    fresh = None
    for _ in range(5):
        fresh = router.send(sender, fresh_value, payload="found you again")
        overlay.run_until(overlay.sim.now + 5.0)
        if fresh.delivered:
            break
    print(
        f"send to the *renewed* pseudonym delivered: {fresh.delivered} "
        f"after rediscovery"
    )
    print(
        "\nat no point did any node (or observer) see a mapping from a "
        "pseudonym to a user identity."
    )


if __name__ == "__main__":
    main()
