"""Tests for per-node overhead statistics (Figure 6 machinery)."""

import pytest

from repro import Overlay
from repro.errors import ExperimentError
from repro.metrics import message_overhead_by_rank


class TestMessageOverheadByRank:
    def _overlay(self, graph, config, horizon=25.0):
        overlay = Overlay.build(graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(horizon)
        return overlay

    def test_sorted_by_trust_degree(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config)
        entries = message_overhead_by_rank(overlay)
        degrees = [entry.trust_degree for entry in entries]
        assert degrees == sorted(degrees, reverse=True)

    def test_one_entry_per_node(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config)
        entries = message_overhead_by_rank(overlay)
        assert len(entries) == small_config.num_nodes
        assert {entry.node_id for entry in entries} == set(
            range(small_config.num_nodes)
        )

    def test_rates_are_reasonable(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config)
        entries = message_overhead_by_rank(overlay)
        for entry in entries:
            assert 0.5 < entry.messages_per_period < 20.0

    def test_hub_sends_more_than_average(self, small_trust_graph, small_config):
        """Nodes referenced by many peers answer more shuffle requests."""
        overlay = self._overlay(small_trust_graph, small_config, horizon=40.0)
        entries = message_overhead_by_rank(overlay)
        hub_rate = entries[0].messages_per_period  # highest trust degree
        median_rate = sorted(e.messages_per_period for e in entries)[
            len(entries) // 2
        ]
        assert hub_rate > median_rate

    def test_max_out_degrees_override(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config, horizon=5.0)
        fake = list(range(small_config.num_nodes))
        entries = message_overhead_by_rank(overlay, max_out_degrees=fake)
        by_id = {entry.node_id: entry for entry in entries}
        for node_id, expected in enumerate(fake):
            assert by_id[node_id].max_out_degree == expected

    def test_min_online_time_guard(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(0.5)  # below the default threshold
        entries = message_overhead_by_rank(overlay)
        assert all(entry.messages_per_period == 0.0 for entry in entries)

    def test_invalid_min_online_time(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config, horizon=2.0)
        with pytest.raises(ExperimentError):
            message_overhead_by_rank(overlay, min_online_time=0.0)
