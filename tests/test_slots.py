"""Tests for the Brahms-style sampler slots."""

import math

import numpy as np
import pytest

from repro.core import Pseudonym, SamplerSlots
from repro.errors import ProtocolError
from repro.privlink import Address


def _pseudonym(value, expires_at=1000.0):
    return Pseudonym(value=value, address=Address(value + 1), expires_at=expires_at)


def _offset(ref, delta):
    """A value exactly ``delta`` away from ``ref`` without wrapping."""
    return ref + delta if ref < (1 << 62) else ref - delta


class TestConstruction:
    def test_all_slots_empty_on_start(self, rng):
        slots = SamplerSlots(10, rng)
        assert slots.size == 10
        assert slots.filled() == 0
        assert slots.sample() == []

    def test_zero_slots_allowed(self, rng):
        slots = SamplerSlots(0, rng)
        assert slots.offer(_pseudonym(1)) == 0
        assert slots.sample() == []

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ProtocolError):
            SamplerSlots(-1, rng)

    def test_references_immutable_view(self, rng):
        slots = SamplerSlots(5, rng)
        refs = slots.references
        with pytest.raises(ValueError):
            refs[0] = 0


class TestReplacementRules:
    def test_empty_slot_filled(self, rng):
        slots = SamplerSlots(4, rng)
        changed = slots.offer(_pseudonym(123))
        assert changed == 4  # fills every empty slot
        assert slots.filled() == 4

    def test_closer_value_wins(self, rng):
        slots = SamplerSlots(1, rng)
        ref = int(slots.references[0])
        far = _pseudonym(_offset(ref, 10**9))
        near = _pseudonym(_offset(ref, 5))
        slots.offer(far)
        assert slots.entry(0) == far
        slots.offer(near)
        assert slots.entry(0) == near

    def test_farther_value_loses(self, rng):
        slots = SamplerSlots(1, rng)
        ref = int(slots.references[0])
        near = _pseudonym(_offset(ref, 5))
        far = _pseudonym(_offset(ref, 10**9))
        slots.offer(near)
        slots.offer(far)
        assert slots.entry(0) == near

    def test_equal_distance_later_expiry_wins(self, rng):
        slots = SamplerSlots(1, rng)
        ref = int(slots.references[0])
        value = _offset(ref, 7)
        early = Pseudonym(value=value, address=Address(1), expires_at=10.0)
        late = Pseudonym(value=value, address=Address(2), expires_at=20.0)
        slots.offer(early)
        slots.offer(late)
        assert slots.entry(0) == late

    def test_equal_distance_earlier_expiry_loses(self, rng):
        slots = SamplerSlots(1, rng)
        ref = int(slots.references[0])
        value = _offset(ref, 7)
        late = Pseudonym(value=value, address=Address(2), expires_at=20.0)
        early = Pseudonym(value=value, address=Address(1), expires_at=10.0)
        slots.offer(late)
        slots.offer(early)
        assert slots.entry(0) == late

    def test_batch_equals_sequential(self, rng):
        """Folding a batch must match offering one-by-one."""
        batch_rng = np.random.default_rng(42)
        sequential = SamplerSlots(20, np.random.default_rng(7))
        batched = SamplerSlots(20, np.random.default_rng(7))
        pseudonyms = [
            _pseudonym(int(batch_rng.integers(0, 1 << 62)), expires_at=float(e))
            for e in batch_rng.integers(1, 1000, size=50)
        ]
        for pseudonym in pseudonyms:
            sequential.offer(pseudonym)
        batched.offer_batch(pseudonyms)
        for index in range(20):
            assert sequential.entry(index) == batched.entry(index)

    def test_offer_batch_empty(self, rng):
        slots = SamplerSlots(3, rng)
        assert slots.offer_batch([]) == 0


class TestExpiry:
    def test_expired_entries_cleared(self, rng):
        slots = SamplerSlots(4, rng)
        slots.offer(_pseudonym(5, expires_at=10.0))
        assert slots.filled() == 4
        removed = slots.expire(now=10.0)
        assert removed == 4
        assert slots.filled() == 0

    def test_unexpired_entries_kept(self, rng):
        slots = SamplerSlots(4, rng)
        slots.offer(_pseudonym(5, expires_at=10.0))
        assert slots.expire(now=9.0) == 0
        assert slots.filled() == 4

    def test_slot_refillable_after_expiry(self, rng):
        slots = SamplerSlots(1, rng)
        ref = int(slots.references[0])
        near = _pseudonym(_offset(ref, 1), expires_at=5.0)
        far = _pseudonym(_offset(ref, 10**12), expires_at=1000.0)
        slots.offer(near)
        slots.offer(far)  # rejected: farther
        assert slots.entry(0) == near
        slots.expire(now=6.0)
        slots.offer(far)  # now accepted: slot empty
        assert slots.entry(0) == far

    def test_evict_specific(self, rng):
        slots = SamplerSlots(3, rng)
        entry = _pseudonym(9)
        slots.offer(entry)
        assert slots.evict(entry) == 3
        assert slots.filled() == 0


class TestSamplingProperties:
    def test_sample_deduplicates(self, rng):
        slots = SamplerSlots(8, rng)
        slots.offer(_pseudonym(1))
        assert slots.filled() == 8
        assert len(slots.sample()) == 1

    def test_min_wise_uniformity(self):
        """Each slot keeps a uniform sample of everything offered,
        regardless of offer frequency (the Brahms property): a
        pseudonym offered 50 times wins no more often than one offered
        once, because only the values' distances to the reference
        matter and the values are uniform."""
        wins = 0
        trials = 400
        value_rng = np.random.default_rng(999)
        for trial in range(trials):
            slots = SamplerSlots(1, np.random.default_rng(trial))
            hot = _pseudonym(int(value_rng.integers(0, 1 << 62)))
            cold = _pseudonym(int(value_rng.integers(0, 1 << 62)))
            for _ in range(50):
                slots.offer(hot)  # offered 50x
            slots.offer(cold)  # offered once
            if slots.entry(0) == cold:
                wins += 1
        # The cold pseudonym should win about half the slots.
        assert 0.4 < wins / trials < 0.6

    def test_holds(self, rng):
        slots = SamplerSlots(4, rng)
        entry = _pseudonym(3)
        slots.offer(entry)
        assert slots.holds([entry])
        assert not slots.holds([_pseudonym(4)])

    def test_refresh_distances_consistency(self, rng):
        slots = SamplerSlots(10, rng)
        values = np.random.default_rng(3).integers(0, 1 << 62, size=30)
        slots.offer_batch([_pseudonym(int(value)) for value in values])
        before = [slots.entry(index) for index in range(10)]
        slots.refresh_distances()
        after = [slots.entry(index) for index in range(10)]
        assert before == after
        # Offering the same batch again changes nothing.
        assert slots.offer_batch([_pseudonym(int(value)) for value in values]) == 0

    def test_infinite_expiry_supported(self, rng):
        slots = SamplerSlots(2, rng)
        eternal = _pseudonym(5, expires_at=math.inf)
        slots.offer(eternal)
        assert slots.expire(now=1e12) == 0
        assert slots.sample() == [eternal]
