"""Tests for the reproduction report builder."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.report import build_report, collect_result_tables


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig3_f0.5.txt").write_text("Figure 3 table\nrows...\n")
    (tmp_path / "fig9_replacement.txt").write_text("Figure 9 table\n")
    (tmp_path / "ablation_cache.txt").write_text("cache sweep\n")
    (tmp_path / "mystery.txt").write_text("something else\n")
    (tmp_path / "not_a_table.json").write_text("{}")
    return tmp_path


class TestCollect:
    def test_reads_all_txt(self, results_dir):
        tables = collect_result_tables(results_dir)
        assert set(tables) == {
            "fig3_f0.5",
            "fig9_replacement",
            "ablation_cache",
            "mystery",
        }
        assert tables["fig3_f0.5"].startswith("Figure 3")

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            collect_result_tables(tmp_path / "nope")

    def test_empty_dir(self, tmp_path):
        assert collect_result_tables(tmp_path) == {}


class TestBuildReport:
    def test_sections_in_paper_order(self, results_dir):
        report = build_report(results_dir)
        fig3 = report.index("Figure 3 — connectivity")
        fig9 = report.index("Figure 9 — link replacements")
        ablations = report.index("## Ablations")
        other = report.index("## Other results")
        assert fig3 < fig9 < ablations < other

    def test_tables_embedded(self, results_dir):
        report = build_report(results_dir)
        assert "Figure 3 table" in report
        assert "cache sweep" in report
        assert "### fig3_f0.5" in report

    def test_title_and_preamble(self, results_dir):
        report = build_report(results_dir, title="My repro", preamble="Notes.")
        assert report.startswith("# My repro")
        assert "Notes." in report

    def test_empty_results(self, tmp_path):
        report = build_report(tmp_path)
        assert "No results found" in report
