"""Tests for the alternating-renewal churn process."""

import numpy as np
import pytest

from repro.churn import ChurnProcess, NodeChurnSpec, Exponential, homogeneous_specs
from repro.errors import ChurnError
from repro.sim import Simulator


class TestHomogeneousSpecs:
    def test_availability_matches(self):
        specs = homogeneous_specs(10, availability=0.25, mean_offline_time=30.0)
        assert len(specs) == 10
        for spec in specs:
            assert spec.availability == pytest.approx(0.25)
            assert spec.offline.mean == 30.0
            assert spec.online.mean == pytest.approx(10.0)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5])
    def test_invalid_availability(self, alpha):
        with pytest.raises(ChurnError):
            homogeneous_specs(5, availability=alpha, mean_offline_time=10.0)

    def test_invalid_offline_time(self):
        with pytest.raises(ChurnError):
            homogeneous_specs(5, availability=0.5, mean_offline_time=0.0)


class TestChurnProcess:
    def _make(self, alpha=0.5, n=50, seed=0, start_all_online=False):
        sim = Simulator()
        specs = homogeneous_specs(n, availability=alpha, mean_offline_time=5.0)
        process = ChurnProcess(
            sim,
            specs,
            np.random.default_rng(seed),
            start_all_online=start_all_online,
        )
        return sim, process

    def test_stationary_initial_fraction(self):
        _, process = self._make(alpha=0.7, n=2000)
        process.start()
        fraction = process.online_count() / 2000
        assert fraction == pytest.approx(0.7, abs=0.05)

    def test_start_all_online(self):
        _, process = self._make(n=20, start_all_online=True)
        process.start()
        assert process.online_count() == 20

    def test_transitions_alternate(self):
        sim, process = self._make(n=1)
        flips = []
        process.set_listener(lambda node, online: flips.append(online))
        process.start()
        sim.run_until(200.0)
        assert len(flips) > 5
        for earlier, later in zip(flips, flips[1:]):
            assert earlier != later

    def test_listener_sees_consistent_state(self):
        sim, process = self._make(n=10)
        mismatches = []

        def listener(node, online):
            if process.is_online(node) != online:
                mismatches.append(node)

        process.set_listener(listener)
        process.start()
        sim.run_until(50.0)
        assert mismatches == []

    def test_long_run_availability(self):
        sim, process = self._make(alpha=0.3, n=1, seed=3)
        online_time = [0.0]
        last = {"time": 0.0, "online": None}

        def listener(node, online):
            if last["online"]:
                online_time[0] += sim.now - last["time"]
            last["time"] = sim.now
            last["online"] = online

        process.set_listener(listener)
        process.start()
        last["online"] = process.is_online(0)
        horizon = 20000.0
        sim.run_until(horizon)
        if last["online"]:
            online_time[0] += horizon - last["time"]
        assert online_time[0] / horizon == pytest.approx(0.3, abs=0.06)

    def test_double_start_rejected(self):
        _, process = self._make()
        process.start()
        with pytest.raises(ChurnError):
            process.start()

    def test_empty_specs_rejected(self):
        with pytest.raises(ChurnError):
            ChurnProcess(Simulator(), [], np.random.default_rng(0))

    def test_online_nodes_listing(self):
        _, process = self._make(n=30, alpha=0.5)
        process.start()
        online = process.online_nodes()
        assert all(process.is_online(node) for node in online)
        assert len(online) == process.online_count()

    def test_transition_counter(self):
        sim, process = self._make(n=5)
        process.start()
        sim.run_until(100.0)
        assert process.transitions > 0

    def test_heterogeneous_specs(self):
        sim = Simulator()
        specs = [
            NodeChurnSpec(Exponential(1.0), Exponential(9.0)),  # alpha = 0.1
            NodeChurnSpec(Exponential(9.0), Exponential(1.0)),  # alpha = 0.9
        ]
        assert specs[0].availability == pytest.approx(0.1)
        assert specs[1].availability == pytest.approx(0.9)
        process = ChurnProcess(sim, specs, np.random.default_rng(0))
        process.start()
        sim.run_until(10.0)  # runs without error
