"""End-to-end integration tests: whole-system invariants under churn.

These drive the complete stack — trust graph, churn, link layer, the
overlay protocol, metrics — and assert the paper's qualitative claims
and the protocol's global invariants.
"""

import math

import pytest

from repro import Overlay, SystemConfig
from repro.experiments import SMOKE, make_config, make_trust_graph
from repro.graphs import fraction_disconnected
from repro.metrics import MetricsCollector


@pytest.fixture(scope="module")
def churny_overlay():
    """A smoke-scale overlay run under churn for 60 periods."""
    graph = make_trust_graph(SMOKE, f=0.5, seed=3)
    config = make_config(SMOKE, alpha=0.5, f=0.5, seed=3)
    overlay = Overlay.build(graph, config)
    collector = MetricsCollector(overlay, interval=1.0)
    overlay.start()
    collector.start()
    overlay.run_until(60.0)
    return overlay, collector


class TestGlobalInvariants:
    def test_link_targets_are_real_pseudonyms(self, churny_overlay):
        """Every pseudonym link resolves (via the measurement oracle) to
        a real node, and never to the link's owner itself."""
        overlay, _ = churny_overlay
        for node in overlay.nodes:
            for pseudonym in node.links.pseudonym_links():
                owner = overlay.owner_of_value(pseudonym.value)
                assert owner is not None
                assert owner != node.node_id

    def test_no_expired_pseudonyms_in_online_nodes_state(self, churny_overlay):
        overlay, _ = churny_overlay
        now = overlay.sim.now
        for node in overlay.nodes:
            if not node.online:
                continue
            # Online nodes' own pseudonyms are always valid (renewal).
            assert node.own is not None
            assert not node.own.is_expired(now)

    def test_slot_count_invariant(self, churny_overlay):
        """Pseudonym links never exceed the sampler size S."""
        overlay, _ = churny_overlay
        for node in overlay.nodes:
            assert node.links.pseudonym_degree() <= max(1, node.slots.size)

    def test_cache_capacity_respected(self, churny_overlay):
        overlay, _ = churny_overlay
        for node in overlay.nodes:
            assert len(node.cache) <= node.cache.capacity

    def test_ids_never_in_pseudonym_space(self, churny_overlay):
        """Privacy invariant: pseudonym caches contain no trust-graph
        identities — only opaque values far outside 0..n-1."""
        overlay, _ = churny_overlay
        n = len(overlay.nodes)
        for node in overlay.nodes:
            for pseudonym in node.cache.pseudonyms():
                assert pseudonym.value >= n  # 63-bit random values

    def test_state_retained_across_offline(self, churny_overlay):
        """Nodes that went offline keep their link state (II-D)."""
        overlay, _ = churny_overlay
        offline_nodes = [node for node in overlay.nodes if not node.online]
        assert offline_nodes  # churn guarantees some
        with_links = [
            node for node in offline_nodes if node.links.pseudonym_degree() > 0
        ]
        assert with_links  # retained, not wiped

    def test_overlay_more_connected_than_trust(self, churny_overlay):
        _, collector = churny_overlay
        assert collector.disconnected.tail_mean(0.5) <= (
            collector.trust_disconnected.tail_mean(0.5)
        )

    def test_message_rate_near_two(self, churny_overlay):
        _, collector = churny_overlay
        assert 1.0 < collector.messages_per_node.tail_mean(0.5) < 3.0


class TestPseudonymRenewalUnderChurn:
    def test_renewal_happens(self, churny_overlay):
        overlay, _ = churny_overlay
        # Lifetime 3 x 8 = 24 periods; in 60 periods online nodes renew.
        renewed = [
            node
            for node in overlay.nodes
            if node.counters.pseudonyms_created >= 2
        ]
        assert len(renewed) > len(overlay.nodes) // 4

    def test_value_owner_registry_consistent(self, churny_overlay):
        overlay, _ = churny_overlay
        for node in overlay.nodes:
            if node.own is not None:
                assert overlay.owner_of_value(node.own.value) == node.node_id


class TestInfiniteLifetimeStabilizes:
    def test_replacements_stop(self):
        """With non-expiring pseudonyms and no churn, nodes quickly find
        the best links and stop changing them (paper Figure 9, r=inf)."""
        graph = make_trust_graph(SMOKE, f=0.5, seed=4)
        config = make_config(
            SMOKE, alpha=0.5, f=0.5, seed=4, lifetime_ratio=math.inf
        )
        overlay = Overlay.build(graph, config, with_churn=False)
        collector = MetricsCollector(overlay, interval=1.0)
        overlay.start()
        collector.start()
        overlay.run_until(60.0)
        assert collector.replacements_per_node.tail_mean(0.2) < 0.5
        assert fraction_disconnected(overlay.snapshot()) == 0.0


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        results = []
        for _ in range(2):
            graph = make_trust_graph(SMOKE, f=0.5, seed=5)
            config = make_config(SMOKE, alpha=0.5, f=0.5, seed=5)
            overlay = Overlay.build(graph, config)
            overlay.start()
            overlay.run_until(25.0)
            snapshot = overlay.snapshot()
            results.append(
                (
                    tuple(sorted(snapshot.edges())),
                    overlay.stats().messages_sent,
                    tuple(overlay.online_ids()),
                )
            )
        assert results[0] == results[1]

    def test_different_seed_different_trajectory(self):
        snapshots = []
        for seed in (6, 7):
            graph = make_trust_graph(SMOKE, f=0.5, seed=6)
            config = make_config(SMOKE, alpha=0.5, f=0.5, seed=seed)
            overlay = Overlay.build(graph, config)
            overlay.start()
            overlay.run_until(25.0)
            snapshots.append(tuple(sorted(overlay.snapshot().edges())))
        assert snapshots[0] != snapshots[1]
