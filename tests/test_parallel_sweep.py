"""Tests for the parallel grid sweep: equivalence, resume, failures.

The serial/parallel equivalence test here is an acceptance criterion:
``parallel_grid_sweep(..., workers=4)`` must return records identical
to ``grid_sweep(...)`` for the same root seed, using the real overlay
experiment.
"""

import pytest

from repro.errors import ParallelError
from repro.experiments import (
    ResultStore,
    SMOKE,
    grid_sweep,
    make_config,
    make_trust_graph,
    point_store_key,
)
from repro.parallel import (
    OverlayPointExperiment,
    outcome_digest,
    parallel_grid_sweep,
    run_parallel_sweep,
)

# A real (but short-horizon) overlay experiment: full protocol stack.
EXPERIMENT = OverlayPointExperiment(
    scale_name="smoke", f=0.5, horizon=8.0, measure_window=4.0
)
AXES = {"availability": [0.3, 0.6], "lifetime_ratio": [3.0, 9.0]}


def _base(seed=3):
    return make_config(SMOKE, alpha=0.5, f=0.5, seed=seed)


def _count_and_run(config):
    return {"availability": config.availability, "seed": config.seed}


@pytest.fixture(scope="module", autouse=True)
def _warm_trust_graph():
    # Memoize the trust graph once so forked workers inherit it and the
    # module's many sweeps share one social-graph build.
    make_trust_graph(SMOKE, f=0.5, seed=3)


class TestEquivalence:
    def test_parallel_identical_to_serial(self):
        """Acceptance: workers=4 returns exactly what grid_sweep does."""
        serial = grid_sweep(_base(), AXES, EXPERIMENT)
        parallel = parallel_grid_sweep(_base(), AXES, EXPERIMENT, workers=4)
        assert parallel == serial
        assert outcome_digest([p.outcome for p in parallel]) == outcome_digest(
            [p.outcome for p in serial]
        )

    def test_workers_param_on_grid_sweep_delegates(self):
        serial = grid_sweep(_base(), AXES, EXPERIMENT)
        via_param = grid_sweep(_base(), AXES, EXPERIMENT, workers=2)
        assert via_param == serial

    def test_shared_store_cache(self, tmp_path):
        """Serial and parallel runs memoize under the same store keys."""
        store = ResultStore(tmp_path)
        serial = grid_sweep(_base(), AXES, EXPERIMENT, store=store)
        run = run_parallel_sweep(
            _base(), AXES, EXPERIMENT, workers=2, store=store
        )
        assert run.computed == 0
        assert run.reused == len(serial)
        assert run.points == serial


class TestRunParallelSweep:
    def test_grid_order_and_seeds(self, tmp_path):
        run = run_parallel_sweep(_base(), AXES, _count_and_run, workers=2)
        assert [p.overrides for p in run.points] == [
            (("availability", 0.3), ("lifetime_ratio", 3.0)),
            (("availability", 0.3), ("lifetime_ratio", 9.0)),
            (("availability", 0.6), ("lifetime_ratio", 3.0)),
            (("availability", 0.6), ("lifetime_ratio", 9.0)),
        ]
        # Each record carries a per-task seed derived from (root, key).
        seeds = [record.spec.seed for record in run.records]
        assert len(set(seeds)) == len(seeds)

    def test_ledger_written_and_audits_store(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_parallel_sweep(
            _base(), AXES, _count_and_run, workers=2, store=store
        )
        assert run.ledger_path is not None and run.ledger_path.exists()
        from repro.parallel import RunLedger

        state = RunLedger(run.ledger_path).read()
        assert len(state.completed()) == 4
        for key, entry in state.completed().items():
            assert entry["digest"] == outcome_digest(store.load(key))

    def test_resume_completes_only_missing_points(self, tmp_path):
        """Kill mid-flight (simulated via a poisoned point), resume,
        and the merged output equals an uninterrupted run."""
        store = ResultStore(tmp_path)
        poison = tmp_path / "poison"
        poison.write_text("1")

        def sometimes_fails(config):
            if config.availability == 0.6 and poison.exists():
                raise RuntimeError("injected mid-run failure")
            return {"availability": config.availability}

        first = run_parallel_sweep(
            _base(),
            AXES,
            sometimes_fails,
            workers=2,
            store=store,
            max_attempts=1,
        )
        assert not first.complete
        assert len(first.failures) == 2
        assert first.computed == 4

        poison.unlink()
        resumed = run_parallel_sweep(
            _base(),
            AXES,
            sometimes_fails,
            workers=2,
            store=store,
            resume=True,
            max_attempts=1,
        )
        assert resumed.complete
        assert resumed.computed == 2  # only the two failed points
        assert resumed.reused == 2

        uninterrupted = run_parallel_sweep(
            _base(), AXES, sometimes_fails, workers=2
        )
        assert resumed.points == uninterrupted.points

    def test_resume_noop_when_complete(self, tmp_path):
        store = ResultStore(tmp_path)
        run_parallel_sweep(_base(), AXES, _count_and_run, workers=2, store=store)
        again = run_parallel_sweep(
            _base(), AXES, _count_and_run, workers=2, store=store, resume=True
        )
        assert again.computed == 0
        assert again.reused == 4
        assert again.complete

    def test_resume_requires_store_and_ledger(self, tmp_path):
        with pytest.raises(ParallelError, match="store"):
            run_parallel_sweep(_base(), AXES, _count_and_run, resume=True)
        with pytest.raises(ParallelError, match="no ledger"):
            run_parallel_sweep(
                _base(),
                AXES,
                _count_and_run,
                store=ResultStore(tmp_path),
                resume=True,
            )

    def test_resume_rejects_different_sweep(self, tmp_path):
        store = ResultStore(tmp_path)
        run_parallel_sweep(_base(), AXES, _count_and_run, store=store)
        with pytest.raises(ParallelError, match="different sweep"):
            run_parallel_sweep(
                _base(),
                {"availability": [0.3]},
                _count_and_run,
                store=store,
                resume=True,
            )

    def test_resume_recomputes_tampered_results(self, tmp_path):
        store = ResultStore(tmp_path)
        base = _base()
        run_parallel_sweep(base, AXES, _count_and_run, store=store)
        # Overwrite one stored point (same metadata, different data):
        # its digest no longer matches the ledger, so resume recomputes.
        key = point_store_key(
            "sweep", (("availability", 0.3), ("lifetime_ratio", 3.0))
        )
        overrides = (("availability", 0.3), ("lifetime_ratio", 3.0))
        store.save(
            key,
            {"availability": 999},
            metadata={"seed": base.seed, "overrides": repr(overrides)},
        )
        resumed = run_parallel_sweep(
            base, AXES, _count_and_run, store=store, resume=True
        )
        assert resumed.computed == 1
        assert resumed.reused == 3
        assert store.load(key) == {"availability": 0.3, "seed": 3}

    def test_failure_report_and_strict_raise(self):
        def always_fails(config):
            raise ValueError("nope")

        run = run_parallel_sweep(
            _base(),
            {"availability": [0.3]},
            always_fails,
            max_attempts=1,
        )
        assert not run.complete
        assert "1 point(s) failed" in run.failure_report()
        with pytest.raises(ParallelError, match="failed"):
            parallel_grid_sweep(
                _base(), {"availability": [0.3]}, always_fails, max_attempts=1
            )

    def test_empty_axes_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_parallel_sweep(_base(), {}, _count_and_run)
