"""Tests for the sharded simulation engine (``repro.parallel.shard``).

The contract under test is the determinism invariant from
``docs/parallel.md``: the state digest of a run is a pure function of
``(config, trust graph, num_shards)`` — never of the worker count.
``ShardedOverlay`` spreading one run across forked processes must be
byte-identical to the serial :class:`BatchOverlay` driving the same
shard grid in-process, at every worker count, pinned here by digest,
counter, and snapshot equality (the serial-equivalence golden test the
``sharded-batch`` parity pair points at).

Plus the shard-boundary edge cases for the pieces the engine is built
from: :func:`shard_ranges` partitions, :func:`ring_lattice_csr` ring
edges crossing shard boundaries, and :class:`ShardedChurn` over
non-divisible populations and empty shards.
"""

import numpy as np
import pytest

from repro.churn import BatchChurnModel
from repro.churn.batch import ShardedChurn
from repro.config import SystemConfig
from repro.core import BatchOverlay
from repro.core.batch import (
    ring_lattice_csr,
    shard_of,
    shard_ranges,
    shard_stream,
)
from repro.errors import ChurnError, GraphError, ParallelError, ProtocolError
from repro.parallel import ShardOptions, ShardedOverlay
from repro.parallel.engine import fork_available
from repro.rng import RandomStreams

SEED = 29


def _config(num_nodes, seed=SEED):
    """The scale-workload config shape at test size."""
    return SystemConfig(
        num_nodes=num_nodes,
        cache_size=16,
        shuffle_length=8,
        target_degree=12,
        min_pseudonym_links=8,
        availability=0.6,
        mean_offline_time=8.0,
        seed=seed,
    )


def _serial_run(config, num_shards, rounds):
    """Digest/stats/snapshot of the serial engine over a shard grid."""
    overlay = BatchOverlay.build(config, num_shards=num_shards)
    overlay.run(rounds)
    return overlay.state_digest(), overlay.stats(), overlay.snapshot()


def _snapshots_equal(a, b):
    return (
        np.array_equal(a.node_ids, b.node_ids)
        and np.array_equal(a.edge_u, b.edge_u)
        and np.array_equal(a.edge_v, b.edge_v)
    )


# ----------------------------------------------------------------------
# serial equivalence: the golden test
# ----------------------------------------------------------------------


class TestSerialEquivalence:
    """ShardedOverlay == BatchOverlay over the same shard grid."""

    NODES = 10_000
    SHARDS = 4
    ROUNDS = 3

    @pytest.fixture(scope="class")
    def serial(self):
        return _serial_run(_config(self.NODES), self.SHARDS, self.ROUNDS)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_digest_identical_at_any_worker_count(self, serial, workers):
        digest, stats, snapshot = serial
        with ShardedOverlay.build(
            _config(self.NODES),
            options=ShardOptions(num_shards=self.SHARDS, workers=workers),
        ) as sharded:
            sharded.run(self.ROUNDS)
            assert sharded.state_digest() == digest
            assert sharded.stats() == stats
            assert _snapshots_equal(sharded.snapshot(), snapshot)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_two_shard_ci_gate(self):
        """The CI shard-smoke criterion: 2 shards, 10^4 nodes."""
        digest, stats, _ = _serial_run(_config(self.NODES), 2, self.ROUNDS)
        with ShardedOverlay.build(
            _config(self.NODES), options=ShardOptions(num_shards=2, workers=2)
        ) as sharded:
            sharded.run(self.ROUNDS)
            assert sharded.state_digest() == digest
            assert sharded.stats() == stats

    def test_in_process_fallback_matches_serial(self):
        """workers=1 never forks and still honors the shard grid."""
        config = _config(2_000)
        digest, stats, snapshot = _serial_run(config, self.SHARDS, self.ROUNDS)
        sharded = ShardedOverlay.build(
            config, options=ShardOptions(num_shards=self.SHARDS, workers=1)
        )
        sharded.run(self.ROUNDS)
        assert sharded.state_digest() == digest
        assert sharded.stats() == stats
        assert _snapshots_equal(sharded.snapshot(), snapshot)
        reference = BatchOverlay.build(config, num_shards=self.SHARDS)
        reference.run(self.ROUNDS)
        assert sharded.mean_out_degree() == reference.mean_out_degree()
        sharded.close()
        sharded.close()  # idempotent

    def test_shard_grid_is_digest_relevant(self):
        """num_shards changes the RNG decomposition, hence the digest."""
        config = _config(2_000)
        one, _, _ = _serial_run(config, 1, 2)
        four, _, _ = _serial_run(config, 4, 2)
        assert one != four

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_empty_shards(self):
        """More shards than nodes: trailing shards are empty, not fatal."""
        config = _config(5)
        digest, stats, _ = _serial_run(config, 8, 2)
        with ShardedOverlay.build(
            config, options=ShardOptions(num_shards=8, workers=2)
        ) as sharded:
            sharded.run(2)
            assert sharded.state_digest() == digest
            assert sharded.stats() == stats


# ----------------------------------------------------------------------
# options and construction errors
# ----------------------------------------------------------------------


class TestOptions:
    def test_invalid_num_shards(self):
        with pytest.raises(ParallelError):
            ShardOptions(num_shards=0).validate()

    def test_invalid_workers(self):
        with pytest.raises(ParallelError):
            ShardOptions(workers=0).validate()

    def test_kwargs_override_options(self):
        config = _config(200)
        overlay = ShardedOverlay.build(
            config,
            options=ShardOptions(num_shards=4, workers=1),
            num_shards=2,
            workers=1,
        )
        try:
            serial_digest, _, _ = _serial_run(config, 2, 1)
            overlay.run(1)
            assert overlay.state_digest() == serial_digest
        finally:
            overlay.close()

    def test_mismatched_graph_raises(self):
        config = _config(100)
        indptr, indices = ring_lattice_csr(
            50, 2, RandomStreams(SEED).substream("test", "graph")
        )
        with pytest.raises(GraphError):
            ShardedOverlay(config, indptr, indices, workers=1)

    def test_batch_overlay_rejects_bad_shard_count(self):
        with pytest.raises(ProtocolError):
            BatchOverlay.build(_config(100), num_shards=0)


# ----------------------------------------------------------------------
# shard_ranges / ring_lattice_csr at shard boundaries
# ----------------------------------------------------------------------


class TestShardGrid:
    def test_ranges_partition_everything(self):
        for total, shards in [(10, 3), (7, 7), (5, 8), (0, 2), (1_000, 1)]:
            bounds = shard_ranges(total, shards)
            assert bounds[0] == 0 and bounds[-1] == total
            assert len(bounds) == shards + 1
            sizes = np.diff(bounds)
            assert sizes.sum() == total
            assert (sizes >= 0).all()
            # Balanced: sizes differ by at most one, big shards first.
            assert sizes.max() - sizes.min() <= 1
            assert (np.diff(sizes) <= 0).all()

    def test_ranges_reject_bad_inputs(self):
        with pytest.raises(ProtocolError):
            shard_ranges(10, 0)
        with pytest.raises(ProtocolError):
            shard_ranges(-1, 2)

    def test_shard_of_with_empty_shards(self):
        bounds = shard_ranges(5, 8)  # shards 5..7 are empty
        owners = shard_of(bounds, np.arange(5))
        assert owners.tolist() == [0, 1, 2, 3, 4]

    def test_ring_edges_cross_every_boundary(self):
        """Each shard boundary cuts the ring edge (b-1, b); both sides
        must see it in their CSR slice."""
        num_nodes, shards = 101, 4  # non-divisible on purpose
        indptr, indices = ring_lattice_csr(
            num_nodes, 0, RandomStreams(SEED).substream("test", "ring")
        )
        bounds = shard_ranges(num_nodes, shards)
        for boundary in bounds[1:-1]:
            left, right = int(boundary) - 1, int(boundary)
            assert right in indices[indptr[left] : indptr[left + 1]]
            assert left in indices[indptr[right] : indptr[right + 1]]

    def test_shard_slices_reconcatenate(self):
        """Per-shard CSR slices (local indptr, global indices) cover the
        global CSR exactly — what each ShardEngine is handed."""
        num_nodes, shards = 97, 5
        indptr, indices = ring_lattice_csr(
            num_nodes, 3, RandomStreams(SEED).substream("test", "slices")
        )
        bounds = shard_ranges(num_nodes, shards)
        rebuilt = []
        for shard in range(shards):
            lo, hi = int(bounds[shard]), int(bounds[shard + 1])
            local_indptr = indptr[lo : hi + 1] - indptr[lo]
            local_indices = indices[indptr[lo] : indptr[hi]]
            assert local_indptr[0] == 0
            assert local_indptr[-1] == len(local_indices)
            rebuilt.append(local_indices)
        assert np.array_equal(np.concatenate(rebuilt), indices)

    def test_shard_stream_single_shard_is_legacy(self):
        """S=1 reuses the unsharded substream: the pre-shard engine's
        exact draw order (byte-compat with older goldens)."""
        legacy = RandomStreams(7).substream("batch", "mint")
        sharded = shard_stream(7, 0, 1, "mint")
        assert np.array_equal(
            legacy.integers(0, 1 << 62, size=16),
            sharded.integers(0, 1 << 62, size=16),
        )

    def test_shard_streams_are_distinct(self):
        a = shard_stream(7, 0, 4, "mint")
        b = shard_stream(7, 1, 4, "mint")
        assert not np.array_equal(
            a.integers(0, 1 << 62, size=16), b.integers(0, 1 << 62, size=16)
        )


# ----------------------------------------------------------------------
# ShardedChurn at shard boundaries
# ----------------------------------------------------------------------


def _churn_rngs(num_shards, seed=SEED):
    return [
        RandomStreams(seed).spawn("test-churn", shard).substream("churn")
        for shard in range(num_shards)
    ]


class TestShardedChurn:
    def test_matches_per_shard_models(self):
        """The global mask is exactly the shard models' masks, and the
        (joined, left) events are their per-shard events rebased."""
        bounds = shard_ranges(103, 4)  # non-divisible
        churn = ShardedChurn(bounds, 0.6, 8.0, _churn_rngs(4))
        reference = [
            BatchChurnModel(
                int(bounds[s + 1] - bounds[s]), 0.6, 8.0, rng
            )
            for s, rng in enumerate(_churn_rngs(4))
        ]
        for _ in range(5):
            joined, left = churn.step()
            expect_joined, expect_left = [], []
            for shard, model in enumerate(reference):
                j, l = model.step()
                expect_joined.append(j + int(bounds[shard]))
                expect_left.append(l + int(bounds[shard]))
            assert np.array_equal(joined, np.concatenate(expect_joined))
            assert np.array_equal(left, np.concatenate(expect_left))
            mask = np.concatenate([model.online for model in reference])
            assert np.array_equal(churn.online, mask)
            assert churn.online_count() == int(mask.sum())
            assert np.array_equal(churn.online_rows(), np.flatnonzero(mask))

    def test_empty_shards_draw_nothing(self):
        """Empty shards get no model and consume no randomness, so the
        populated shards' trajectories are unchanged by grid padding."""
        bounds = shard_ranges(3, 6)  # shards 3..5 empty
        rngs = _churn_rngs(6)
        churn = ShardedChurn(bounds, 0.6, 8.0, rngs)
        assert churn.models[3] is None
        assert churn.models[4] is None
        assert churn.models[5] is None
        joined, left = churn.step()
        assert churn.online.shape == (3,)
        assert joined.dtype == np.int64 and left.dtype == np.int64
        # The padding rngs were never touched.
        for rng in rngs[3:]:
            probe = RandomStreams(SEED)  # fresh equivalent stream
            del probe  # (identity check below is the real assertion)
        fresh = _churn_rngs(6)
        assert rngs[3].random() == fresh[3].random()

    def test_start_all_online(self):
        bounds = shard_ranges(50, 3)
        churn = ShardedChurn(
            bounds, 0.6, 8.0, _churn_rngs(3), start_all_online=True
        )
        assert churn.online.all()
        assert churn.online_fraction() == 1.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ChurnError):
            ShardedChurn(np.array([1, 5]), 0.6, 8.0, _churn_rngs(1))
        with pytest.raises(ChurnError):
            ShardedChurn(np.array([0, 5, 3]), 0.6, 8.0, _churn_rngs(2))
        with pytest.raises(ChurnError):
            ShardedChurn(np.array([0, 5]), 0.6, 8.0, _churn_rngs(2))
