"""Tests for trace-driven overlay runs (shared churn schedules)."""

import numpy as np
import pytest

from repro import Overlay
from repro.churn import generate_trace, homogeneous_specs, stationary_online_mask
from repro.errors import ProtocolError


@pytest.fixture
def trace(small_config):
    specs = homogeneous_specs(
        small_config.num_nodes,
        small_config.availability,
        small_config.mean_offline_time,
    )
    return generate_trace(specs, horizon=40.0, rng=np.random.default_rng(17))


class TestTraceDrivenOverlay:
    def test_online_set_follows_trace(self, small_trust_graph, small_config, trace):
        overlay = Overlay.build(small_trust_graph, small_config, churn_trace=trace)
        overlay.start()
        for time in (5.0, 15.0, 30.0):
            overlay.run_until(time)
            expected = {
                node_id
                for node_id, online in enumerate(trace.online_at(time))
                if online
            }
            assert set(overlay.online_ids()) == expected

    def test_identical_availability_across_systems(
        self, small_trust_graph, small_config, trace
    ):
        """Two overlays with different protocol seeds see the exact
        same availability pattern — the point of trace-driven runs."""
        online_sets = []
        for seed in (1, 2):
            overlay = Overlay.build(
                small_trust_graph,
                small_config.replace(seed=seed),
                churn_trace=trace,
            )
            overlay.start()
            overlay.run_until(25.0)
            online_sets.append(tuple(sorted(overlay.online_ids())))
        assert online_sets[0] == online_sets[1]

    def test_protocol_runs_normally_under_trace(
        self, small_trust_graph, small_config, trace
    ):
        overlay = Overlay.build(small_trust_graph, small_config, churn_trace=trace)
        overlay.start()
        overlay.run_until(40.0)
        stats = overlay.stats()
        assert stats.messages_sent > 0
        assert stats.pseudonyms_created >= small_config.num_nodes // 2

    def test_trace_size_mismatch_rejected(self, small_trust_graph, small_config):
        specs = homogeneous_specs(5, 0.5, 5.0)
        short_trace = generate_trace(specs, horizon=10.0, rng=np.random.default_rng(0))
        with pytest.raises(ProtocolError):
            Overlay.build(small_trust_graph, small_config, churn_trace=short_trace)

    def test_trace_and_specs_mutually_exclusive(
        self, small_trust_graph, small_config, trace
    ):
        specs = homogeneous_specs(
            small_config.num_nodes,
            small_config.availability,
            small_config.mean_offline_time,
        )
        with pytest.raises(ProtocolError):
            Overlay.build(
                small_trust_graph,
                small_config,
                churn_specs=specs,
                churn_trace=trace,
            )
