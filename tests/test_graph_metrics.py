"""Tests for graph-structure metrics (Section IV-C definitions)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    average_path_length,
    degree_histogram,
    degree_sequence,
    fraction_disconnected,
    largest_component,
    normalized_path_length,
    powerlaw_exponent_estimate,
)


class TestLargestComponent:
    def test_connected_graph(self):
        graph = nx.path_graph(5)
        assert sorted(largest_component(graph)) == [0, 1, 2, 3, 4]

    def test_picks_largest(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3), (3, 4)])
        assert sorted(largest_component(graph)) == [2, 3, 4]

    def test_empty_graph(self):
        assert largest_component(nx.Graph()) == []


class TestFractionDisconnected:
    def test_connected_is_zero(self):
        assert fraction_disconnected(nx.complete_graph(4)) == 0.0

    def test_partitioned(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2)])
        graph.add_node(3)
        graph.add_node(4)
        assert fraction_disconnected(graph) == pytest.approx(2 / 5)

    def test_empty_graph_is_zero(self):
        assert fraction_disconnected(nx.Graph()) == 0.0

    def test_two_equal_halves(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        assert fraction_disconnected(graph) == pytest.approx(0.5)


class TestAveragePathLength:
    def test_path_graph_exact(self):
        # P3: distances 1,1,2 -> mean 4/3.
        graph = nx.path_graph(3)
        assert average_path_length(graph) == pytest.approx(4 / 3)

    def test_complete_graph(self):
        assert average_path_length(nx.complete_graph(6)) == pytest.approx(1.0)

    def test_single_node_zero(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert average_path_length(graph) == 0.0

    def test_uses_largest_component_only(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3)])  # P4
        graph.add_edge(10, 11)
        expected = average_path_length(nx.path_graph(4))
        assert average_path_length(graph) == pytest.approx(expected)

    def test_sampled_estimate_close_to_exact(self, rng):
        graph = nx.erdos_renyi_graph(120, 0.08, seed=1)
        exact = average_path_length(graph)
        estimate = average_path_length(graph, sample_sources=60, rng=rng)
        assert estimate == pytest.approx(exact, rel=0.15)

    def test_fallback_rng_resamples_same_sources_every_call(self):
        # The documented footgun: without an explicit rng, the fallback
        # generator is re-seeded identically on every call, so repeated
        # calls sample the *same* sources and return the same estimate.
        graph = nx.path_graph(200)
        first = average_path_length(graph, sample_sources=1)
        second = average_path_length(graph, sample_sources=1)
        assert first == second

    def test_persistent_stream_varies_sources_across_calls(self):
        # A caller-owned stream (the MetricsCollector pattern) advances
        # between calls, so repeated estimates are independent draws.
        graph = nx.path_graph(200)
        stream = np.random.default_rng(123)
        estimates = {
            average_path_length(graph, sample_sources=1, rng=stream)
            for _ in range(8)
        }
        assert len(estimates) > 1


class TestNormalizedPathLength:
    def test_connected_equals_plain_average(self):
        graph = nx.path_graph(10)
        plain = average_path_length(graph)
        normalized = normalized_path_length(graph, total_nodes=10)
        assert normalized == pytest.approx(plain / 10 * 10)

    def test_penalizes_partitioning(self):
        connected = nx.path_graph(10)
        partitioned = nx.Graph()
        partitioned.add_edges_from([(index, index + 1) for index in range(4)])  # P5
        partitioned.add_edges_from([(10 + index, 11 + index) for index in range(4)])
        value_connected = normalized_path_length(connected, total_nodes=10)
        value_partitioned = normalized_path_length(partitioned, total_nodes=10)
        assert value_partitioned > value_connected

    def test_offline_nodes_raise_metric(self):
        graph = nx.path_graph(5)
        small_system = normalized_path_length(graph, total_nodes=5)
        large_system = normalized_path_length(graph, total_nodes=50)
        assert large_system == pytest.approx(10 * small_system)

    def test_degenerate_component_returns_total(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert normalized_path_length(graph, total_nodes=25) == 25.0

    def test_invalid_total_rejected(self):
        with pytest.raises(GraphError):
            normalized_path_length(nx.path_graph(3), total_nodes=0)


class TestDegreeMetrics:
    def test_degree_histogram(self):
        graph = nx.star_graph(4)  # center degree 4, leaves degree 1
        histogram = degree_histogram(graph)
        assert histogram == {4: 1, 1: 4}

    def test_degree_sequence_sorted(self):
        graph = nx.star_graph(3)
        assert list(degree_sequence(graph)) == [3, 1, 1, 1]

    def test_powerlaw_estimate_on_powerlaw_sample(self):
        # Continuous sample with density ~ x^-2.5 above x=1: the Hill
        # estimator should recover an exponent near 2.5.
        rng = np.random.default_rng(0)
        degrees = rng.pareto(1.5, size=5000) + 1.0
        exponent = powerlaw_exponent_estimate(degrees)
        assert 2.2 < exponent < 2.8

    def test_powerlaw_estimate_rejects_constant(self):
        with pytest.raises(GraphError):
            powerlaw_exponent_estimate([3, 3, 3])

    def test_powerlaw_estimate_rejects_tiny(self):
        with pytest.raises(GraphError):
            powerlaw_exponent_estimate([5])
