"""Tests for the experiment result store."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.store import ResultStore


class TestResultStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        data = {"alphas": [0.25, 0.5], "disconnected": [0.1, 0.01]}
        store.save("fig3", data, metadata={"seed": 1})
        assert store.load("fig3") == data
        assert store.metadata("fig3") == {"seed": 1}

    def test_exists_and_names(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.exists("a")
        store.save("b", 1)
        store.save("a", 2)
        assert store.exists("a")
        assert store.names() == ["a", "b"]

    def test_overwrite(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("x", 1)
        store.save("x", 2)
        assert store.load("x") == 2

    def test_delete(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("x", 1)
        assert store.delete("x")
        assert not store.delete("x")
        assert not store.exists("x")

    def test_missing_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.load("nope")
        with pytest.raises(ExperimentError):
            store.metadata("nope")

    def test_corrupt_file_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(ExperimentError):
            store.load("bad")

    def test_wrong_schema_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "old.json").write_text('{"schema": 99, "data": 1}')
        with pytest.raises(ExperimentError):
            store.load("old")

    def test_unserializable_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.save("x", object())
        assert not store.exists("x")

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden", "..\\x"])
    def test_invalid_names_rejected(self, tmp_path, bad):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.save(bad, 1)

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "deep" / "dir"
        store = ResultStore(nested)
        store.save("x", 1)
        assert nested.exists()


class TestGetOrCompute:
    def test_computes_once(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert store.get_or_compute("x", compute, metadata={"seed": 1}) == 42
        assert store.get_or_compute("x", compute, metadata={"seed": 1}) == 42
        assert len(calls) == 1

    def test_metadata_mismatch_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        assert store.get_or_compute("x", compute, metadata={"seed": 1}) == 1
        assert store.get_or_compute("x", compute, metadata={"seed": 2}) == 2
        assert len(calls) == 2

    def test_match_disabled_reuses_any(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("x", 7, metadata={"seed": 1})
        result = store.get_or_compute(
            "x", lambda: 99, metadata={"seed": 2}, match_metadata=False
        )
        assert result == 7


class TestAtomicSave:
    def test_interrupted_replace_leaves_old_result_intact(
        self, tmp_path, monkeypatch
    ):
        """Simulate the writer dying at the os.replace boundary: the
        previous result must survive untouched and no temp files leak."""
        import os as os_module

        store = ResultStore(tmp_path)
        store.save("x", {"value": 1}, metadata={"seed": 1})

        def crash_replace(src, dst):
            raise OSError("simulated crash during replace")

        monkeypatch.setattr("repro.experiments.store.os.replace", crash_replace)
        with pytest.raises(OSError):
            store.save("x", {"value": 2}, metadata={"seed": 2})
        monkeypatch.undo()

        assert store.load("x") == {"value": 1}
        assert store.metadata("x") == {"seed": 1}
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "x.json"]
        assert leftovers == []

    def test_interrupted_write_never_visible(self, tmp_path, monkeypatch):
        """A crash while writing the temp file must not corrupt or even
        create the target document."""
        store = ResultStore(tmp_path)

        real_fdopen = __import__("os").fdopen

        def crash_fdopen(fd, *args, **kwargs):
            handle = real_fdopen(fd, *args, **kwargs)
            original_write = handle.write

            def partial_write(text):
                original_write(text[: len(text) // 2])
                raise OSError("simulated crash mid-write")

            handle.write = partial_write
            return handle

        monkeypatch.setattr("repro.experiments.store.os.fdopen", crash_fdopen)
        with pytest.raises(OSError):
            store.save("y", {"value": 3})
        monkeypatch.undo()

        assert not store.exists("y")
        assert list(tmp_path.iterdir()) == []

    def test_temp_files_invisible_to_names(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("a", 1)
        (tmp_path / ".a-pending.tmp").write_text("partial")
        assert store.names() == ["a"]

    def test_concurrent_writers_never_interleave(self, tmp_path):
        """Racing writers may drop all but the last document, but the
        surviving file is always one complete valid JSON document."""
        import threading

        store = ResultStore(tmp_path)
        payloads = [{"writer": i, "blob": "x" * 2000} for i in range(8)]
        threads = [
            threading.Thread(target=store.save, args=("shared", payload))
            for payload in payloads
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        loaded = store.load("shared")
        assert loaded in payloads
