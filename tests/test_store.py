"""Tests for the experiment result store."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.store import ResultStore


class TestResultStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        data = {"alphas": [0.25, 0.5], "disconnected": [0.1, 0.01]}
        store.save("fig3", data, metadata={"seed": 1})
        assert store.load("fig3") == data
        assert store.metadata("fig3") == {"seed": 1}

    def test_exists_and_names(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.exists("a")
        store.save("b", 1)
        store.save("a", 2)
        assert store.exists("a")
        assert store.names() == ["a", "b"]

    def test_overwrite(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("x", 1)
        store.save("x", 2)
        assert store.load("x") == 2

    def test_delete(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("x", 1)
        assert store.delete("x")
        assert not store.delete("x")
        assert not store.exists("x")

    def test_missing_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.load("nope")
        with pytest.raises(ExperimentError):
            store.metadata("nope")

    def test_corrupt_file_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(ExperimentError):
            store.load("bad")

    def test_wrong_schema_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "old.json").write_text('{"schema": 99, "data": 1}')
        with pytest.raises(ExperimentError):
            store.load("old")

    def test_unserializable_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.save("x", object())
        assert not store.exists("x")

    @pytest.mark.parametrize("bad", ["", "a/b", ".hidden", "..\\x"])
    def test_invalid_names_rejected(self, tmp_path, bad):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.save(bad, 1)

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "deep" / "dir"
        store = ResultStore(nested)
        store.save("x", 1)
        assert nested.exists()


class TestGetOrCompute:
    def test_computes_once(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert store.get_or_compute("x", compute, metadata={"seed": 1}) == 42
        assert store.get_or_compute("x", compute, metadata={"seed": 1}) == 42
        assert len(calls) == 1

    def test_metadata_mismatch_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return len(calls)

        assert store.get_or_compute("x", compute, metadata={"seed": 1}) == 1
        assert store.get_or_compute("x", compute, metadata={"seed": 2}) == 2
        assert len(calls) == 2

    def test_match_disabled_reuses_any(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("x", 7, metadata={"seed": 1})
        result = store.get_or_compute(
            "x", lambda: 99, metadata={"seed": 2}, match_metadata=False
        )
        assert result == 7
