"""Tests for the resumable JSONL run ledger."""

import json

import pytest

from repro.errors import ParallelError
from repro.parallel import LEDGER_SCHEMA, RunLedger, run_fingerprint


def _fingerprint(**overrides):
    base = dict(
        store_prefix="sweep",
        seed=3,
        axes={"availability": [0.3, 0.6]},
        total_tasks=2,
    )
    base.update(overrides)
    return run_fingerprint(**base)


def _entry(key, status="done", **extra):
    entry = {
        "kind": "task",
        "index": 0,
        "key": key,
        "task_seed": 42,
        "status": status,
        "attempts": 1,
        "duration_s": None,
        "digest": "abc123",
    }
    entry.update(extra)
    return entry


class TestFingerprint:
    def test_stable_and_json_safe(self):
        fp = _fingerprint(axes={"availability": [0.3], "lifetime_ratio": [float("inf")]})
        assert fp == _fingerprint(
            axes={"availability": [0.3], "lifetime_ratio": [float("inf")]}
        )
        assert fp["schema"] == LEDGER_SCHEMA
        # inf round-trips through repr, not through JSON floats.
        assert json.loads(json.dumps(fp)) == fp

    def test_distinguishes_runs(self):
        assert _fingerprint() != _fingerprint(seed=4)
        assert _fingerprint() != _fingerprint(store_prefix="other")
        assert _fingerprint() != _fingerprint(axes={"availability": [0.3]})


class TestRunLedger:
    def test_start_append_read_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        assert not ledger.exists()
        ledger.start(_fingerprint())
        ledger.append(_entry("p1"))
        ledger.append(_entry("p2", status="failed"))
        state = ledger.read()
        assert state.header["seed"] == 3
        assert set(state.entries) == {"p1", "p2"}
        assert state.completed() == {"p1": _entry("p1")}
        assert state.resumes == 0

    def test_later_entries_win(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        ledger.start(_fingerprint())
        ledger.append(_entry("p1", status="failed"))
        ledger.append(_entry("p1", status="done", attempts=2))
        state = ledger.read()
        assert state.entries["p1"]["status"] == "done"
        assert state.entries["p1"]["attempts"] == 2

    def test_resume_markers_counted(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        ledger.start(_fingerprint())
        ledger.mark_resume()
        ledger.mark_resume()
        assert ledger.read().resumes == 2

    def test_start_truncates_previous_run(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        ledger.start(_fingerprint())
        ledger.append(_entry("old"))
        ledger.start(_fingerprint(seed=9))
        state = ledger.read()
        assert state.entries == {}
        assert state.header["seed"] == 9

    def test_append_requires_start(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        with pytest.raises(ParallelError):
            ledger.append(_entry("p1"))

    def test_append_rejects_non_task_entries(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        ledger.start(_fingerprint())
        with pytest.raises(ParallelError):
            ledger.append({"kind": "header"})
        with pytest.raises(ParallelError):
            ledger.append({"kind": "task"})  # no key

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.ledger.jsonl"
        ledger = RunLedger(path)
        ledger.start(_fingerprint())
        ledger.append(_entry("p1"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "task", "key": "p2", "stat')  # killed mid-append
        state = ledger.read()
        assert set(state.entries) == {"p1"}

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "run.ledger.jsonl"
        ledger = RunLedger(path)
        ledger.start(_fingerprint())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        ledger.append(_entry("p1"))
        with pytest.raises(ParallelError, match="corrupt"):
            ledger.read()

    def test_missing_or_headerless_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        with pytest.raises(ParallelError):
            ledger.read()
        ledger.path.write_text('{"kind": "task", "key": "p1"}\n')
        with pytest.raises(ParallelError, match="header"):
            ledger.read()

    def test_matches_fingerprint(self, tmp_path):
        ledger = RunLedger(tmp_path / "run.ledger.jsonl")
        assert not ledger.matches(_fingerprint())
        ledger.start(_fingerprint())
        assert ledger.matches(_fingerprint())
        assert not ledger.matches(_fingerprint(seed=4))
        assert not ledger.matches(_fingerprint(total_tasks=3))
