"""Public API surface checks.

Guards against accidental breakage of the documented entry points: all
``__all__`` names must resolve, and the key quickstart path must be
importable exactly as the README shows.
"""

import importlib

import pytest

_PACKAGES = [
    "repro",
    "repro.sim",
    "repro.graphs",
    "repro.churn",
    "repro.privlink",
    "repro.core",
    "repro.metrics",
    "repro.dissemination",
    "repro.routing",
    "repro.attacks",
    "repro.analysis",
    "repro.baselines",
    "repro.experiments",
    "repro.parallel",
    "repro.net",
]


class TestPublicApi:
    @pytest.mark.parametrize("name", _PACKAGES)
    def test_all_names_resolve(self, name):
        module = importlib.import_module(name)
        assert hasattr(module, "__all__"), f"{name} lacks __all__"
        for export in module.__all__:
            assert hasattr(module, export), f"{name}.{export} missing"

    def test_readme_quickstart_imports(self):
        from repro import Overlay, SystemConfig  # noqa: F401
        from repro.graphs import (  # noqa: F401
            fraction_disconnected,
            generate_social_graph,
            sample_trust_graph,
        )
        from repro.rng import RandomStreams  # noqa: F401

    def test_version_exported(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_cli_entry_point(self):
        from repro.cli import main

        assert callable(main)

    def test_no_all_duplicate_entries(self):
        for name in _PACKAGES:
            module = importlib.import_module(name)
            exports = module.__all__
            assert len(exports) == len(set(exports)), f"duplicates in {name}.__all__"
