"""Tests for the vertex-cut flow-control attack (III-E3)."""

import networkx as nx
import pytest

from repro import Overlay, SystemConfig
from repro.attacks import install_flow_control, measure_flow_control
from repro.errors import ExperimentError


@pytest.fixture
def barbell_overlay():
    """Two dense clusters joined only through node 10 (a cut vertex)."""
    graph = nx.Graph()
    left = list(range(0, 10))
    right = list(range(11, 21))
    for cluster in (left, right):
        for index, u in enumerate(cluster):
            for v in cluster[index + 1:]:
                if (u + v) % 3 != 0:
                    graph.add_edge(u, v)
        graph.add_edge(cluster[0], cluster[1])  # ensure density
    graph.add_edge(0, 10)
    graph.add_edge(10, 11)
    config = SystemConfig(
        num_nodes=21,
        availability=0.9,
        mean_offline_time=10.0,
        cache_size=30,
        shuffle_length=8,
        target_degree=16,
        seed=5,
    )
    return Overlay.build(graph, config, with_churn=False), [10]


class TestFlowControl:
    def test_honest_run_has_cross_side_links(self, barbell_overlay):
        overlay, coalition = barbell_overlay
        overlay.start()
        overlay.run_until(26.0)
        outcome = measure_flow_control(overlay, coalition)
        assert len(outcome.sides) == 2
        assert outcome.cross_side_links > 0
        assert outcome.uncontrolled_fraction > 0.3

    def test_deviating_cut_controls_flow(self, barbell_overlay):
        overlay, coalition = barbell_overlay
        install_flow_control(overlay, coalition)
        overlay.start()
        overlay.run_until(26.0)
        outcome = measure_flow_control(overlay, coalition)
        # The two sides learn only coalition pseudonyms, so essentially
        # no overlay link crosses the cut without the coalition.
        assert outcome.uncontrolled_fraction < 0.05

    def test_filter_strips_foreign_pseudonyms(self, barbell_overlay):
        overlay, coalition = barbell_overlay
        install_flow_control(overlay, coalition)
        overlay.start()
        overlay.run_until(10.0)
        member = overlay.nodes[coalition[0]]
        entries = member._build_shuffle_set(overlay.sim.now)
        owners = {overlay.owner_of_value(entry.value) for entry in entries}
        assert owners <= set(coalition)

    def test_non_cut_coalition_rejected(self, barbell_overlay):
        overlay, _ = barbell_overlay
        overlay.start()
        overlay.run_until(2.0)
        # Node 5 is interior to the left cluster, not on the bridge.
        with pytest.raises(ExperimentError):
            measure_flow_control(overlay, [5])

    def test_empty_coalition_rejected(self, barbell_overlay):
        overlay, _ = barbell_overlay
        with pytest.raises(ExperimentError):
            install_flow_control(overlay, [])

    def test_unknown_member_rejected(self, barbell_overlay):
        overlay, _ = barbell_overlay
        with pytest.raises(ExperimentError):
            install_flow_control(overlay, [999])
