"""Tests for the f-parameterized trust-graph sampler."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graphs import (
    TrustGraphSampler,
    generate_social_graph,
    sample_trust_graph,
)


@pytest.fixture(scope="module")
def source_graph():
    return generate_social_graph(1200, rng=np.random.default_rng(77))


class TestSampleTrustGraph:
    def test_exact_size(self, source_graph, rng):
        sample = sample_trust_graph(source_graph, 150, f=0.5, rng=rng)
        assert sample.number_of_nodes() == 150

    def test_relabeled_to_contiguous_ids(self, source_graph, rng):
        sample = sample_trust_graph(source_graph, 100, f=0.5, rng=rng)
        assert set(sample.nodes()) == set(range(100))

    def test_original_labels_recorded(self, source_graph, rng):
        sample = sample_trust_graph(source_graph, 50, f=0.5, rng=rng)
        originals = {sample.nodes[node]["original"] for node in sample.nodes()}
        assert len(originals) == 50
        assert originals <= set(source_graph.nodes())

    def test_connected_for_all_f(self, source_graph):
        for f in (0.0, 0.3, 0.5, 1.0):
            sample = sample_trust_graph(
                source_graph, 120, f=f, rng=np.random.default_rng(3)
            )
            assert nx.is_connected(sample), f"disconnected for f={f}"

    def test_induced_subgraph_includes_all_internal_edges(self, source_graph, rng):
        sample = sample_trust_graph(source_graph, 80, f=1.0, rng=rng)
        originals = {
            node: sample.nodes[node]["original"] for node in sample.nodes()
        }
        original_set = set(originals.values())
        expected_edges = sum(
            1
            for u, v in source_graph.edges()
            if u in original_set and v in original_set
        )
        assert sample.number_of_edges() == expected_edges

    def test_higher_f_more_edges(self, source_graph):
        low = sample_trust_graph(source_graph, 200, f=0.0, rng=np.random.default_rng(1))
        high = sample_trust_graph(source_graph, 200, f=1.0, rng=np.random.default_rng(1))
        assert high.number_of_edges() > low.number_of_edges()

    def test_f0_yields_sparse_graph(self, source_graph):
        sample = sample_trust_graph(
            source_graph, 150, f=0.0, rng=np.random.default_rng(2)
        )
        # Depth-first-ish chains stay close to tree density.
        average_degree = 2 * sample.number_of_edges() / sample.number_of_nodes()
        assert average_degree < 8

    def test_deterministic_given_rng(self, source_graph):
        a = sample_trust_graph(source_graph, 90, f=0.5, rng=np.random.default_rng(9))
        b = sample_trust_graph(source_graph, 90, f=0.5, rng=np.random.default_rng(9))
        assert set(a.edges()) == set(b.edges())

    def test_fixed_start_node(self, source_graph, rng):
        sample = sample_trust_graph(source_graph, 40, f=1.0, rng=rng, start=0)
        originals = {sample.nodes[node]["original"] for node in sample.nodes()}
        assert 0 in originals

    @pytest.mark.parametrize("bad_f", [-0.1, 1.01])
    def test_invalid_f(self, source_graph, rng, bad_f):
        with pytest.raises(SamplingError):
            sample_trust_graph(source_graph, 50, f=bad_f, rng=rng)

    def test_oversized_target_rejected(self, source_graph, rng):
        with pytest.raises(SamplingError):
            sample_trust_graph(source_graph, 10_000, f=0.5, rng=rng)

    def test_zero_target_rejected(self, source_graph, rng):
        with pytest.raises(SamplingError):
            sample_trust_graph(source_graph, 0, f=0.5, rng=rng)

    def test_unknown_start_rejected(self, source_graph, rng):
        with pytest.raises(SamplingError):
            sample_trust_graph(source_graph, 10, f=0.5, rng=rng, start=-1)


class TestSamplerEdgeCases:
    def test_empty_source_rejected(self):
        with pytest.raises(SamplingError):
            TrustGraphSampler(nx.Graph())

    def test_exhausted_component_raises(self, rng):
        # Two disconnected triangles; asking for 5 from one is impossible.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        sampler = TrustGraphSampler(graph)
        with pytest.raises(SamplingError):
            sampler.sample(5, f=1.0, rng=rng, start=0)

    def test_sample_whole_component(self, rng):
        graph = nx.path_graph(6)
        sample = TrustGraphSampler(graph).sample(6, f=0.0, rng=rng, start=0)
        assert sample.number_of_nodes() == 6
        assert nx.is_connected(sample)
