"""Seed-node configuration: parsing, validation, overrides, node CLI."""

import json

import pytest

from repro.errors import NetError
from repro.net.config import (
    NetNodeConfig,
    load_net_config,
    load_trust_file,
    merge_overrides,
    parse_hostport,
)

try:
    import tomllib  # noqa: F401 - availability probe (3.11+)

    HAVE_TOMLLIB = True
except ImportError:  # pragma: no cover - 3.9/3.10 environments
    HAVE_TOMLLIB = False


class TestHostport:
    def test_parses(self):
        assert parse_hostport("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_hostport("seed.example:80") == ("seed.example", 80)

    @pytest.mark.parametrize(
        "bad", ["nohost", ":9000", "host:", "host:abc", "host:0", "host:70000"]
    )
    def test_rejects(self, bad):
        with pytest.raises(NetError):
            parse_hostport(bad)


class TestConfigFile:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "node.json"
        path.write_text(
            json.dumps(
                {
                    "node": {
                        "node_id": 3,
                        "host": "127.0.0.1",
                        "port": 9003,
                        "seconds_per_period": 0.5,
                        "seed": 11,
                    },
                    "bootstrap": ["127.0.0.1:9000", "127.0.0.1:9001"],
                    "trusted": [0, 1, 2],
                    "protocol": {"shuffle_length": 4, "cache_size": 20},
                    "liveness": {"suspect_after": 2.0, "dead_after": 6.0},
                    "backoff": {"base": 0.5, "attempts": 5},
                }
            )
        )
        config = load_net_config(str(path))
        assert config.node_id == 3
        assert config.port == 9003
        assert config.seconds_per_period == 0.5
        assert config.seed == 11
        assert config.bootstrap == (("127.0.0.1", 9000), ("127.0.0.1", 9001))
        assert config.trusted == (0, 1, 2)
        assert config.shuffle_length == 4
        assert config.cache_size == 20
        assert config.suspect_after == 2.0
        assert config.backoff_base == 0.5
        assert config.bootstrap_attempts == 5

    def test_defaults_for_missing_sections(self, tmp_path):
        path = tmp_path / "node.json"
        path.write_text("{}")
        config = load_net_config(str(path))
        assert config == NetNodeConfig()

    @pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")
    def test_toml_parses_when_available(self, tmp_path):
        path = tmp_path / "node.toml"
        path.write_text(
            'bootstrap = ["127.0.0.1:9000"]\ntrusted = [0, 1]\n\n'
            '[node]\nnode_id = 2\nport = 9002\n'
        )
        config = load_net_config(str(path))
        assert config.node_id == 2
        assert config.bootstrap == (("127.0.0.1", 9000),)

    def test_garbage_json_wrapped_as_neterror(self, tmp_path):
        path = tmp_path / "node.json"
        path.write_text("{not json")
        with pytest.raises(NetError):
            load_net_config(str(path))

    def test_non_object_top_level_refused(self, tmp_path):
        path = tmp_path / "node.json"
        path.write_text("[1, 2]")
        with pytest.raises(NetError):
            load_net_config(str(path))

    def test_bad_section_type_refused(self, tmp_path):
        path = tmp_path / "node.json"
        path.write_text('{"node": [1]}')
        with pytest.raises(NetError):
            load_net_config(str(path))

    def test_bad_value_wrapped(self, tmp_path):
        path = tmp_path / "node.json"
        path.write_text('{"node": {"node_id": "seven"}}')
        with pytest.raises(NetError):
            load_net_config(str(path))

    def test_validation_in_dataclass(self):
        with pytest.raises(NetError):
            NetNodeConfig(node_id=-1)
        with pytest.raises(NetError):
            NetNodeConfig(seconds_per_period=0.0)
        with pytest.raises(NetError):
            NetNodeConfig(pseudonym_lifetime=-1.0)


class TestTrustFile:
    def test_extracts_node_entry(self, tmp_path):
        path = tmp_path / "trust.json"
        path.write_text(json.dumps({"0": [1, 2], "1": [0, 2]}))
        assert load_trust_file(str(path), 1) == (0, 2)

    def test_missing_node_refused(self, tmp_path):
        path = tmp_path / "trust.json"
        path.write_text(json.dumps({"0": [1]}))
        with pytest.raises(NetError):
            load_trust_file(str(path), 5)

    def test_non_list_entry_refused(self, tmp_path):
        path = tmp_path / "trust.json"
        path.write_text(json.dumps({"0": "everyone"}))
        with pytest.raises(NetError):
            load_trust_file(str(path), 0)


class TestOverrides:
    def test_none_values_skipped(self):
        base = NetNodeConfig(node_id=1, port=9001)
        merged = merge_overrides(base, node_id=None, port=9100, seed=None)
        assert merged.node_id == 1
        assert merged.port == 9100

    def test_validation_reapplied(self):
        with pytest.raises(NetError):
            merge_overrides(NetNodeConfig(), seconds_per_period=-1.0)


class TestNodeCli:
    def test_bad_config_exits_2(self, tmp_path, capsys):
        from repro.net.cli import node_main

        path = tmp_path / "node.json"
        path.write_text("{broken")
        assert node_main(["--config", str(path)]) == 2
        assert "repro node:" in capsys.readouterr().err

    def test_bad_bootstrap_exits_2(self, capsys):
        from repro.net.cli import node_main

        assert node_main(["--bootstrap", "nope"]) == 2

    def test_short_seed_run_exits_0(self, capsys):
        # A seed node with a duration: starts, idles, drains, exits 0.
        from repro.net.cli import node_main

        code = node_main(
            [
                "--port", "0",
                "--node-id", "0",
                "--seconds-per-period", "0.01",
                "--duration", "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "listening on" in out
        assert "stopped at period" in out

    def test_usage_error_for_unknown_command(self, capsys):
        from repro.net.cli import main

        assert main(["frobnicate"]) == 2
