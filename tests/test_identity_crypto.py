"""Tests for identities and the simulated layered encryption."""

import pytest

from repro.errors import MixnetError
from repro.privlink import (
    KeyPair,
    KeyRegistry,
    NodeID,
    Sealed,
    message_digest,
    seal,
    seal_layers,
    unseal,
)


class TestNodeID:
    def test_equality_and_ordering(self):
        assert NodeID(1) == NodeID(1)
        assert NodeID(1) != NodeID(2)
        assert NodeID(1) < NodeID(2)

    def test_realms_distinguish(self):
        assert NodeID(1, realm="relay") != NodeID(1, realm="node")

    def test_str(self):
        assert str(NodeID(3, realm="relay")) == "relay:3"


class TestKeyRegistry:
    def test_unique_keys(self):
        registry = KeyRegistry()
        keys = [registry.issue() for _ in range(100)]
        assert len({key.public for key in keys}) == 100

    def test_matches(self):
        registry = KeyRegistry()
        a = registry.issue()
        b = registry.issue()
        assert a.matches(a.public)
        assert not a.matches(b.public)


class TestSealing:
    def test_seal_unseal_roundtrip(self):
        key = KeyRegistry().issue()
        sealed = seal(key.public, ("deliver", 7), "payload")
        hint, inner = unseal(key, sealed)
        assert hint == ("deliver", 7)
        assert inner == "payload"

    def test_wrong_key_rejected(self):
        registry = KeyRegistry()
        key_a = registry.issue()
        key_b = registry.issue()
        sealed = seal(key_a.public, "hint", "data")
        with pytest.raises(MixnetError):
            unseal(key_b, sealed)

    def test_unseal_non_sealed_rejected(self):
        key = KeyRegistry().issue()
        with pytest.raises(MixnetError):
            unseal(key, "not sealed")  # type: ignore[arg-type]

    def test_layering_order(self):
        registry = KeyRegistry()
        keys = [registry.issue() for _ in range(3)]
        onion = seal_layers(
            tuple((key.public, f"hop{index}") for index, key in enumerate(keys)),
            "core",
        )
        # Outermost layer belongs to the first hop.
        current = onion
        for index, key in enumerate(keys):
            hint, current = unseal(key, current)
            assert hint == f"hop{index}"
        assert current == "core"

    def test_empty_hops_returns_payload(self):
        assert seal_layers((), "raw") == "raw"

    def test_inner_layers_unreadable_by_outer_relay(self):
        registry = KeyRegistry()
        key_a = registry.issue()
        key_b = registry.issue()
        onion = seal_layers(
            ((key_a.public, "first"), (key_b.public, "second")), "secret"
        )
        _, inner = unseal(key_a, onion)
        assert isinstance(inner, Sealed)
        with pytest.raises(MixnetError):
            unseal(key_a, inner)


class TestDigest:
    def test_stable(self):
        sealed = seal(1, "h", "data")
        assert message_digest(sealed) == message_digest(sealed)

    def test_distinguishes_content(self):
        assert message_digest(seal(1, "h", "a")) != message_digest(seal(1, "h", "b"))


class TestLayerDigestStamping:
    """Seal-time stamped digests must equal the from-scratch recursion."""

    HOPS = ((11, ("relay", 2)), (22, ("relay", 3)), (33, ("deliver", 7)))

    def test_stamped_equals_recomputed(self):
        from repro.privlink.crypto import header_digest, layer_digest

        digests = tuple(header_digest(pk, hint) for pk, hint in self.HOPS)
        stamped = seal_layers(self.HOPS, "payload", header_digests=digests)
        plain = seal_layers(self.HOPS, "payload")
        layer, reference = stamped, plain
        while isinstance(layer, Sealed):
            assert layer.__dict__["_layer_digest"] == layer_digest(reference)
            assert layer.public_key == reference.public_key
            assert layer.routing_hint == reference.routing_hint
            layer, reference = layer.payload, reference.payload
        assert layer == reference == "payload"

    def test_mismatched_digest_count_rejected(self):
        from repro.privlink.crypto import header_digest

        digests = (header_digest(11, ("relay", 2)),)
        with pytest.raises(MixnetError, match="parallel"):
            seal_layers(self.HOPS, "payload", header_digests=digests)

    def test_layer_digest_caches_on_instance(self):
        from repro.privlink.crypto import layer_digest

        onion = seal_layers(self.HOPS, "payload")
        assert "_layer_digest" not in onion.__dict__
        first = layer_digest(onion)
        assert onion.__dict__["_layer_digest"] == first
        assert layer_digest(onion) == first
        # The recursion caches every inner layer too.
        assert "_layer_digest" in onion.payload.__dict__

    def test_digest_depends_on_every_layer(self):
        from repro.privlink.crypto import layer_digest

        base = seal_layers(self.HOPS, "payload")
        other_payload = seal_layers(self.HOPS, "different")
        other_hop = seal_layers(
            ((11, ("relay", 2)), (22, ("relay", 4)), (33, ("deliver", 7))),
            "payload",
        )
        assert layer_digest(base) != layer_digest(other_payload)
        assert layer_digest(base) != layer_digest(other_hop)
