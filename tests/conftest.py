"""Shared fixtures for the test suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro import SystemConfig
from repro.rng import RandomStreams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic stream factory."""
    return RandomStreams(seed=12345)


@pytest.fixture
def small_trust_graph() -> nx.Graph:
    """A small connected trust graph with hubs and leaves (30 nodes)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(30))
    # A hub-and-spoke core plus a ring, so both high- and low-degree
    # nodes exist and the graph is connected but easily partitioned.
    for node in range(1, 10):
        graph.add_edge(0, node)
    for node in range(10, 29):
        graph.add_edge(node, node + 1)
    graph.add_edge(9, 10)
    graph.add_edge(29, 0)
    for node in range(10, 30, 4):
        graph.add_edge(node, (node * 7) % 10)
    return graph


@pytest.fixture
def small_config(small_trust_graph) -> SystemConfig:
    """A config matched to the small trust graph."""
    return SystemConfig(
        num_nodes=small_trust_graph.number_of_nodes(),
        availability=0.6,
        mean_offline_time=5.0,
        lifetime_ratio=3.0,
        cache_size=40,
        shuffle_length=8,
        target_degree=10,
        seed=99,
    )
