"""Tests for the tracer."""

from repro.sim import NullTracer, Tracer


class TestTracer:
    def test_records_entries(self):
        tracer = Tracer()
        tracer.record(1.0, "shuffle", node=3)
        tracer.record(2.0, "expiry", node=4)
        assert len(tracer) == 2
        records = list(tracer)
        assert records[0].category == "shuffle"
        assert records[0].details == {"node": 3}

    def test_by_category(self):
        tracer = Tracer()
        tracer.record(1.0, "a")
        tracer.record(2.0, "b")
        tracer.record(3.0, "a")
        assert len(tracer.by_category("a")) == 2
        assert len(tracer.by_category("missing")) == 0

    def test_counts(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.record(0.0, "x")
        tracer.record(0.0, "y")
        assert tracer.counts() == {"x": 3, "y": 1}

    def test_max_records_cap(self):
        tracer = Tracer(max_records=2)
        for index in range(5):
            tracer.record(float(index), "c")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_clear(self):
        tracer = Tracer(max_records=1)
        tracer.record(0.0, "a")
        tracer.record(0.0, "b")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_str_rendering(self):
        tracer = Tracer()
        tracer.record(1.5, "evt", key="value")
        text = str(list(tracer)[0])
        assert "evt" in text and "key=value" in text


class TestNullTracer:
    def test_discards_everything(self):
        tracer = NullTracer()
        tracer.record(1.0, "anything", x=1)
        assert len(tracer) == 0
        assert not tracer.enabled
