"""Tests for shuffle wire types."""

import pytest

from repro.core import Pseudonym, ShuffleRequest, ShuffleResponse, make_shuffle_set
from repro.errors import ProtocolError
from repro.privlink import Address


def _pseudonym(value):
    return Pseudonym(value=value, address=Address(value), expires_at=100.0)


class TestShuffleRequest:
    def test_exactly_one_reply_channel(self):
        entries = (_pseudonym(1),)
        with pytest.raises(ProtocolError):
            ShuffleRequest(entries=entries)
        with pytest.raises(ProtocolError):
            ShuffleRequest(entries=entries, reply_node=1, reply_address=Address(2))

    def test_trusted_flag(self):
        entries = (_pseudonym(1),)
        trusted = ShuffleRequest(entries=entries, reply_node=1)
        anonymous = ShuffleRequest(entries=entries, reply_address=Address(2))
        assert trusted.over_trusted_link
        assert not anonymous.over_trusted_link

    def test_empty_entries_rejected(self):
        with pytest.raises(ProtocolError):
            ShuffleRequest(entries=(), reply_node=1)


class TestShuffleResponse:
    def test_empty_entries_rejected(self):
        with pytest.raises(ProtocolError):
            ShuffleResponse(entries=())

    def test_carries_entries(self):
        response = ShuffleResponse(entries=(_pseudonym(1), _pseudonym(2)))
        assert len(response.entries) == 2


class TestMakeShuffleSet:
    def test_own_pseudonym_leads(self):
        own = _pseudonym(1)
        entries = make_shuffle_set(own, (_pseudonym(2), _pseudonym(3)), limit=5)
        assert entries[0] == own
        assert len(entries) == 3

    def test_limit_enforced(self):
        own = _pseudonym(1)
        extras = tuple(_pseudonym(value) for value in range(2, 20))
        entries = make_shuffle_set(own, extras, limit=4)
        assert len(entries) == 4
        assert entries[0] == own

    def test_own_value_not_duplicated(self):
        own = _pseudonym(1)
        entries = make_shuffle_set(own, (_pseudonym(1), _pseudonym(2)), limit=5)
        values = [entry.value for entry in entries]
        assert values.count(1) == 1

    def test_limit_one_sends_only_own(self):
        own = _pseudonym(1)
        entries = make_shuffle_set(own, (_pseudonym(2),), limit=1)
        assert entries == (own,)

    def test_invalid_limit(self):
        with pytest.raises(ProtocolError):
            make_shuffle_set(_pseudonym(1), (), limit=0)
