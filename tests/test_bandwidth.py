"""Tests for bandwidth accounting."""

import pytest

from repro import Overlay
from repro.errors import ExperimentError
from repro.metrics import WireModel, bandwidth_report


class TestWireModel:
    def test_per_pseudonym_size(self):
        model = WireModel()
        assert model.per_pseudonym_bytes == 8 + 32 + 8

    def test_message_size(self):
        model = WireModel()
        assert model.message_bytes(0) == 64 + 144
        assert model.message_bytes(40) == 64 + 144 + 40 * 48

    def test_custom_sizes(self):
        model = WireModel(
            pseudonym_value_bytes=16,
            address_bytes=20,
            expiry_bytes=4,
            envelope_bytes=10,
            onion_overhead_bytes=0,
        )
        assert model.message_bytes(2) == 10 + 2 * 40

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            WireModel(address_bytes=-1)

    def test_negative_count_rejected(self):
        with pytest.raises(ExperimentError):
            WireModel().message_bytes(-1)


class TestBandwidthReport:
    def _overlay(self, graph, config, horizon=20.0):
        overlay = Overlay.build(graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(horizon)
        return overlay

    def test_report_consistency(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config)
        report = bandwidth_report(overlay)
        assert report.total_messages == sum(
            node.counters.messages_sent for node in overlay.nodes
        )
        assert report.total_bytes == (
            report.total_messages * int(report.mean_message_bytes)
        )
        assert report.bytes_per_node_per_period > 0

    def test_rate_scales_with_message_rate(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config)
        report = bandwidth_report(overlay)
        # ~2 messages per node per period at full availability.
        expected = 2.0 * report.mean_message_bytes
        assert report.bytes_per_node_per_period == pytest.approx(
            expected, rel=0.4
        )

    def test_fill_factor_shrinks_messages(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config, horizon=5.0)
        full = bandwidth_report(overlay, fill_factor=1.0)
        half = bandwidth_report(overlay, fill_factor=0.5)
        assert half.total_bytes < full.total_bytes

    def test_invalid_fill_factor(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config, horizon=2.0)
        with pytest.raises(ExperimentError):
            bandwidth_report(overlay, fill_factor=0.0)

    def test_str(self, small_trust_graph, small_config):
        overlay = self._overlay(small_trust_graph, small_config, horizon=5.0)
        text = str(bandwidth_report(overlay))
        assert "KiB per node per shuffling period" in text
