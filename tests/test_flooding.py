"""Tests for controlled flooding."""

import pytest

from repro import Overlay
from repro.dissemination import FloodBroadcast, coverage_report
from repro.errors import DisseminationError


def _converged_overlay(graph, config, warmup=15.0):
    overlay = Overlay.build(graph, config, with_churn=False)
    overlay.start()
    overlay.run_until(warmup)
    return overlay


class TestFloodBroadcast:
    def test_full_coverage_on_connected_overlay(
        self, small_trust_graph, small_config
    ):
        overlay = _converged_overlay(small_trust_graph, small_config)
        flood = FloodBroadcast(overlay, ttl=10)
        flood.install()
        record = flood.broadcast(0, payload="news")
        overlay.run_until(overlay.sim.now + 5.0)
        report = coverage_report(record, overlay.online_ids())
        assert report.coverage == 1.0
        assert report.mean_latency > 0.0

    def test_ttl_limits_reach(self, small_trust_graph, small_config):
        overlay = _converged_overlay(small_trust_graph, small_config, warmup=5.0)
        # With ttl=1 the flood reaches only the origin's direct overlay
        # neighbors (trusted plus established pseudonym channels).
        flood = FloodBroadcast(overlay, ttl=1)
        flood.install()
        snapshot = overlay.snapshot()
        record = flood.broadcast(0, payload="x")
        overlay.run_until(overlay.sim.now + 3.0)
        neighbors = set(snapshot.neighbors(0))
        reached = set(record.delivery_times) - {0}
        assert reached <= neighbors
        assert reached  # at least the trust neighbors heard it

    def test_duplicates_suppressed(self, small_trust_graph, small_config):
        overlay = _converged_overlay(small_trust_graph, small_config)
        flood = FloodBroadcast(overlay, ttl=8)
        flood.install()
        record = flood.broadcast(0, payload="x")
        overlay.run_until(overlay.sim.now + 5.0)
        # Every node delivered at most once.
        assert len(record.delivery_times) <= small_config.num_nodes

    def test_offline_origin_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        flood = FloodBroadcast(overlay)
        flood.install()
        with pytest.raises(DisseminationError):
            flood.broadcast(0, payload="x")

    def test_double_install_rejected(self, small_trust_graph, small_config):
        overlay = _converged_overlay(small_trust_graph, small_config, warmup=1.0)
        flood = FloodBroadcast(overlay)
        flood.install()
        with pytest.raises(DisseminationError):
            flood.install()

    def test_invalid_ttl(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(DisseminationError):
            FloodBroadcast(overlay, ttl=0)

    def test_multiple_broadcasts_tracked_separately(
        self, small_trust_graph, small_config
    ):
        overlay = _converged_overlay(small_trust_graph, small_config)
        flood = FloodBroadcast(overlay, ttl=8)
        flood.install()
        first = flood.broadcast(0, payload="a")
        second = flood.broadcast(1, payload="b")
        overlay.run_until(overlay.sim.now + 5.0)
        assert first.message_id != second.message_id
        assert flood.record(first.message_id) is first

    def test_unknown_record_raises(self, small_trust_graph, small_config):
        overlay = _converged_overlay(small_trust_graph, small_config, warmup=1.0)
        flood = FloodBroadcast(overlay)
        flood.install()
        with pytest.raises(DisseminationError):
            flood.record(999)
