"""Smoke-scale tests for the per-figure harnesses.

These verify the harness mechanics (structure of results, table
rendering, qualitative ordering) at SMOKE scale; the quantitative
reproduction runs in benchmarks/ at QUICK or PAPER scale.
"""

import math

import pytest

from repro.experiments import (
    SMOKE,
    availability_sweep,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)


@pytest.fixture(scope="module")
def sweep():
    return availability_sweep(SMOKE, f=0.5, seed=1, alphas=(0.25, 0.6))


class TestAvailabilitySweep:
    def test_points_structured(self, sweep):
        assert [point.alpha for point in sweep.points] == [0.25, 0.6]
        for point in sweep.points:
            assert 0.0 <= point.overlay_disconnected <= 1.0
            assert point.overlay_path_length > 0.0

    def test_overlay_beats_trust_at_moderate_alpha(self, sweep):
        point = sweep.points[1]  # alpha = 0.6
        assert point.overlay_disconnected <= point.trust_disconnected

    def test_format_disconnected_table(self, sweep):
        table = sweep.format_table("disconnected")
        assert "Figure 3" in table
        assert "trust_graph" in table and "random_graph" in table
        assert "0.25" in table

    def test_format_path_table(self, sweep):
        table = sweep.format_table("path")
        assert "Figure 4" in table


class TestFigure5:
    def test_histograms(self):
        results = figure5(SMOKE, seed=1, fs=(0.5,), alpha=0.5)
        dist = results[0.5]
        assert sum(dist.overlay_histogram.values()) > 0
        trust_mean, overlay_mean, random_mean = dist.mean_degrees()
        # Pseudonym links shift the distribution right.
        assert overlay_mean > trust_mean
        table = dist.format_table()
        assert "Figure 5" in table


class TestFigure6:
    def test_overheads(self):
        results = figure6(SMOKE, seed=1, fs=(0.5,), alpha=0.5)
        result = results[0.5]
        assert len(result.overheads) == SMOKE.num_nodes
        # Ranked by descending trust degree.
        degrees = [entry.trust_degree for entry in result.overheads]
        assert degrees == sorted(degrees, reverse=True)
        # System-wide mean messages/period should be near 2.
        assert 1.0 < result.system_mean < 3.0
        assert "Figure 6" in result.format_table()


class TestFigure7:
    def test_lifetime_ordering(self):
        result = figure7(
            SMOKE, seed=1, ratios=(1.0, 9.0), alphas=(0.3, 0.6)
        )
        assert set(result.overlay_curves) == {1.0, 9.0}
        # Longer lifetimes never hurt; allow small noise at smoke scale.
        for short, long in zip(
            result.overlay_curves[1.0], result.overlay_curves[9.0]
        ):
            assert long <= short + 0.15
        table = result.format_table()
        assert "Figure 7" in table and "r=9" in table


class TestFigure8:
    def test_series_aligned(self):
        result = figure8(SMOKE, seed=1, ratios=(3.0,))
        series = result.overlay_series[3.0]
        assert len(series) == len(result.trust_series)
        assert "Figure 8" in result.format_table()

    def test_convergence_recorded(self):
        result = figure8(SMOKE, seed=1, ratios=(9.0,))
        assert 9.0 in result.convergence_times


class TestFigure9:
    def test_replacement_series(self):
        result = figure9(SMOKE, seed=1, ratios=(3.0, math.inf))
        assert set(result.series) == {3.0, math.inf}
        # Non-expiring pseudonyms stabilize at a (near-)zero replacement
        # rate; expiring ones keep replacing links.
        assert result.stable_rates[math.inf] < result.stable_rates[3.0]
        table = result.format_table()
        assert "Figure 9" in table and "Infinite" in table


class TestWorkersEquivalence:
    """The workers= contract: parallel figure points are identical."""

    def test_availability_sweep_parallel_identical(self, sweep):
        parallel = availability_sweep(
            SMOKE, f=0.5, seed=1, alphas=(0.25, 0.6), workers=2
        )
        assert parallel == sweep

    def test_figure9_parallel_identical(self):
        import numpy as np

        serial = figure9(SMOKE, seed=1, ratios=(3.0, math.inf))
        parallel = figure9(SMOKE, seed=1, ratios=(3.0, math.inf), workers=2)
        assert parallel.stable_rates == serial.stable_rates
        for ratio in serial.series:
            assert np.array_equal(
                parallel.series[ratio].times, serial.series[ratio].times
            )
            assert np.array_equal(
                parallel.series[ratio].values, serial.series[ratio].values
            )
