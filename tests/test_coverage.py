"""Tests for broadcast coverage reporting."""

import pytest

from repro.dissemination import BroadcastRecord, coverage_report
from repro.errors import DisseminationError


class TestBroadcastRecord:
    def test_origin_counted(self):
        record = BroadcastRecord(1, origin=0, started_at=10.0)
        assert record.deliveries() == 1
        assert record.latency_of(0) == 0.0

    def test_latency_of_unreached_is_none(self):
        record = BroadcastRecord(1, origin=0, started_at=0.0)
        assert record.latency_of(5) is None

    def test_max_latency(self):
        record = BroadcastRecord(1, origin=0, started_at=10.0)
        record.delivery_times[1] = 12.0
        record.delivery_times[2] = 15.0
        assert record.max_latency() == pytest.approx(5.0)


class TestCoverageReport:
    def _record(self):
        record = BroadcastRecord(7, origin=0, started_at=10.0)
        record.delivery_times[1] = 11.0
        record.delivery_times[2] = 12.0
        record.forwards = 9
        return record

    def test_full_population(self):
        report = coverage_report(self._record(), [0, 1, 2])
        assert report.reached == 3
        assert report.coverage == 1.0
        assert report.forwards == 9

    def test_partial_population(self):
        report = coverage_report(self._record(), [0, 1, 2, 3, 4])
        assert report.reached == 3
        assert report.coverage == pytest.approx(0.6)

    def test_latency_statistics(self):
        report = coverage_report(self._record(), [1, 2])
        assert report.mean_latency == pytest.approx(1.5)
        assert report.max_latency == pytest.approx(2.0)
        assert report.p95_latency <= report.max_latency

    def test_unreached_population(self):
        report = coverage_report(self._record(), [8, 9])
        assert report.reached == 0
        assert report.coverage == 0.0
        assert report.mean_latency == 0.0

    def test_empty_population_rejected(self):
        with pytest.raises(DisseminationError):
            coverage_report(self._record(), [])

    def test_str(self):
        text = str(coverage_report(self._record(), [0, 1, 2]))
        assert "reached 3/3" in text
