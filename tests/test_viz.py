"""Tests for terminal visualization helpers."""

import pytest

from repro.errors import ExperimentError
from repro.viz import bar_chart, line_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        result = sparkline([5.0, 5.0, 5.0])
        assert result == "▁▁▁"

    def test_monotone(self):
        result = sparkline([0, 1, 2, 3])
        assert result[0] == "▁"
        assert result[-1] == "█"
        assert len(result) == 4

    def test_fixed_bounds_clamp(self):
        result = sparkline([-1.0, 0.5, 2.0], lo=0.0, hi=1.0)
        assert result[0] == "▁"
        assert result[-1] == "█"


class TestLinePlot:
    def test_basic_render(self):
        plot = line_plot(
            {"up": ([0, 1, 2, 3], [0, 1, 2, 3])},
            width=20,
            height=5,
            title="T",
        )
        lines = plot.splitlines()
        assert lines[0] == "T"
        assert "* up" in plot
        assert any("*" in line for line in lines[1:6])

    def test_multiple_series_distinct_markers(self):
        plot = line_plot(
            {
                "a": ([0, 1], [0, 1]),
                "b": ([0, 1], [1, 0]),
            },
            width=10,
            height=4,
        )
        assert "* a" in plot and "o b" in plot

    def test_axis_labels(self):
        plot = line_plot({"s": ([0, 10], [2.0, 4.0])}, width=10, height=4)
        assert "x: 0 .. 10" in plot
        assert "4" in plot  # y max label

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ExperimentError):
            line_plot({"bad": ([0, 1], [0])})

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            line_plot({})

    def test_too_small_rejected(self):
        with pytest.raises(ExperimentError):
            line_plot({"s": ([0], [0])}, width=4, height=2)


class TestBarChart:
    def test_basic(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a")
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0})
        assert "a |" in chart

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="Counts").startswith("Counts")

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            bar_chart({})
