"""Tests for the synthetic social-graph generators."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import (
    clustering_coefficient,
    degree_sequence,
    erdos_renyi_gnm,
    generate_community_social_graph,
    generate_social_graph,
    powerlaw_exponent_estimate,
)


class TestGenerateSocialGraph:
    def test_node_count(self, rng):
        graph = generate_social_graph(500, rng=rng)
        assert graph.number_of_nodes() == 500

    def test_connected(self, rng):
        graph = generate_social_graph(500, rng=rng)
        assert nx.is_connected(graph)

    def test_average_degree_near_target(self, rng):
        graph = generate_social_graph(1000, edges_per_node=9, rng=rng)
        average = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert 14 <= average <= 20  # ~2 * edges_per_node

    def test_heavy_tailed_degrees(self, rng):
        graph = generate_social_graph(1500, rng=rng)
        degrees = degree_sequence(graph)
        # The max degree should far exceed the median (hub structure).
        assert degrees[0] > 4 * np.median(degrees)
        exponent = powerlaw_exponent_estimate(degrees)
        assert 1.3 < exponent < 4.0

    def test_clustering_exceeds_random(self, rng):
        graph = generate_social_graph(600, rng=rng)
        random_graph = erdos_renyi_gnm(
            600, graph.number_of_edges(), rng=np.random.default_rng(0)
        )
        assert clustering_coefficient(graph) > 5 * clustering_coefficient(
            random_graph
        )

    def test_deterministic_given_rng(self):
        a = generate_social_graph(300, rng=np.random.default_rng(5))
        b = generate_social_graph(300, rng=np.random.default_rng(5))
        assert set(a.edges()) == set(b.edges())

    def test_no_self_loops(self, rng):
        graph = generate_social_graph(400, rng=rng)
        assert all(u != v for u, v in graph.edges())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 5, "edges_per_node": 9},
            {"num_nodes": 100, "edges_per_node": 0},
            {"num_nodes": 100, "triad_probability": 1.5},
        ],
    )
    def test_invalid_parameters(self, rng, kwargs):
        with pytest.raises(GraphError):
            generate_social_graph(rng=rng, **kwargs)


class TestCommunityGraph:
    def test_connected_and_sized(self, rng):
        graph = generate_community_social_graph(
            400, num_communities=4, edges_per_node=6, rng=rng
        )
        assert graph.number_of_nodes() == 400
        assert nx.is_connected(graph)

    def test_too_few_nodes_rejected(self, rng):
        with pytest.raises(GraphError):
            generate_community_social_graph(
                20, num_communities=5, edges_per_node=9, rng=rng
            )

    def test_invalid_community_count(self, rng):
        with pytest.raises(GraphError):
            generate_community_social_graph(100, num_communities=0, rng=rng)
