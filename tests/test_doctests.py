"""Run the doctests embedded in module and class docstrings."""

import doctest

import pytest

import repro.config
import repro.rng
import repro.sim.simulator

_MODULES = [repro.rng, repro.sim.simulator, repro.config]


@pytest.mark.parametrize("module", _MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
