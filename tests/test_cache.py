"""Tests for the CYCLON-style pseudonym cache."""

import pytest

from repro.core import PseudonymCache, Pseudonym
from repro.errors import ProtocolError
from repro.privlink import Address


def _pseudonym(value, expires_at=100.0):
    return Pseudonym(value=value, address=Address(value), expires_at=expires_at)


class TestBasics:
    def test_empty_on_start(self):
        cache = PseudonymCache(10)
        assert len(cache) == 0
        assert cache.pseudonyms() == []

    def test_merge_inserts(self):
        cache = PseudonymCache(10)
        inserted = cache.merge([_pseudonym(1), _pseudonym(2)], now=0.0)
        assert inserted == 2
        assert len(cache) == 2

    def test_contains(self):
        cache = PseudonymCache(10)
        entry = _pseudonym(1)
        cache.merge([entry], now=0.0)
        assert entry in cache
        assert _pseudonym(2) not in cache

    def test_own_pseudonym_never_cached(self):
        cache = PseudonymCache(10)
        cache.merge([_pseudonym(7)], now=0.0, own_value=7)
        assert len(cache) == 0

    def test_expired_entries_not_inserted(self):
        cache = PseudonymCache(10)
        cache.merge([_pseudonym(1, expires_at=5.0)], now=6.0)
        assert len(cache) == 0

    def test_duplicate_value_keeps_later_expiry(self):
        cache = PseudonymCache(10)
        cache.merge([_pseudonym(1, expires_at=10.0)], now=0.0)
        cache.merge([_pseudonym(1, expires_at=20.0)], now=0.0)
        assert len(cache) == 1
        assert cache.pseudonyms()[0].expires_at == 20.0

    def test_duplicate_value_ignores_earlier_expiry(self):
        cache = PseudonymCache(10)
        cache.merge([_pseudonym(1, expires_at=20.0)], now=0.0)
        cache.merge([_pseudonym(1, expires_at=10.0)], now=0.0)
        assert cache.pseudonyms()[0].expires_at == 20.0

    def test_invalid_capacity(self):
        with pytest.raises(ProtocolError):
            PseudonymCache(0)


class TestExpiry:
    def test_remove_expired(self):
        cache = PseudonymCache(10)
        cache.merge([_pseudonym(1, 5.0), _pseudonym(2, 50.0)], now=0.0)
        removed = cache.remove_expired(now=10.0)
        assert removed == 1
        assert len(cache) == 1

    def test_remove_specific(self):
        cache = PseudonymCache(10)
        entry = _pseudonym(1)
        cache.merge([entry], now=0.0)
        assert cache.remove(entry)
        assert not cache.remove(entry)


class TestReplacementPolicy:
    def test_capacity_respected(self):
        cache = PseudonymCache(3)
        cache.merge([_pseudonym(value) for value in range(10)], now=0.0)
        assert len(cache) == 3

    def test_just_sent_evicted_first(self):
        cache = PseudonymCache(3)
        first_batch = [_pseudonym(1), _pseudonym(2), _pseudonym(3)]
        cache.merge(first_batch, now=0.0)
        # Entry 2 was just sent to the partner; it should be the victim.
        cache.merge([_pseudonym(4)], now=1.0, just_sent=[_pseudonym(2)])
        values = {entry.value for entry in cache.pseudonyms()}
        assert values == {1, 3, 4}

    def test_oldest_evicted_when_nothing_sent(self):
        cache = PseudonymCache(2)
        cache.merge([_pseudonym(1)], now=0.0)
        cache.merge([_pseudonym(2)], now=1.0)
        cache.merge([_pseudonym(3)], now=2.0)
        values = {entry.value for entry in cache.pseudonyms()}
        assert values == {2, 3}

    def test_expired_dropped_before_eviction(self):
        cache = PseudonymCache(2)
        cache.merge([_pseudonym(1, expires_at=1.0), _pseudonym(2)], now=0.0)
        cache.merge([_pseudonym(3)], now=5.0)
        values = {entry.value for entry in cache.pseudonyms()}
        assert values == {2, 3}


class TestSelectForShuffle:
    def test_respects_count(self, rng):
        cache = PseudonymCache(20)
        cache.merge([_pseudonym(value) for value in range(10)], now=0.0)
        selection = cache.select_for_shuffle(rng, 4, now=0.0)
        assert len(selection) == 4
        assert len({entry.value for entry in selection}) == 4

    def test_returns_all_when_count_exceeds_size(self, rng):
        cache = PseudonymCache(20)
        cache.merge([_pseudonym(value) for value in range(3)], now=0.0)
        selection = cache.select_for_shuffle(rng, 10, now=0.0)
        assert len(selection) == 3

    def test_excludes_expired(self, rng):
        cache = PseudonymCache(20)
        cache.merge([_pseudonym(1, 5.0), _pseudonym(2, 50.0)], now=0.0)
        selection = cache.select_for_shuffle(rng, 10, now=10.0)
        assert [entry.value for entry in selection] == [2]

    def test_selection_varies(self):
        import numpy as np

        cache = PseudonymCache(50)
        cache.merge([_pseudonym(value) for value in range(30)], now=0.0)
        rng = np.random.default_rng(0)
        selections = {
            tuple(sorted(e.value for e in cache.select_for_shuffle(rng, 5, 0.0)))
            for _ in range(20)
        }
        assert len(selections) > 1
