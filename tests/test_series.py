"""Tests for TimeSeries."""

import pytest

from repro.errors import ExperimentError
from repro.metrics import TimeSeries


class TestTimeSeries:
    def test_append_and_iterate(self):
        series = TimeSeries("x")
        series.append(1.0, 0.5)
        series.append(2.0, 0.7)
        assert len(series) == 2
        assert list(series) == [(1.0, 0.5), (2.0, 0.7)]

    def test_monotonic_time_enforced(self):
        series = TimeSeries()
        series.append(2.0, 1.0)
        with pytest.raises(ExperimentError):
            series.append(1.0, 1.0)

    def test_equal_times_allowed(self):
        series = TimeSeries()
        series.append(1.0, 0.1)
        series.append(1.0, 0.2)
        assert len(series) == 2

    def test_last(self):
        series = TimeSeries()
        series.append(1.0, 5.0)
        assert series.last() == (1.0, 5.0)

    def test_last_empty_raises(self):
        with pytest.raises(ExperimentError):
            TimeSeries().last()

    def test_tail_mean(self):
        series = TimeSeries()
        for index in range(10):
            series.append(float(index), float(index))
        # Last 25% = indices 8, 9 (2 samples? int(10*0.25)=2) -> mean 8.5
        assert series.tail_mean(0.25) == pytest.approx(8.5)

    def test_tail_mean_full(self):
        series = TimeSeries()
        for index in range(4):
            series.append(float(index), 1.0)
        assert series.tail_mean(1.0) == 1.0

    def test_tail_mean_invalid_fraction(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        with pytest.raises(ExperimentError):
            series.tail_mean(0.0)

    def test_tail_mean_empty(self):
        with pytest.raises(ExperimentError):
            TimeSeries().tail_mean()

    def test_time_to_reach_below(self):
        series = TimeSeries()
        series.append(1.0, 0.9)
        series.append(2.0, 0.4)
        series.append(3.0, 0.1)
        assert series.time_to_reach(0.5, below=True) == 2.0

    def test_time_to_reach_above(self):
        series = TimeSeries()
        series.append(1.0, 0.1)
        series.append(2.0, 0.8)
        assert series.time_to_reach(0.5, below=False) == 2.0

    def test_time_to_reach_never(self):
        series = TimeSeries()
        series.append(1.0, 0.9)
        assert series.time_to_reach(0.5) is None

    def test_stabilized(self):
        series = TimeSeries()
        for index in range(20):
            series.append(float(index), 0.5)
        assert series.stabilized(window=10, tolerance=0.01)

    def test_not_stabilized_when_varying(self):
        series = TimeSeries()
        for index in range(20):
            series.append(float(index), float(index % 2))
        assert not series.stabilized(window=10, tolerance=0.1)

    def test_not_stabilized_when_short(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        assert not series.stabilized(window=10)

    def test_average(self):
        a = TimeSeries("a")
        b = TimeSeries("b")
        for index in range(3):
            a.append(float(index), 1.0)
            b.append(float(index), 3.0)
        averaged = TimeSeries.average([a, b], name="avg")
        assert list(averaged.values) == [2.0, 2.0, 2.0]

    def test_average_mismatched_lengths(self):
        a = TimeSeries()
        b = TimeSeries()
        a.append(0.0, 1.0)
        with pytest.raises(ExperimentError):
            TimeSeries.average([a, b])

    def test_average_empty_list(self):
        with pytest.raises(ExperimentError):
            TimeSeries.average([])
