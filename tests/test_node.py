"""Behavioral tests for OverlayNode."""

import math

import numpy as np
import pytest

from repro.core import OverlayNode, ShuffleRequest, ShuffleResponse
from repro.privlink import make_ideal_link_layer
from repro.sim import Simulator


def _make_node(
    sim,
    layer,
    node_id=0,
    neighbors=(),
    slot_count=5,
    cache_size=20,
    shuffle_length=5,
    lifetime=30.0,
    seed=0,
):
    return OverlayNode(
        node_id=node_id,
        trusted_neighbors=neighbors,
        slot_count=slot_count,
        cache_size=cache_size,
        shuffle_length=shuffle_length,
        pseudonym_lifetime=lifetime,
        sim=sim,
        link_layer=layer,
        rng=np.random.default_rng(seed),
    )


@pytest.fixture
def env():
    sim = Simulator()
    layer = make_ideal_link_layer(sim, np.random.default_rng(9), max_latency=0.01)
    return sim, layer


class TestLifecycle:
    def test_starts_offline_without_pseudonym(self, env):
        sim, layer = env
        node = _make_node(sim, layer)
        assert not node.online
        assert node.own is None

    def test_come_online_mints_pseudonym(self, env):
        sim, layer = env
        node = _make_node(sim, layer)
        node.come_online()
        assert node.online
        assert node.own is not None
        assert node.own.expires_at == pytest.approx(30.0)
        assert node.counters.pseudonyms_created == 1

    def test_come_online_idempotent(self, env):
        sim, layer = env
        node = _make_node(sim, layer)
        node.come_online()
        own = node.own
        node.come_online()
        assert node.own == own
        assert node.counters.pseudonyms_created == 1

    def test_go_offline_retains_state(self, env):
        sim, layer = env
        node = _make_node(sim, layer)
        node.come_online()
        own = node.own
        node.go_offline()
        assert not node.online
        assert node.own == own  # state retained

    def test_rejoin_before_expiry_keeps_pseudonym(self, env):
        sim, layer = env
        node = _make_node(sim, layer, lifetime=30.0)
        node.come_online()
        own = node.own
        node.go_offline()
        sim.run_until(10.0)
        node.come_online()
        assert node.own == own

    def test_rejoin_after_expiry_mints_fresh(self, env):
        sim, layer = env
        node = _make_node(sim, layer, lifetime=5.0)
        node.come_online()
        old = node.own
        node.go_offline()
        sim.run_until(10.0)
        node.come_online()
        assert node.own != old
        assert node.counters.pseudonyms_created == 2

    def test_online_renewal_at_expiry(self, env):
        sim, layer = env
        node = _make_node(sim, layer, lifetime=5.0)
        node.come_online()
        first = node.own
        sim.run_until(5.5)
        assert node.own != first
        assert not node.own.is_expired(sim.now)

    def test_infinite_lifetime_never_renews(self, env):
        sim, layer = env
        node = _make_node(sim, layer, lifetime=math.inf)
        node.come_online()
        first = node.own
        sim.run_until(100.0)
        assert node.own == first
        assert node.counters.pseudonyms_created == 1

    def test_online_time_accounting(self, env):
        sim, layer = env
        node = _make_node(sim, layer)
        node.come_online()
        sim.run_until(4.0)
        node.go_offline()
        sim.run_until(10.0)
        node.come_online()
        sim.run_until(13.0)
        node.go_offline()
        assert node.counters.online_time == pytest.approx(7.0)


class TestShuffling:
    def test_two_trusted_nodes_exchange_pseudonyms(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2)
        a.come_online()
        b.come_online()
        sim.run_until(5.0)
        # Each should have learned the other's pseudonym value.
        a_values = {p.value for p in a.cache.pseudonyms()} | {
            p.value for p in a.links.pseudonym_links()
        }
        b_values = {p.value for p in b.cache.pseudonyms()} | {
            p.value for p in b.links.pseudonym_links()
        }
        assert b.own.value in a_values
        assert a.own.value in b_values

    def test_messages_counted(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2)
        a.come_online()
        b.come_online()
        sim.run_until(10.0)
        assert a.counters.shuffles_initiated >= 8
        assert a.counters.messages_sent >= a.counters.shuffles_initiated
        assert b.counters.responses_sent > 0

    def test_no_shuffles_while_offline(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2)
        a.come_online()
        b.come_online()
        sim.run_until(3.0)
        a.go_offline()
        sent_before = a.counters.messages_sent
        sim.run_until(10.0)
        assert a.counters.messages_sent == sent_before

    def test_offline_peer_request_unanswered(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2)
        a.come_online()  # b never comes online
        sim.run_until(10.0)
        assert a.counters.shuffles_initiated > 0
        assert b.counters.responses_sent == 0
        assert a.counters.shuffle_sets_absorbed == 0

    def test_own_pseudonym_never_in_own_cache_or_links(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2)
        a.come_online()
        b.come_online()
        sim.run_until(20.0)
        assert a.own.value not in {p.value for p in a.cache.pseudonyms()}
        assert a.own.value not in {p.value for p in a.links.pseudonym_links()}

    def test_shuffle_over_pseudonym_link_uses_reply_address(self, env):
        """Over pseudonym links, requests never carry the sender's ID."""
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2)
        seen_requests = []
        b.observer = lambda event, details: (
            seen_requests.append(details)
            if event == "shuffle_request_received"
            else None
        )
        a.come_online()
        b.come_online()
        sim.run_until(40.0)
        pseudonym_requests = [
            details for details in seen_requests if details["reply_node"] is None
        ]
        trusted_requests = [
            details for details in seen_requests if details["reply_node"] is not None
        ]
        # Both kinds occur once links are established, and pseudonym-link
        # requests carry only a reply address.
        assert trusted_requests
        if pseudonym_requests:  # a linked to b's pseudonym
            assert all(
                details["reply_address"] is not None
                for details in pseudonym_requests
            )


class TestPopulationEstimate:
    def test_lower_bound_from_trust(self, env):
        sim, layer = env
        node = _make_node(sim, layer, node_id=0, neighbors=[1, 2, 3])
        node.come_online()
        # No gossip yet: estimate covers self plus trusted peers.
        assert node.estimate_population() >= 4

    def test_estimate_grows_with_gossip(self, env):
        sim, layer = env
        nodes = [
            _make_node(
                sim,
                layer,
                node_id=index,
                neighbors=[(index + 1) % 6, (index - 1) % 6],
                seed=index,
                cache_size=30,
            )
            for index in range(6)
        ]
        for node in nodes:
            node.come_online()
        early = nodes[0].estimate_population()
        sim.run_until(20.0)
        late = nodes[0].estimate_population()
        assert late >= early
        assert late == 6  # small ring: everyone sees everyone

    def test_expired_values_not_counted(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1, lifetime=5.0)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2, lifetime=5.0)
        a.come_online()
        b.come_online()
        sim.run_until(3.0)
        b.go_offline()
        sim.run_until(20.0)  # b's pseudonyms expired long ago
        # a's estimate falls back to the trusted lower bound.
        assert a.estimate_population() == 2


class TestCacheSamplerMode:
    def test_links_follow_newest_cache_entries(self, env):
        sim, layer = env
        nodes = [
            OverlayNode(
                node_id=index,
                trusted_neighbors=[1 - index],
                slot_count=3,
                cache_size=20,
                shuffle_length=5,
                pseudonym_lifetime=30.0,
                sim=sim,
                link_layer=layer,
                rng=__import__("numpy").random.default_rng(index),
                sampler_mode="cache",
            )
            for index in range(2)
        ]
        for node in nodes:
            node.come_online()
        sim.run_until(10.0)
        node = nodes[0]
        linked = {p.value for p in node.links.pseudonym_links()}
        newest = {p.value for p in node.cache.newest(3, sim.now)}
        assert linked == newest

    def test_invalid_mode_rejected(self, env):
        sim, layer = env
        import numpy as np

        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            _make_node(sim, layer)  # baseline ok
            OverlayNode(
                node_id=9,
                trusted_neighbors=[],
                slot_count=1,
                cache_size=5,
                shuffle_length=2,
                pseudonym_lifetime=10.0,
                sim=sim,
                link_layer=layer,
                rng=np.random.default_rng(0),
                sampler_mode="magic",
            )


class TestShuffleFilter:
    def test_filter_applied_to_outgoing_sets(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2)
        a.shuffle_filter = lambda entries: entries[:1]  # own pseudonym only
        a.come_online()
        b.come_online()
        seen = []
        b.observer = lambda event, details: (
            seen.append(details["entries"])
            if event == "shuffle_request_received"
            else None
        )
        sim.run_until(10.0)
        assert seen
        assert all(len(entries) == 1 for entries in seen)

    def test_empty_filter_result_falls_back_to_own(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1)
        a.shuffle_filter = lambda entries: ()
        a.come_online()
        entries = a._build_shuffle_set(sim.now)
        assert entries == (a.own,)


class TestStateExpiry:
    def test_expired_links_removed_on_state_expiry(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1], seed=1, lifetime=5.0)
        b = _make_node(sim, layer, node_id=1, neighbors=[0], seed=2, lifetime=5.0)
        a.come_online()
        b.come_online()
        sim.run_until(4.0)
        b.go_offline()
        # After b's pseudonym expires, a's links/cache must not hold it.
        sim.run_until(12.0)
        values_in_a = {p.value for p in a.cache.pseudonyms()}
        values_in_a |= {p.value for p in a.links.pseudonym_links()}
        assert b.own.value not in values_in_a

    def test_out_degree_excludes_expired(self, env):
        sim, layer = env
        a = _make_node(sim, layer, node_id=0, neighbors=[1, 2], seed=1, lifetime=5.0)
        a.come_online()
        assert a.out_degree() == 2  # only trusted links yet
