"""Tests for the experiment runner."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    SMOKE,
    make_config,
    make_trust_graph,
    random_baseline_graph,
    run_overlay_experiment,
    static_churn_metrics,
)


@pytest.fixture(scope="module")
def smoke_inputs():
    graph = make_trust_graph(SMOKE, f=0.5, seed=1)
    config = make_config(SMOKE, alpha=0.5, f=0.5, seed=1)
    return graph, config


class TestRunOverlayExperiment:
    def test_basic_run(self, smoke_inputs):
        graph, config = smoke_inputs
        result = run_overlay_experiment(
            graph, config, horizon=20.0, measure_window=10.0
        )
        assert 0.0 <= result.disconnected <= 1.0
        assert 0.0 <= result.trust_disconnected <= 1.0
        assert result.full_edge_count > graph.number_of_edges() // 2
        assert result.snapshot.number_of_nodes() == len(
            result.overlay.online_ids()
        )

    def test_overlay_beats_trust_baseline(self, smoke_inputs):
        graph, config = smoke_inputs
        result = run_overlay_experiment(
            graph, config, horizon=40.0, measure_window=15.0
        )
        assert result.disconnected <= result.trust_disconnected

    def test_path_lengths_reported_when_enabled(self, smoke_inputs):
        graph, config = smoke_inputs
        result = run_overlay_experiment(
            graph,
            config,
            horizon=20.0,
            measure_window=10.0,
            path_length_every=5,
            path_sources=8,
        )
        assert result.path_length is not None
        assert result.trust_path_length is not None
        assert result.path_length > 0

    def test_path_lengths_none_by_default(self, smoke_inputs):
        graph, config = smoke_inputs
        result = run_overlay_experiment(
            graph, config, horizon=10.0, measure_window=5.0
        )
        assert result.path_length is None

    def test_invalid_measure_window(self, smoke_inputs):
        graph, config = smoke_inputs
        with pytest.raises(ExperimentError):
            run_overlay_experiment(graph, config, horizon=10.0, measure_window=0.0)
        with pytest.raises(ExperimentError):
            run_overlay_experiment(graph, config, horizon=10.0, measure_window=20.0)

    def test_without_churn(self, smoke_inputs):
        graph, config = smoke_inputs
        result = run_overlay_experiment(
            graph, config, horizon=15.0, measure_window=5.0, with_churn=False
        )
        assert result.online_fraction == 1.0
        assert result.disconnected == 0.0


class TestStaticChurnMetrics:
    def test_full_availability_connected(self, smoke_inputs, rng):
        graph, _ = smoke_inputs
        metrics = static_churn_metrics(graph, alpha=0.99, draws=3, rng=rng)
        assert metrics.disconnected < 0.05

    def test_low_availability_partitioned(self, smoke_inputs, rng):
        graph, _ = smoke_inputs
        high = static_churn_metrics(graph, alpha=0.9, draws=3, rng=rng)
        low = static_churn_metrics(graph, alpha=0.2, draws=3, rng=rng)
        assert low.disconnected > high.disconnected

    def test_paths_skippable(self, smoke_inputs, rng):
        graph, _ = smoke_inputs
        metrics = static_churn_metrics(
            graph, alpha=0.5, draws=2, rng=rng, measure_paths=False
        )
        assert metrics.path_length == 0.0

    def test_invalid_draws(self, smoke_inputs, rng):
        graph, _ = smoke_inputs
        with pytest.raises(ExperimentError):
            static_churn_metrics(graph, alpha=0.5, draws=0, rng=rng)

    def test_mean_online_degree(self, rng):
        graph = nx.complete_graph(20)
        metrics = static_churn_metrics(graph, alpha=0.99, draws=2, rng=rng)
        assert metrics.mean_online_degree > 15


class TestRandomBaseline:
    def test_matches_overlay_edges(self, smoke_inputs, rng):
        graph, config = smoke_inputs
        result = run_overlay_experiment(
            graph, config, horizon=15.0, measure_window=5.0
        )
        baseline = random_baseline_graph(result, rng)
        assert baseline.number_of_nodes() == config.num_nodes
        assert baseline.number_of_edges() == result.full_edge_count
