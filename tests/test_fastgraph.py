"""Differential tests pinning the fastgraph exactness contract.

Every kernel in :mod:`repro.graphs.fastgraph` promises *bit-identical*
values to the networkx reference implementations in
:mod:`repro.graphs.metrics`, including identical RNG consumption.
These tests enforce that promise on random graphs, synthetic social
graphs, churned overlay snapshots, and the degenerate cases
(empty/singleton/partitioned graphs, equal-size component ties).
"""

from __future__ import annotations

import pathlib

import networkx as nx
import numpy as np
import pytest

from repro import Overlay, SystemConfig
from repro.churn import online_subgraph, stationary_online_mask
from repro.errors import GraphError
from repro.experiments.runner import static_churn_metrics
from repro.graphs import (
    average_path_length,
    degree_histogram,
    erdos_renyi_gnm,
    fraction_disconnected,
    generate_social_graph,
    largest_component,
    normalized_path_length,
)
from repro.graphs.fastgraph import (
    GRAPH_BACKENDS,
    FlatSnapshot,
    SnapshotAnalysis,
    get_graph_backend,
    resolve_graph_backend,
    set_graph_backend,
)
from repro.metrics import MetricsCollector


def _assert_matches_networkx(graph: nx.Graph, seed: int = 9) -> SnapshotAnalysis:
    """Assert every metric of ``graph`` is bit-identical across backends."""
    analysis = SnapshotAnalysis(FlatSnapshot.from_networkx(graph))
    total = graph.number_of_nodes()

    assert analysis.fraction_disconnected() == fraction_disconnected(graph)
    assert analysis.degree_histogram() == degree_histogram(graph)
    assert analysis.largest_component_nodes().tolist() == largest_component(graph)

    if total >= 1:
        fast_rng = np.random.default_rng(seed)
        ref_rng = np.random.default_rng(seed)
        assert analysis.average_path_length(rng=fast_rng) == average_path_length(
            graph, rng=ref_rng
        )
        sample = min(7, total)
        fast_rng = np.random.default_rng(seed)
        ref_rng = np.random.default_rng(seed)
        fast_value = analysis.normalized_path_length(
            total, sample_sources=sample, rng=fast_rng
        )
        ref_value = normalized_path_length(
            graph, total, sample_sources=sample, rng=ref_rng
        )
        assert fast_value == ref_value
        # Identical RNG consumption: the streams stay in lockstep.
        assert fast_rng.bit_generator.state == ref_rng.bit_generator.state
    return analysis


class TestBackendKnob:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH_BACKEND", raising=False)
        set_graph_backend(None)
        assert get_graph_backend() == "fast"

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "networkx")
        set_graph_backend(None)
        assert get_graph_backend() == "networkx"

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "networkx")
        set_graph_backend("fast")
        try:
            assert get_graph_backend() == "fast"
        finally:
            set_graph_backend(None)

    def test_resolve_prefers_explicit_override(self):
        assert resolve_graph_backend("networkx") == "networkx"
        assert resolve_graph_backend(None) in GRAPH_BACKENDS

    def test_invalid_names_rejected(self, monkeypatch):
        with pytest.raises(GraphError):
            set_graph_backend("igraph")
        with pytest.raises(GraphError):
            resolve_graph_backend("igraph")
        monkeypatch.setenv("REPRO_GRAPH_BACKEND", "bogus")
        set_graph_backend(None)
        with pytest.raises(GraphError):
            get_graph_backend()


class TestDifferentialRandomGraphs:
    def test_seeded_erdos_renyi_sweep(self):
        order_rng = np.random.default_rng(11)
        for case in range(25):
            n = int(order_rng.integers(2, 150))
            m = int(order_rng.integers(0, max(1, 3 * n)))
            graph = erdos_renyi_gnm(n, m, rng=np.random.default_rng(1000 + case))
            # Relabeling shuffles nx iteration order without changing
            # the graph, so label-order assumptions would be caught.
            relabel = dict(zip(graph.nodes(), order_rng.permutation(n).tolist()))
            _assert_matches_networkx(nx.relabel_nodes(graph, relabel), seed=case)

    def test_synthetic_social_graphs(self):
        for seed in (1, 2, 3):
            graph = generate_social_graph(150, rng=np.random.default_rng(seed))
            _assert_matches_networkx(graph, seed=seed)

    def test_churned_social_snapshots(self):
        graph = generate_social_graph(200, rng=np.random.default_rng(4))
        for seed in (5, 6):
            mask = stationary_online_mask(200, 0.5, np.random.default_rng(seed))
            _assert_matches_networkx(online_subgraph(graph, mask), seed=seed)

    def test_empty_singleton_and_edgeless(self):
        _assert_matches_networkx(nx.empty_graph(0))
        _assert_matches_networkx(nx.empty_graph(1))
        _assert_matches_networkx(nx.empty_graph(5))

    def test_partitioned_components(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (10, 11), (20, 21), (21, 22), (22, 23)])
        graph.add_node(30)
        _assert_matches_networkx(graph)

    def test_equal_size_component_tiebreak(self):
        # Two components of equal size: the canonical choice is the one
        # containing the smallest node, in both backends.
        graph = nx.Graph()
        graph.add_edges_from([(5, 6), (6, 7), (1, 2), (2, 3)])
        analysis = _assert_matches_networkx(graph)
        assert analysis.largest_component_nodes().tolist() == [1, 2, 3]

    def test_more_than_64_bfs_sources(self):
        # The packed-uint64 BFS processes sources in chunks of 64;
        # a full (exact) path length on a >64-node component covers the
        # chunked path.
        graph = generate_social_graph(300, rng=np.random.default_rng(8))
        component = largest_component(graph)
        assert len(component) > 64
        analysis = SnapshotAnalysis(FlatSnapshot.from_networkx(graph))
        assert analysis.average_path_length() == average_path_length(graph)


class TestFlatSnapshot:
    def test_structure_matches_graph(self):
        graph = erdos_renyi_gnm(40, 80, rng=np.random.default_rng(2))
        snap = FlatSnapshot.from_networkx(graph)
        assert snap.num_nodes == 40
        assert snap.num_edges == graph.number_of_edges()
        for position, node in enumerate(snap.node_ids.tolist()):
            row = snap.indices[snap.indptr[position] : snap.indptr[position + 1]]
            neighbors = sorted(
                int(snap.node_ids[p]) for p in row.tolist()
            )
            assert neighbors == sorted(graph.neighbors(node))

    def test_duplicate_edges_are_deduplicated(self):
        node_ids = np.arange(4, dtype=np.int64)
        a = np.array([0, 1, 1, 2], dtype=np.int64)
        b = np.array([1, 0, 2, 1], dtype=np.int64)
        snap = FlatSnapshot.from_edge_positions(node_ids, a, b)
        assert snap.num_edges == 2
        assert snap.degrees().tolist() == [1, 2, 1, 0]

    def test_self_loops_skipped_on_conversion(self):
        graph = nx.Graph([(0, 1), (1, 1)])
        snap = FlatSnapshot.from_networkx(graph)
        assert snap.num_edges == 1

    def test_induced_by_labels_matches_subgraph(self):
        graph = erdos_renyi_gnm(60, 120, rng=np.random.default_rng(3))
        mask = stationary_online_mask(60, 0.6, np.random.default_rng(4))
        fast = FlatSnapshot.from_networkx(graph).induced_by_labels(mask)
        reference = FlatSnapshot.from_networkx(online_subgraph(graph, mask))
        assert fast.node_ids.tolist() == reference.node_ids.tolist()
        assert fast.indptr.tolist() == reference.indptr.tolist()
        assert fast.indices.tolist() == reference.indices.tolist()


class TestSingleLabelingPass:
    def test_one_union_find_pass_serves_every_metric(self):
        graph = generate_social_graph(100, rng=np.random.default_rng(7))
        analysis = SnapshotAnalysis(FlatSnapshot.from_networkx(graph))
        assert analysis.labelings_run == 0
        analysis.fraction_disconnected()
        analysis.normalized_path_length(
            100, sample_sources=8, rng=np.random.default_rng(1)
        )
        analysis.degree_histogram()
        analysis.component_count()
        analysis.largest_component_nodes()
        analysis.components()
        assert analysis.labelings_run == 1

    def test_collector_runs_one_labeling_per_snapshot_per_sample(
        self, small_trust_graph, monkeypatch
    ):
        config = SystemConfig(num_nodes=30, seed=5)
        passes = []
        original = SnapshotAnalysis._ensure_labels

        def counting(self):
            if self._labels is None:
                passes.append(self.snapshot)
            return original(self)

        monkeypatch.setattr(SnapshotAnalysis, "_ensure_labels", counting)
        overlay = Overlay.build(small_trust_graph, config, with_churn=False)
        collector = MetricsCollector(
            overlay, path_length_every=1, path_length_sources=4, backend="fast"
        )
        overlay.start()
        collector.start()
        overlay.run_until(6.0)
        samples = len(collector.disconnected)
        assert samples == 6
        # Per sample: one labeling for the overlay snapshot; the trust
        # baseline is cached across samples (static graph, no churn) so
        # it labels exactly once overall.
        assert len(passes) == samples + 1
        # And no snapshot was ever labeled twice.
        assert len(set(map(id, passes))) == len(passes)


class TestOverlayIncrementalStore:
    def _overlay(self, with_churn: bool) -> Overlay:
        graph = generate_social_graph(40, rng=np.random.default_rng(21))
        config = SystemConfig(num_nodes=40, seed=7, availability=0.6)
        return Overlay.build(graph, config, with_churn=with_churn)

    def test_snapshot_fast_tracks_reference_over_run(self):
        overlay = self._overlay(with_churn=True)
        overlay.start()
        for checkpoint in (0.5, 3.0, 7.5, 12.0, 20.0):
            overlay.run_until(checkpoint)
            for online_only in (True, False):
                fast = overlay.snapshot_fast(online_only=online_only)
                reference = overlay.snapshot(online_only=online_only)
                assert fast.node_ids.tolist() == sorted(reference.nodes())
                fast_edges = {
                    (int(fast.node_ids[u]), int(fast.node_ids[v]))
                    for u, v in zip(fast.edge_u.tolist(), fast.edge_v.tolist())
                }
                ref_edges = {
                    (min(u, v), max(u, v)) for u, v in reference.edges()
                }
                assert fast_edges == ref_edges

    def test_trust_snapshot_fast_cached_until_online_set_changes(self):
        overlay = self._overlay(with_churn=False)
        overlay.start()
        overlay.run_until(1.0)
        online_ids = overlay.online_ids()
        first = overlay.trust_snapshot_fast(online_ids=online_ids)
        second = overlay.trust_snapshot_fast(online_ids=online_ids)
        assert first is second
        overlay.nodes[online_ids[0]].go_offline()
        third = overlay.trust_snapshot_fast()
        assert third is not first
        reference = overlay.trust_snapshot()
        assert third.node_ids.tolist() == sorted(reference.nodes())
        assert third.num_edges == reference.number_of_edges()

    def test_online_out_degrees_match_node_out_degree(self):
        overlay = self._overlay(with_churn=True)
        overlay.start()
        overlay.run_until(9.0)
        online_ids = overlay.online_ids()
        degrees = overlay.online_out_degrees(overlay.sim.now, online_ids)
        expected = [
            overlay.nodes[node_id].out_degree(overlay.sim.now)
            for node_id in online_ids
        ]
        assert degrees.tolist() == expected

    def test_online_ids_cache_follows_transitions(self):
        overlay = self._overlay(with_churn=False)
        overlay.start()
        overlay.run_until(0.5)
        before = overlay.online_ids()
        victim = before[0]
        overlay.nodes[victim].go_offline()
        after = overlay.online_ids()
        assert victim in before and victim not in after
        # Returned lists are copies: mutating one does not poison the cache.
        after.append(victim)
        assert victim not in overlay.online_ids()


class TestCollectorBackendEquivalence:
    def _series(self, backend: str):
        graph = generate_social_graph(50, rng=np.random.default_rng(31))
        config = SystemConfig(num_nodes=50, seed=13, availability=0.6)
        overlay = Overlay.build(graph, config, with_churn=True)
        collector = MetricsCollector(
            overlay,
            path_length_every=2,
            path_length_sources=6,
            rng=overlay.substream("collector"),
            backend=backend,
        )
        overlay.start()
        collector.start()
        overlay.run_until(15.0)
        return collector

    def test_series_byte_identical_across_backends(self):
        fast = self._series("fast")
        reference = self._series("networkx")
        for name in (
            "disconnected",
            "trust_disconnected",
            "path_length",
            "trust_path_length",
            "online_count",
            "replacements_per_node",
            "messages_per_node",
        ):
            fast_series = getattr(fast, name)
            ref_series = getattr(reference, name)
            assert list(fast_series.times) == list(ref_series.times), name
            assert list(fast_series.values) == list(ref_series.values), name
        assert fast.max_out_degrees() == reference.max_out_degrees()
        assert fast.max_out_degree == reference.max_out_degree

    def test_max_out_degrees_covers_every_node(self):
        fast = self._series("fast")
        assert len(fast.max_out_degrees()) == 50
        assert sorted(fast.max_out_degree) == list(range(50))


class TestStaticChurnBackends:
    def test_static_metrics_identical_across_backends(self):
        graph = generate_social_graph(120, rng=np.random.default_rng(17))
        fast = static_churn_metrics(
            graph, 0.5, 5, np.random.default_rng(3), path_sources=8, backend="fast"
        )
        reference = static_churn_metrics(
            graph, 0.5, 5, np.random.default_rng(3), path_sources=8, backend="networkx"
        )
        assert fast == reference


class TestLintCleanliness:
    def test_fastgraph_has_no_lint_suppressions(self):
        import repro.graphs.fastgraph as module

        source = pathlib.Path(module.__file__).read_text(encoding="utf-8")
        assert "lint: disable" not in source
