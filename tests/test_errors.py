"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigError,
            errors.SimulationError,
            errors.SchedulerError,
            errors.GraphError,
            errors.SamplingError,
            errors.ChurnError,
            errors.LinkLayerError,
            errors.PseudonymError,
            errors.MixnetError,
            errors.ReplayDetectedError,
            errors.ProtocolError,
            errors.NodeOfflineError,
            errors.DisseminationError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_scheduler_is_simulation_error(self):
        assert issubclass(errors.SchedulerError, errors.SimulationError)

    def test_pseudonym_is_link_layer_error(self):
        assert issubclass(errors.PseudonymError, errors.LinkLayerError)

    def test_replay_is_mixnet_error(self):
        assert issubclass(errors.ReplayDetectedError, errors.MixnetError)

    def test_sampling_is_graph_error(self):
        assert issubclass(errors.SamplingError, errors.GraphError)

    def test_node_offline_is_protocol_error(self):
        assert issubclass(errors.NodeOfflineError, errors.ProtocolError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.MixnetError("boom")
