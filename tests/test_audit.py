"""Tests for the packaged privacy audit."""

import pytest

from repro.attacks import run_privacy_audit
from repro.errors import ExperimentError


def _fixture_graph():
    import networkx as nx

    graph = nx.Graph()
    graph.add_nodes_from(range(30))
    for node in range(1, 10):
        graph.add_edge(0, node)
    for node in range(10, 29):
        graph.add_edge(node, node + 1)
    graph.add_edge(9, 10)
    graph.add_edge(29, 0)
    for node in range(10, 30, 4):
        graph.add_edge(node, (node * 7) % 10)
    return graph


@pytest.fixture(scope="module")
def audit_report():
    from repro import SystemConfig

    graph = _fixture_graph()
    config = SystemConfig(
        num_nodes=30,
        availability=0.6,
        mean_offline_time=5.0,
        cache_size=40,
        shuffle_length=8,
        target_degree=10,
        seed=99,
    )
    return run_privacy_audit(
        graph,
        config,
        warmup=20.0,
        coalition_size=3,
        coalitions=6,
        detection_trials=4,
        seed=7,
    )


class TestPrivacyAudit:
    @pytest.fixture
    def report(self, audit_report):
        return audit_report

    def test_static_exposure_bounded(self, report):
        # A 3-node coalition learns its members' friends, not the group.
        assert 0.0 < report.mean_ids_learned < report.num_nodes / 2
        assert 0.0 <= report.vertex_cut_fraction <= 1.0

    def test_size_estimation_reasonable(self, report):
        assert 0.0 <= report.size_estimate_error < 0.6

    def test_detection_statistics_consistent(self, report):
        assert report.detection_trials > 0
        assert 0 <= report.detections <= report.detection_trials
        assert 0.0 <= report.detection_rate <= 1.0
        assert 0.0 <= report.detection_accuracy <= 1.0

    def test_report_renders(self, report):
        text = report.format_report()
        assert "Privacy audit" in text
        assert "size estimation" in text
        assert "link detection" in text

    def test_validation(self, small_trust_graph, small_config):
        with pytest.raises(ExperimentError):
            run_privacy_audit(
                small_trust_graph, small_config, coalition_size=0
            )
        with pytest.raises(ExperimentError):
            run_privacy_audit(
                small_trust_graph,
                small_config,
                coalition_size=10_000,
            )

    def test_empty_detection_report(self):
        from repro.attacks import AuditReport

        report = AuditReport(
            num_nodes=10,
            coalition_size=2,
            coalitions_tested=1,
            mean_ids_learned=1.0,
            vertex_cut_fraction=0.0,
            size_estimate_error=0.1,
            detection_trials=0,
            detections=0,
            detection_correct=0,
        )
        assert report.detection_rate == 0.0
        assert report.detection_accuracy == 0.0
