"""Tests for PeriodicProcess."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import PeriodicProcess, Simulator


class TestPeriodicProcess:
    def test_ticks_at_fixed_period(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start(initial_delay=0.5)
        sim.run_until(4.0)
        assert times == [0.5, 1.5, 2.5, 3.5]
        assert process.ticks == 4

    def test_default_initial_delay_without_rng_is_one_period(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 2.0, lambda: times.append(sim.now))
        process.start()
        sim.run_until(5.0)
        assert times == [2.0, 4.0]

    def test_random_phase_with_rng(self):
        sim = Simulator()
        times = []
        rng = np.random.default_rng(1)
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now), rng=rng)
        process.start()
        sim.run_until(0.9999)
        # First tick lands within the first period.
        assert len(times) == 1
        assert 0.0 <= times[0] < 1.0

    def test_stop_halts_ticking(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1

        process = PeriodicProcess(sim, 1.0, tick)
        process.start(initial_delay=0.0)
        sim.run_until(2.5)
        process.stop()
        sim.run_until(10.0)
        assert count[0] == 3  # t = 0, 1, 2
        assert not process.running

    def test_restart_after_stop(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start(initial_delay=0.0)
        sim.run_until(1.5)
        process.stop()
        sim.run_until(5.0)
        process.start(initial_delay=0.25)
        sim.run_until(6.5)
        assert times == [0.0, 1.0, 5.25, 6.25]

    def test_double_start_rejected(self):
        sim = Simulator()
        process = PeriodicProcess(sim, 1.0, lambda: None)
        process.start()
        with pytest.raises(SimulationError):
            process.start()

    def test_jitter_keeps_period_positive(self):
        sim = Simulator()
        times = []
        rng = np.random.default_rng(2)
        process = PeriodicProcess(
            sim, 1.0, lambda: times.append(sim.now), rng=rng, jitter=0.2
        )
        process.start(initial_delay=0.0)
        sim.run_until(50.0)
        gaps = np.diff(times)
        assert (gaps > 0).all()
        assert 0.75 <= gaps.mean() <= 1.25

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Simulator(), 0.0, lambda: None)

    def test_invalid_jitter_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Simulator(), 1.0, lambda: None, jitter=1.0)
