"""Property-based tests for simulator ordering, churn math, graph
metrics, and the f-sampler."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn import availability, mean_online_for
from repro.graphs import (
    erdos_renyi_gnm,
    fraction_disconnected,
    normalized_path_length,
    sample_trust_graph,
)
from repro.sim import Simulator


class TestSimulatorProperties:
    @given(times=st.lists(st.floats(0.0, 100.0, allow_nan=False), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_sorted(self, times):
        sim = Simulator()
        fired = []
        for time in times:
            sim.schedule(time, lambda t=time: fired.append(t))
        sim.run_until(101.0)
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(
        times=st.lists(st.floats(0.0, 100.0, allow_nan=False), max_size=30),
        horizon=st.floats(0.0, 100.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_horizon_respected(self, times, horizon):
        sim = Simulator()
        fired = []
        for time in times:
            sim.schedule(time, lambda t=time: fired.append(t))
        sim.run_until(horizon)
        assert all(time <= horizon for time in fired)
        assert sim.now == horizon


class TestChurnMath:
    @given(
        alpha=st.floats(0.01, 0.99),
        toff=st.floats(0.1, 1000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_availability_roundtrip(self, alpha, toff):
        ton = mean_online_for(alpha, toff)
        assert abs(availability(ton, toff) - alpha) < 1e-9


class TestGraphMetricProperties:
    @given(
        num_nodes=st.integers(2, 40),
        num_edges=st.integers(0, 60),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_disconnected_fraction_bounds(self, num_nodes, num_edges, seed):
        max_edges = num_nodes * (num_nodes - 1) // 2
        graph = erdos_renyi_gnm(
            num_nodes, min(num_edges, max_edges), rng=np.random.default_rng(seed)
        )
        fraction = fraction_disconnected(graph)
        assert 0.0 <= fraction <= 1.0 - 1.0 / num_nodes

    @given(num_nodes=st.integers(2, 25), seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_normalized_path_length_positive(self, num_nodes, seed):
        graph = nx.path_graph(num_nodes)
        value = normalized_path_length(graph, total_nodes=num_nodes)
        assert value > 0


class TestSamplerProperties:
    @given(
        f=st.floats(0.0, 1.0),
        target=st.integers(5, 60),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_sample_always_connected_and_sized(self, f, target, seed):
        source = nx.barabasi_albert_graph(200, 4, seed=7)
        sample = sample_trust_graph(
            source, target, f=f, rng=np.random.default_rng(seed)
        )
        assert sample.number_of_nodes() == target
        assert nx.is_connected(sample)
