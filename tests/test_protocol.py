"""Tests for the Overlay orchestrator."""

import networkx as nx
import pytest

from repro import Overlay, SystemConfig
from repro.errors import GraphError, ProtocolError
from repro.graphs import fraction_disconnected


class TestConstruction:
    def test_node_count_mismatch_rejected(self, small_trust_graph):
        config = SystemConfig(num_nodes=5)
        with pytest.raises(GraphError):
            Overlay.build(small_trust_graph, config)

    def test_non_contiguous_labels_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        config = SystemConfig(num_nodes=2)
        with pytest.raises(GraphError):
            Overlay.build(graph, config)

    def test_adaptive_slot_count(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        target = small_config.target_degree
        for node in overlay.nodes:
            expected = max(0, target - node.links.trusted_degree)
            assert node.slots.size == expected

    def test_hub_gets_no_pseudonym_slots(self, small_trust_graph):
        config = SystemConfig(
            num_nodes=small_trust_graph.number_of_nodes(),
            target_degree=3,
            cache_size=10,
            shuffle_length=4,
            seed=1,
        )
        overlay = Overlay.build(small_trust_graph, config)
        hub = overlay.nodes[0]  # degree > 3 in the fixture
        assert hub.links.trusted_degree > 3
        assert hub.slots.size == 0

    def test_min_pseudonym_links_floor(self, small_trust_graph):
        config = SystemConfig(
            num_nodes=small_trust_graph.number_of_nodes(),
            target_degree=3,
            min_pseudonym_links=2,
            cache_size=10,
            shuffle_length=4,
            seed=1,
        )
        overlay = Overlay.build(small_trust_graph, config)
        assert all(node.slots.size >= 2 for node in overlay.nodes)


class TestLifecycle:
    def test_start_required_before_run(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ProtocolError):
            overlay.run_until(1.0)

    def test_double_start_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        overlay.start()
        with pytest.raises(ProtocolError):
            overlay.start()

    def test_without_churn_all_online(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        assert len(overlay.online_ids()) == small_config.num_nodes

    def test_churn_changes_online_set(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        overlay.start()
        before = set(overlay.online_ids())
        overlay.run_until(30.0)
        after = set(overlay.online_ids())
        assert before != after

    def test_start_all_online(self, small_trust_graph, small_config):
        overlay = Overlay.build(
            small_trust_graph, small_config, start_all_online=True
        )
        overlay.start()
        assert len(overlay.online_ids()) == small_config.num_nodes


class TestSnapshots:
    def test_snapshot_without_churn_converges_to_connected(
        self, small_trust_graph, small_config
    ):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(20.0)
        snapshot = overlay.snapshot()
        assert fraction_disconnected(snapshot) == 0.0
        # Pseudonym links added beyond the trust edges.
        assert snapshot.number_of_edges() > small_trust_graph.number_of_edges()

    def test_snapshot_online_only_nodes(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        overlay.start()
        overlay.run_until(5.0)
        snapshot = overlay.snapshot(online_only=True)
        assert set(snapshot.nodes()) == set(overlay.online_ids())

    def test_full_snapshot_includes_everyone(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        overlay.start()
        overlay.run_until(5.0)
        snapshot = overlay.snapshot(online_only=False)
        assert snapshot.number_of_nodes() == small_config.num_nodes

    def test_trust_snapshot_is_induced_subgraph(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        overlay.start()
        overlay.run_until(5.0)
        trust = overlay.trust_snapshot()
        online = set(overlay.online_ids())
        assert set(trust.nodes()) == online
        for u, v in trust.edges():
            assert small_trust_graph.has_edge(u, v)

    def test_snapshot_has_no_self_loops(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(10.0)
        snapshot = overlay.snapshot()
        assert all(u != v for u, v in snapshot.edges())


class TestOracles:
    def test_pseudonym_ownership_tracked(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(2.0)
        for node in overlay.nodes:
            assert overlay.owner_of_value(node.own.value) == node.node_id
            assert overlay.owner_of_address(node.own.address) == node.node_id

    def test_unknown_value_returns_none(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        assert overlay.owner_of_value(123456789) is None

    def test_stats(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(10.0)
        stats = overlay.stats()
        assert stats.online_nodes == small_config.num_nodes
        assert stats.messages_sent > 0
        assert stats.pseudonyms_created >= small_config.num_nodes

    def test_total_online_time_open_session(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(7.5)
        assert overlay.total_online_time(0) == pytest.approx(7.5)
