"""Tests for the per-node link set."""

import pytest

from repro.core import LinkSet, LinkTarget, Pseudonym
from repro.errors import ProtocolError
from repro.privlink import Address


def _pseudonym(value, expires_at=100.0):
    return Pseudonym(value=value, address=Address(value), expires_at=expires_at)


class TestLinkTarget:
    def test_exactly_one_field(self):
        with pytest.raises(ProtocolError):
            LinkTarget()
        with pytest.raises(ProtocolError):
            LinkTarget(node_id=1, pseudonym=_pseudonym(2))

    def test_trusted_flag(self):
        assert LinkTarget(node_id=1).is_trusted
        assert not LinkTarget(pseudonym=_pseudonym(1)).is_trusted


class TestLinkSet:
    def test_trusted_links_static(self):
        links = LinkSet([3, 1, 2])
        assert links.trusted == {1, 2, 3}
        assert links.trusted_degree == 3
        assert links.out_degree() == 3

    def test_update_from_sample_adds(self):
        links = LinkSet([1])
        added, removed = links.update_from_sample([_pseudonym(10), _pseudonym(11)])
        assert added == 2
        assert removed == 0
        assert links.pseudonym_degree() == 2
        assert links.out_degree() == 3

    def test_update_from_sample_removes(self):
        links = LinkSet([])
        links.update_from_sample([_pseudonym(10), _pseudonym(11)])
        added, removed = links.update_from_sample([_pseudonym(11)])
        assert added == 0
        assert removed == 1
        assert links.pseudonym_degree() == 1

    def test_unchanged_sample_counts_nothing(self):
        links = LinkSet([])
        links.update_from_sample([_pseudonym(10)])
        added, removed = links.update_from_sample([_pseudonym(10)])
        assert (added, removed) == (0, 0)

    def test_renewed_pseudonym_counts_as_replacement(self):
        links = LinkSet([])
        links.update_from_sample([_pseudonym(10, expires_at=5.0)])
        renewed = Pseudonym(value=10, address=Address(99), expires_at=50.0)
        added, removed = links.update_from_sample([renewed])
        assert (added, removed) == (1, 1)
        assert links.pseudonym_links()[0].address == Address(99)

    def test_replacement_counter_accumulates(self):
        links = LinkSet([])
        links.update_from_sample([_pseudonym(1), _pseudonym(2)])
        links.update_from_sample([_pseudonym(3)])
        assert links.replacements_total == 2  # both 1 and 2 removed
        assert links.additions_total == 3

    def test_has_pseudonym_link(self):
        links = LinkSet([])
        entry = _pseudonym(5)
        links.update_from_sample([entry])
        assert links.has_pseudonym_link(entry)
        other_expiry = Pseudonym(value=5, address=Address(5), expires_at=1.0)
        assert not links.has_pseudonym_link(other_expiry)

    def test_all_targets(self):
        links = LinkSet([2, 1])
        links.update_from_sample([_pseudonym(9)])
        targets = links.all_targets()
        assert [t.node_id for t in targets if t.is_trusted] == [1, 2]
        assert len([t for t in targets if not t.is_trusted]) == 1

    def test_pick_random_target_none_when_empty(self, rng):
        assert LinkSet([]).pick_random_target(rng) is None

    def test_pick_random_target_uniform(self, rng):
        links = LinkSet([0, 1])
        links.update_from_sample([_pseudonym(10), _pseudonym(11)])
        counts = {"trusted": 0, "pseudonym": 0}
        for _ in range(2000):
            target = links.pick_random_target(rng)
            counts["trusted" if target.is_trusted else "pseudonym"] += 1
        # 2 trusted vs 2 pseudonym links: expect roughly 50/50.
        assert 0.4 < counts["trusted"] / 2000 < 0.6
