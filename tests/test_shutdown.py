"""Graceful SIGINT/SIGTERM shutdown shared by the long-running CLIs."""

import asyncio
import os
import signal

import pytest

from repro.shutdown import (
    EXIT_INTERRUPTED,
    graceful_shutdown,
    install_async_shutdown,
)


class TestGracefulShutdown:
    def test_exit_code_is_shell_convention(self):
        assert EXIT_INTERRUPTED == 130

    def test_sigterm_becomes_keyboard_interrupt(self):
        with graceful_shutdown():
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)

    def test_previous_handler_restored(self):
        sentinel = []

        def previous(signum, frame):
            sentinel.append(signum)

        old = signal.signal(signal.SIGTERM, previous)
        try:
            with graceful_shutdown():
                assert signal.getsignal(signal.SIGTERM) is not previous
            assert signal.getsignal(signal.SIGTERM) is previous
        finally:
            signal.signal(signal.SIGTERM, old)

    def test_restores_even_after_interrupt(self):
        old = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            with graceful_shutdown():
                raise KeyboardInterrupt
        assert signal.getsignal(signal.SIGTERM) is old


class TestAsyncShutdown:
    def test_sigterm_sets_stop_event(self):
        async def run():
            loop = asyncio.get_running_loop()
            stop = install_async_shutdown(loop)
            assert not stop.is_set()
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(stop.wait(), timeout=5.0)
            return stop.is_set()

        assert asyncio.run(run())

    def test_sigint_sets_stop_event(self):
        async def run():
            loop = asyncio.get_running_loop()
            stop = install_async_shutdown(loop)
            os.kill(os.getpid(), signal.SIGINT)
            await asyncio.wait_for(stop.wait(), timeout=5.0)
            return stop.is_set()

        assert asyncio.run(run())
