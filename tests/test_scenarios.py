"""Tests for experiment scales and input construction."""

import math

import networkx as nx
import pytest

from repro.experiments import (
    PAPER,
    QUICK,
    SMOKE,
    clear_graph_cache,
    lifetime_label,
    make_config,
    make_trust_graph,
    scale_from_env,
)


class TestScales:
    def test_paper_scale_matches_table1(self):
        assert PAPER.num_nodes == 1000
        assert PAPER.mean_offline_time == 30.0
        assert PAPER.cache_size == 400
        assert PAPER.shuffle_length == 40
        assert PAPER.target_degree == 50

    def test_quick_scale_keeps_paper_toff(self):
        # Session dynamics are measured in shuffling periods; quick scale
        # must not distort them.
        assert QUICK.mean_offline_time == PAPER.mean_offline_time

    def test_total_horizon(self):
        assert SMOKE.total_horizon == (
            SMOKE.stabilization_horizon + SMOKE.measure_window
        )


class TestScaleFromEnv:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is QUICK

    def test_repro_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert scale_from_env() is PAPER

    def test_repro_scale_name(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert scale_from_env() is SMOKE

    def test_unknown_name_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        assert scale_from_env() is QUICK


class TestMakeConfig:
    def test_fields_propagated(self):
        config = make_config(SMOKE, alpha=0.25, f=1.0, lifetime_ratio=9.0, seed=5)
        assert config.num_nodes == SMOKE.num_nodes
        assert config.availability == 0.25
        assert config.sampling_f == 1.0
        assert config.lifetime_ratio == 9.0
        assert config.seed == 5
        assert config.cache_size == SMOKE.cache_size


class TestMakeTrustGraph:
    def test_size_and_connectivity(self):
        graph = make_trust_graph(SMOKE, f=0.5, seed=1)
        assert graph.number_of_nodes() == SMOKE.num_nodes
        assert nx.is_connected(graph)

    def test_memoized(self):
        a = make_trust_graph(SMOKE, f=0.5, seed=1)
        b = make_trust_graph(SMOKE, f=0.5, seed=1)
        assert a is b

    def test_different_f_different_graph(self):
        a = make_trust_graph(SMOKE, f=0.5, seed=1)
        b = make_trust_graph(SMOKE, f=1.0, seed=1)
        assert a is not b
        assert b.number_of_edges() > a.number_of_edges()

    def test_cache_clear(self):
        a = make_trust_graph(SMOKE, f=0.5, seed=1)
        clear_graph_cache()
        b = make_trust_graph(SMOKE, f=0.5, seed=1)
        assert a is not b
        assert set(a.edges()) == set(b.edges())  # still deterministic


class TestLifetimeLabel:
    def test_finite(self):
        assert lifetime_label(3.0) == "3"
        assert lifetime_label(1.5) == "1.5"

    def test_infinite(self):
        assert lifetime_label(math.inf) == "Infinite"
