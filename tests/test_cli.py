"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_fig8_smoke(self, capsys):
        code = main(["fig8", "--scale", "smoke", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "fig8 done" in out

    def test_fig9_smoke(self, capsys):
        code = main(["fig9", "--scale", "smoke"])
        assert code == 0
        assert "Figure 9" in capsys.readouterr().out

    def test_plot_flag(self, capsys):
        code = main(["fig8", "--scale", "smoke", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "disconnected fraction" in out
        assert "overlay r=3" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig3", "--scale", "enormous"])

    def test_fig5_smoke_with_plot(self, capsys):
        code = main(["fig5", "--scale", "smoke", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "mean degrees" in out
        assert "degree histogram" in out

    def test_audit_command(self, capsys):
        code = main(["audit", "--scale", "smoke", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Privacy audit" in out
        assert "link detection" in out

    def test_report_command(self, capsys, tmp_path):
        (tmp_path / "fig3_f0.5.txt").write_text("Figure 3 table\n")
        code = main(["report", "--results-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "Figure 3 table" in out

    def test_report_to_file(self, capsys, tmp_path):
        (tmp_path / "fig9_x.txt").write_text("rows\n")
        output = tmp_path / "report.md"
        code = main(
            ["report", "--results-dir", str(tmp_path), "--output", str(output)]
        )
        assert code == 0
        assert "rows" in output.read_text()

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out
