"""Tests for observer coalitions, size estimation, link detection."""

import pytest

from repro import Overlay
from repro.attacks import (
    ObserverCoalition,
    estimate_overlay_size,
    inject_marked_pseudonym,
    run_link_detection_trials,
    watch_for_marked_value,
)
from repro.errors import ExperimentError


def _running_overlay(graph, config, horizon=10.0, with_churn=False):
    overlay = Overlay.build(graph, config, with_churn=with_churn)
    overlay.start()
    overlay.run_until(horizon)
    return overlay


class TestObserverCoalition:
    def test_collects_sightings(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        coalition = ObserverCoalition(overlay, [0, 5])
        coalition.install()
        overlay.start()
        overlay.run_until(10.0)
        assert len(coalition.sightings()) > 0
        assert len(coalition.distinct_values()) > 0

    def test_first_sighting_time_monotone(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        coalition = ObserverCoalition(overlay, [0])
        coalition.install()
        overlay.start()
        overlay.run_until(10.0)
        for value in list(coalition.distinct_values())[:10]:
            first = coalition.first_sighting_time(value)
            sightings = coalition.sightings_of(value)
            assert first == min(s.time for s in sightings)

    def test_sightings_only_from_members(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        coalition = ObserverCoalition(overlay, [3, 7])
        coalition.install()
        overlay.start()
        overlay.run_until(8.0)
        assert {s.observer_id for s in coalition.sightings()} <= {3, 7}

    def test_double_install_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        coalition = ObserverCoalition(overlay, [0])
        coalition.install()
        with pytest.raises(ExperimentError):
            coalition.install()

    def test_empty_members_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ExperimentError):
            ObserverCoalition(overlay, [])

    def test_unknown_member_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ExperimentError):
            ObserverCoalition(overlay, [999])


class TestSizeEstimation:
    def test_estimate_close_without_churn(self, small_trust_graph, small_config):
        """Paper III-E4: in a small system observers eventually see all
        pseudonyms, so the estimate approaches the true size."""
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        coalition = ObserverCoalition(overlay, [0, 1, 2])
        coalition.install()
        overlay.start()
        # 28 periods: pseudonyms renewed at t=15 are still valid (expire
        # at t=30), so the live-value estimator has a full population.
        overlay.run_until(28.0)
        estimate = estimate_overlay_size(overlay, coalition, window=28.0)
        assert estimate.true_size == small_config.num_nodes
        assert estimate.relative_error < 0.35
        assert estimate.all_values_seen >= estimate.live_value_estimate

    def test_window_limits_estimate(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        coalition = ObserverCoalition(overlay, [0])
        coalition.install()
        overlay.start()
        overlay.run_until(20.0)
        wide = estimate_overlay_size(overlay, coalition, window=20.0)
        narrow = estimate_overlay_size(overlay, coalition, window=0.5)
        assert narrow.live_value_estimate <= wide.live_value_estimate

    def test_invalid_window(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        coalition = ObserverCoalition(overlay, [0])
        with pytest.raises(ExperimentError):
            estimate_overlay_size(overlay, coalition, window=0.0)


class TestLinkDetection:
    def test_marked_pseudonym_requires_trust_edge(
        self, small_trust_graph, small_config
    ):
        overlay = _running_overlay(small_trust_graph, small_config, horizon=2.0)
        # Nodes 11 and 25 share no trust edge in the fixture graph.
        assert not small_trust_graph.has_edge(11, 25)
        with pytest.raises(ExperimentError):
            inject_marked_pseudonym(overlay, 11, 25)

    def test_marked_value_propagates_to_target(
        self, small_trust_graph, small_config
    ):
        overlay = _running_overlay(small_trust_graph, small_config, horizon=5.0)
        marked = inject_marked_pseudonym(overlay, 1, 0)  # 1 trusts 0 (hub)
        overlay.run_until(overlay.sim.now + 3.0)
        hub = overlay.nodes[0]
        values = {p.value for p in hub.cache.pseudonyms()}
        assert marked in values

    def test_watcher_attribution(self, small_trust_graph, small_config):
        overlay = _running_overlay(small_trust_graph, small_config, horizon=5.0)
        # Observers 1 and 2 are both adjacent to hub 0 in the fixture.
        marked = inject_marked_pseudonym(overlay, 1, 0)
        watcher = watch_for_marked_value(overlay, 2, 0, marked)
        overlay.run_until(overlay.sim.now + 30.0)
        # Node 0 gossips with its neighbors; 2 should eventually see the
        # marked value (the non-expiring mark saturates all caches).
        assert watcher.seen_anywhere_at is not None
        holders = sum(
            1
            for node in overlay.nodes
            if marked in {p.value for p in node.cache.pseudonyms()}
        )
        assert holders > overlay.config.num_nodes // 2

    def test_trials_produce_outcomes(self, small_trust_graph, small_config):
        overlay = _running_overlay(small_trust_graph, small_config, horizon=5.0)
        # n=1 trusts a=0; o=11 trusts b=10; ground truth: 0-10 is a
        # trust edge in the fixture, so a-b overlay connectivity exists.
        assert small_trust_graph.has_edge(0, 10)
        pairs = [(1, 0, 11, 10), (3, 0, 12, 11)]
        outcomes = run_link_detection_trials(
            overlay, pairs, detection_window=5.0
        )
        assert len(outcomes) == 2
        assert outcomes[0].ground_truth_link
        for outcome in outcomes:
            assert outcome.marked_value > 0
            assert isinstance(outcome.detected_via_b, bool)
            assert outcome.correct == (
                outcome.detected_via_b == outcome.ground_truth_link
            )
