"""Property-based tests for LinkSet and TimeSeries invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LinkSet, Pseudonym
from repro.metrics import TimeSeries
from repro.privlink import Address


@st.composite
def pseudonym_lists(draw):
    values = draw(
        st.lists(st.integers(0, 1 << 40), min_size=0, max_size=12, unique=True)
    )
    return [
        Pseudonym(value=value, address=Address(value + 1), expires_at=100.0)
        for value in values
    ]


class TestLinkSetProperties:
    @given(samples=st.lists(pseudonym_lists(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_links_always_match_last_sample(self, samples):
        links = LinkSet([1, 2])
        for sample in samples:
            links.update_from_sample(sample)
        final = {p.value for p in links.pseudonym_links()}
        assert final == {p.value for p in samples[-1]}

    @given(samples=st.lists(pseudonym_lists(), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_additions_minus_removals_equals_size(self, samples):
        links = LinkSet([])
        for sample in samples:
            links.update_from_sample(sample)
        assert (
            links.additions_total - links.replacements_total
            == links.pseudonym_degree()
        )

    @given(sample=pseudonym_lists())
    @settings(max_examples=60, deadline=None)
    def test_idempotent_update(self, sample):
        links = LinkSet([])
        links.update_from_sample(sample)
        added, removed = links.update_from_sample(sample)
        assert (added, removed) == (0, 0)

    @given(sample=pseudonym_lists(), trusted=st.sets(st.integers(0, 50), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_out_degree_decomposition(self, sample, trusted):
        links = LinkSet(trusted)
        links.update_from_sample(sample)
        assert links.out_degree() == len(trusted) + len(sample)


class TestTimeSeriesProperties:
    @given(
        values=st.lists(
            st.floats(-100.0, 100.0, allow_nan=False), min_size=1, max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_tail_mean_bounded_by_extremes(self, values):
        series = TimeSeries()
        for index, value in enumerate(values):
            series.append(float(index), value)
        tail = series.tail_mean(0.5)
        assert min(values) - 1e-9 <= tail <= max(values) + 1e-9

    @given(
        values=st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=30
        ),
        threshold=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_to_reach_consistency(self, values, threshold):
        series = TimeSeries()
        for index, value in enumerate(values):
            series.append(float(index), value)
        crossing = series.time_to_reach(threshold, below=True)
        if crossing is None:
            assert all(value > threshold for value in values)
        else:
            index = int(crossing)
            assert values[index] <= threshold
            assert all(value > threshold for value in values[:index])
