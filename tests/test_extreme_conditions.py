"""Integration tests under extreme conditions.

Boundary regimes the normal experiments never visit: two-node systems,
zero-latency links, synchronized flash-crowd starts, mass failure of
most of the population, and very long idle periods.
"""

import networkx as nx
import pytest

from repro import Overlay, SystemConfig
from repro.graphs import fraction_disconnected


class TestMinimalSystems:
    def test_two_node_system(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        config = SystemConfig(
            num_nodes=2,
            cache_size=4,
            shuffle_length=2,
            target_degree=2,
            seed=1,
        )
        overlay = Overlay.build(graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(20.0)
        snapshot = overlay.snapshot()
        assert fraction_disconnected(snapshot) == 0.0
        assert overlay.stats().messages_sent > 0

    def test_zero_latency_links(self, small_trust_graph, small_config):
        config = small_config.replace(message_latency=0.0)
        overlay = Overlay.build(small_trust_graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(15.0)
        assert fraction_disconnected(overlay.snapshot()) == 0.0

    def test_shuffle_length_one(self, small_trust_graph, small_config):
        """l=1: only own pseudonyms circulate — slow but sound."""
        config = small_config.replace(shuffle_length=1)
        overlay = Overlay.build(small_trust_graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(20.0)
        # Direct neighbors learn each other's pseudonyms at least.
        linked = sum(
            1 for node in overlay.nodes if node.links.pseudonym_degree() > 0
        )
        assert linked > 0

    def test_tiny_cache(self, small_trust_graph, small_config):
        config = small_config.replace(cache_size=1)
        overlay = Overlay.build(small_trust_graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(20.0)
        for node in overlay.nodes:
            assert len(node.cache) <= 1
        assert overlay.stats().messages_sent > 0


class TestFlashCrowd:
    def test_synchronized_start_converges(self, small_trust_graph, small_config):
        """Everyone joins at t=0 (the paper's experiment start): the
        synchronized pseudonym cohort must not wedge the system when it
        expires all at once."""
        overlay = Overlay.build(
            small_trust_graph, small_config, start_all_online=True
        )
        overlay.start()
        lifetime = small_config.pseudonym_lifetime
        # Run through two full expiry cohorts.
        overlay.run_until(2.5 * lifetime)
        online = overlay.online_ids()
        assert online  # churn kept some online
        for node_id in online:
            node = overlay.nodes[node_id]
            assert node.own is not None
            assert not node.own.is_expired(overlay.sim.now)


class TestMassFailure:
    def test_recovery_after_mass_offline(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(15.0)
        # 80% of the population drops simultaneously.
        victims = [node for node in overlay.nodes if node.node_id % 5 != 0]
        for node in victims:
            node.go_offline()
        overlay.run_until(overlay.sim.now + 10.0)
        survivors = overlay.snapshot()
        assert survivors.number_of_nodes() == len(overlay.nodes) - len(victims)
        # Everyone returns; the overlay re-knits itself.
        for node in victims:
            node.come_online()
        overlay.run_until(overlay.sim.now + 20.0)
        assert fraction_disconnected(overlay.snapshot()) < 0.05

    def test_long_idle_gap(self, small_trust_graph, small_config):
        """A long stretch with everyone offline: timers must not leak
        or fire wrongly, and the system must restart cleanly."""
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(10.0)
        for node in overlay.nodes:
            node.go_offline()
        overlay.run_until(200.0)  # several lifetimes of silence
        assert overlay.online_ids() == []
        for node in overlay.nodes:
            node.come_online()
        overlay.run_until(230.0)
        snapshot = overlay.snapshot()
        assert fraction_disconnected(snapshot) < 0.05
        now = overlay.sim.now
        for node in overlay.nodes:
            assert node.own is not None and not node.own.is_expired(now)
