"""Transports: deterministic loopback faults and real UDP round trips."""

import asyncio

import numpy as np
import pytest

from repro.errors import NetError
from repro.net.transport import (
    FaultPlan,
    LoopbackNetwork,
    UdpTransport,
)
from repro.sim import Simulator


def _mesh(sim, seed=7, faults=None, nodes=2):
    network = LoopbackNetwork(sim, np.random.default_rng(seed), faults=faults)
    transports = [network.transport() for _ in range(nodes)]
    inboxes = [[] for _ in range(nodes)]
    for transport, inbox in zip(transports, inboxes):
        transport.set_receiver(
            lambda data, source, box=inbox: box.append((data, source))
        )
    return network, transports, inboxes


class TestLoopback:
    def test_frames_arrive_with_latency(self):
        sim = Simulator()
        network, (a, b), (inbox_a, inbox_b) = _mesh(sim)
        a.send(b.local_address, b"hello")
        assert inbox_b == []  # nothing before time passes
        sim.run_until(1.0)
        assert inbox_b == [(b"hello", a.local_address)]
        assert network.frames_delivered == 1

    def test_auto_assigned_ports_are_distinct(self):
        sim = Simulator()
        _, (a, b), _ = _mesh(sim)
        assert a.local_address != b.local_address

    def test_double_bind_refused(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(1))
        network.transport(port=5000)
        with pytest.raises(NetError):
            network.transport(port=5000)

    def test_send_after_close_refused(self):
        sim = Simulator()
        _, (a, b), _ = _mesh(sim)
        a.close()
        with pytest.raises(NetError):
            a.send(b.local_address, b"x")

    def test_frame_to_closed_destination_vanishes(self):
        sim = Simulator()
        network, (a, b), (_, inbox_b) = _mesh(sim)
        a.send(b.local_address, b"x")
        b.close()
        sim.run_until(1.0)
        assert inbox_b == []
        assert network.frames_delivered == 0

    def test_loss_is_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator()
            network, (a, b), (_, inbox_b) = _mesh(
                sim, seed=seed, faults=FaultPlan(loss_rate=0.5)
            )
            for i in range(100):
                a.send(b.local_address, bytes([i]))
            sim.run_until(5.0)
            return network.frames_lost, tuple(data for data, _ in inbox_b)

        first = run(42)
        second = run(42)
        other = run(43)
        assert first == second
        assert 0 < first[0] < 100
        assert first != other

    def test_reordering_leapfrogs(self):
        sim = Simulator()
        faults = FaultPlan(
            latency_min=0.01,
            latency_max=0.011,
            reorder_rate=0.3,
            reorder_extra=0.5,
        )
        network, (a, b), (_, inbox_b) = _mesh(sim, seed=3, faults=faults)
        for i in range(50):
            a.send(b.local_address, bytes([i]))
        sim.run_until(5.0)
        received = [data[0] for data, _ in inbox_b]
        assert sorted(received) == list(range(50))  # nothing lost
        assert received != list(range(50))  # ...but not in send order
        assert network.frames_reordered > 0

    def test_partition_blocks_and_heals(self):
        sim = Simulator()
        network, (a, b), (inbox_a, inbox_b) = _mesh(sim)
        network.faults.partition([a.local_address], [b.local_address])
        a.send(b.local_address, b"during")
        sim.run_until(1.0)
        assert inbox_b == []
        assert network.frames_blocked == 1
        network.faults.heal()
        a.send(b.local_address, b"after")
        sim.run_until(2.0)
        assert [data for data, _ in inbox_b] == [b"after"]

    def test_no_receiver_counts_drop(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(1))
        a = network.transport()
        b = network.transport()  # never sets a receiver
        a.send(b.local_address, b"x")
        sim.run_until(1.0)
        assert b.dropped_frames == 1

    def test_fault_plan_validation(self):
        with pytest.raises(NetError):
            FaultPlan(loss_rate=1.5)
        with pytest.raises(NetError):
            FaultPlan(latency_min=0.5, latency_max=0.1)
        with pytest.raises(NetError):
            FaultPlan(reorder_rate=-0.1)
        with pytest.raises(NetError):
            FaultPlan(reorder_extra=-1.0)


class TestUdp:
    def test_round_trip_over_real_sockets(self):
        async def run():
            a = UdpTransport(port=0)
            b = UdpTransport(port=0)
            await a.start()
            await b.start()
            received = asyncio.get_running_loop().create_future()
            b.set_receiver(
                lambda data, source: (
                    received.set_result((data, source))
                    if not received.done()
                    else None
                )
            )
            a.send(b.local_address, b"ping")
            data, source = await asyncio.wait_for(received, timeout=5.0)
            a.close()
            b.close()
            return data, source, a.local_address

        data, source, addr_a = asyncio.run(run())
        assert data == b"ping"
        assert source == addr_a

    def test_ephemeral_ports_differ(self):
        async def run():
            a = UdpTransport(port=0)
            b = UdpTransport(port=0)
            await a.start()
            await b.start()
            addresses = (a.local_address, b.local_address)
            a.close()
            b.close()
            return addresses

        addr_a, addr_b = asyncio.run(run())
        assert addr_a != addr_b
        assert addr_a[1] != 0 and addr_b[1] != 0

    def test_unstarted_usage_refused(self):
        transport = UdpTransport()
        with pytest.raises(NetError):
            transport.local_address
        with pytest.raises(NetError):
            transport.send(("127.0.0.1", 9), b"x")

    def test_double_start_refused(self):
        async def run():
            transport = UdpTransport(port=0)
            await transport.start()
            try:
                with pytest.raises(NetError):
                    await transport.start()
            finally:
                transport.close()

        asyncio.run(run())
