"""Tests for the mailbox storage service and storage-backed pseudonyms."""

import numpy as np
import pytest

from repro.errors import LinkLayerError
from repro.privlink import (
    Address,
    MailboxPseudonymService,
    MailboxStore,
    NodeDirectory,
)
from repro.sim import Simulator


class _FakeNode:
    def __init__(self):
        self.inbox = []
        self.online = True

    def receive(self, payload):
        self.inbox.append(payload)


class TestMailboxStore:
    def test_store_and_poll(self):
        store = MailboxStore()
        address = Address(1, "mailbox")
        store.open_box(address)
        assert store.store(address, "a", now=0.0)
        assert store.store(address, "b", now=1.0)
        assert store.poll(address, now=2.0) == ["a", "b"]
        assert store.poll(address, now=2.0) == []

    def test_store_to_closed_box_fails(self):
        store = MailboxStore()
        assert not store.store(Address(9, "mailbox"), "x", now=0.0)

    def test_capacity_evicts_oldest(self):
        store = MailboxStore(capacity_per_box=2)
        address = Address(1, "mailbox")
        store.open_box(address)
        for index in range(4):
            store.store(address, index, now=float(index))
        assert store.poll(address, now=4.0) == [2, 3]
        assert store.evicted_count == 2

    def test_retention_expires_messages(self):
        store = MailboxStore(retention=5.0)
        address = Address(1, "mailbox")
        store.open_box(address)
        store.store(address, "old", now=0.0)
        store.store(address, "new", now=8.0)
        assert store.poll(address, now=10.0) == ["new"]
        assert store.expired_count == 1

    def test_close_box_discards(self):
        store = MailboxStore()
        address = Address(1, "mailbox")
        store.open_box(address)
        store.store(address, "x", now=0.0)
        store.close_box(address)
        assert store.poll(address, now=1.0) == []
        assert not store.has_box(address)

    def test_pending_count(self):
        store = MailboxStore()
        address = Address(1, "mailbox")
        store.open_box(address)
        store.store(address, "x", now=0.0)
        assert store.pending(address) == 1

    def test_invalid_parameters(self):
        with pytest.raises(LinkLayerError):
            MailboxStore(capacity_per_box=0)
        with pytest.raises(LinkLayerError):
            MailboxStore(retention=0.0)


class TestMailboxPseudonymService:
    def _service(self, poll_interval=0.5):
        sim = Simulator()
        directory = NodeDirectory()
        service = MailboxPseudonymService(
            sim, directory, poll_interval=poll_interval
        )
        return sim, directory, service

    def test_delivery_via_polling(self):
        sim, directory, service = self._service()
        node = _FakeNode()
        directory.register(1, node.receive, lambda: node.online)
        address = service.create_endpoint(1)
        service.send(0, address, "hello")
        sim.run_until(2.0)
        assert node.inbox == ["hello"]

    def test_offline_receiver_gets_message_after_rejoin(self):
        """The mailbox backend covers offline receivers (paper III-B)."""
        sim, directory, service = self._service()
        node = _FakeNode()
        node.online = False
        directory.register(1, node.receive, lambda: node.online)
        address = service.create_endpoint(1)
        service.send(0, address, "parked")
        sim.run_until(3.0)
        assert node.inbox == []
        node.online = True
        sim.run_until(6.0)
        assert node.inbox == ["parked"]

    def test_closed_endpoint_stops_polling_and_drops(self):
        sim, directory, service = self._service()
        node = _FakeNode()
        directory.register(1, node.receive, lambda: node.online)
        address = service.create_endpoint(1)
        service.close_endpoint(address)
        service.send(0, address, "late")
        sim.run_until(3.0)
        assert node.inbox == []
        assert not service.is_active(address)

    def test_invalid_poll_interval(self):
        sim = Simulator()
        with pytest.raises(LinkLayerError):
            MailboxPseudonymService(sim, NodeDirectory(), poll_interval=0.0)
