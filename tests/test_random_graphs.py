"""Tests for random-graph baselines."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import erdos_renyi_gnm, matching_random_graph, random_regular


class TestErdosRenyi:
    def test_exact_edge_count(self, rng):
        graph = erdos_renyi_gnm(100, 250, rng=rng)
        assert graph.number_of_nodes() == 100
        assert graph.number_of_edges() == 250

    def test_zero_edges(self, rng):
        graph = erdos_renyi_gnm(10, 0, rng=rng)
        assert graph.number_of_edges() == 0
        assert graph.number_of_nodes() == 10

    def test_no_self_loops_or_multi_edges(self, rng):
        graph = erdos_renyi_gnm(50, 300, rng=rng)
        assert all(u != v for u, v in graph.edges())
        assert graph.number_of_edges() == 300  # nx.Graph dedups anyway

    def test_complete_graph(self, rng):
        graph = erdos_renyi_gnm(8, 28, rng=rng)
        assert graph.number_of_edges() == 28

    def test_dense_regime_path(self, rng):
        # More than half of max edges triggers the enumerate-and-choose path.
        graph = erdos_renyi_gnm(10, 40, rng=rng)
        assert graph.number_of_edges() == 40

    def test_too_many_edges_rejected(self, rng):
        with pytest.raises(GraphError):
            erdos_renyi_gnm(5, 11, rng=rng)

    def test_deterministic(self):
        a = erdos_renyi_gnm(40, 80, rng=np.random.default_rng(3))
        b = erdos_renyi_gnm(40, 80, rng=np.random.default_rng(3))
        assert set(a.edges()) == set(b.edges())


class TestMatchingRandomGraph:
    def test_matches_counts(self, rng):
        reference = nx.path_graph(30)
        graph = matching_random_graph(reference, rng=rng)
        assert graph.number_of_nodes() == 30
        assert graph.number_of_edges() == 29


class TestRandomRegular:
    def test_degrees_uniform(self, rng):
        graph = random_regular(30, 4, rng=rng)
        assert all(degree == 4 for _, degree in graph.degree())

    def test_parity_violation_rejected(self, rng):
        with pytest.raises(GraphError):
            random_regular(7, 3, rng=rng)

    def test_degree_too_large_rejected(self, rng):
        with pytest.raises(GraphError):
            random_regular(5, 5, rng=rng)
