"""Tests for pseudonym lifetime policies (fixed and adaptive)."""

import math

import pytest

from repro.core import AdaptiveLifetime, FixedLifetime
from repro.errors import ProtocolError


class TestFixedLifetime:
    def test_constant(self):
        policy = FixedLifetime(90.0)
        assert policy.next_lifetime() == 90.0
        policy.observe_offline_duration(1000.0)  # ignored
        assert policy.next_lifetime() == 90.0

    def test_infinite_allowed(self):
        assert math.isinf(FixedLifetime(math.inf).next_lifetime())

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            FixedLifetime(0.0)


class TestAdaptiveLifetime:
    def test_initial_estimate_used(self):
        policy = AdaptiveLifetime(ratio=3.0, initial_estimate=30.0)
        assert policy.next_lifetime() == pytest.approx(90.0)
        assert policy.observations == 0

    def test_ewma_update(self):
        policy = AdaptiveLifetime(
            ratio=3.0, initial_estimate=30.0, smoothing=0.5
        )
        policy.observe_offline_duration(10.0)
        assert policy.estimate == pytest.approx(20.0)
        assert policy.next_lifetime() == pytest.approx(60.0)
        policy.observe_offline_duration(20.0)
        assert policy.estimate == pytest.approx(20.0)

    def test_converges_toward_true_mean(self):
        policy = AdaptiveLifetime(
            ratio=3.0, initial_estimate=100.0, smoothing=0.3
        )
        for _ in range(50):
            policy.observe_offline_duration(10.0)
        assert policy.estimate == pytest.approx(10.0, rel=0.01)
        assert policy.next_lifetime() == pytest.approx(30.0, rel=0.01)

    def test_floor_and_ceiling(self):
        policy = AdaptiveLifetime(
            ratio=3.0, initial_estimate=30.0, smoothing=1.0, floor=5.0, ceiling=50.0
        )
        policy.observe_offline_duration(0.1)
        assert policy.next_lifetime() == 5.0
        policy.observe_offline_duration(1000.0)
        assert policy.next_lifetime() == 50.0

    def test_negative_duration_rejected(self):
        policy = AdaptiveLifetime(ratio=3.0, initial_estimate=30.0)
        with pytest.raises(ProtocolError):
            policy.observe_offline_duration(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ratio": 0.0, "initial_estimate": 1.0},
            {"ratio": 1.0, "initial_estimate": 0.0},
            {"ratio": 1.0, "initial_estimate": 1.0, "smoothing": 0.0},
            {"ratio": 1.0, "initial_estimate": 1.0, "smoothing": 1.5},
            {"ratio": 1.0, "initial_estimate": 1.0, "floor": 0.0},
            {"ratio": 1.0, "initial_estimate": 1.0, "floor": 5.0, "ceiling": 1.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ProtocolError):
            AdaptiveLifetime(**kwargs)


class TestAdaptiveLifetimeInNode:
    def test_node_learns_offline_durations(self):
        import numpy as np

        from repro.core import OverlayNode
        from repro.privlink import make_ideal_link_layer
        from repro.sim import Simulator

        sim = Simulator()
        layer = make_ideal_link_layer(sim, np.random.default_rng(0))
        policy = AdaptiveLifetime(
            ratio=2.0, initial_estimate=10.0, smoothing=1.0
        )
        node = OverlayNode(
            node_id=0,
            trusted_neighbors=[1],
            slot_count=3,
            cache_size=10,
            shuffle_length=4,
            pseudonym_lifetime=20.0,  # superseded by the policy
            sim=sim,
            link_layer=layer,
            rng=np.random.default_rng(1),
            lifetime_policy=policy,
        )
        node.come_online()
        first_expiry = node.own.expires_at
        assert first_expiry == pytest.approx(20.0)  # 2 x initial estimate
        node.go_offline()
        sim.run_until(5.0)
        node.come_online()  # observed a 5-period offline stint
        assert policy.estimate == pytest.approx(5.0)
        # Pseudonym still valid; next renewal uses the adapted lifetime.
        sim.run_until(first_expiry + 0.5)
        assert node.own.expires_at == pytest.approx(first_expiry + 10.0, abs=1.0)


class TestAdaptiveLifetimeInOverlay:
    def test_config_wiring(self, small_trust_graph, small_config):
        from repro import Overlay

        config = small_config.replace(adaptive_lifetime=True)
        overlay = Overlay.build(small_trust_graph, config)
        overlay.start()
        overlay.run_until(40.0)
        policies = [
            node._lifetime_policy
            for node in overlay.nodes
        ]
        assert all(isinstance(policy, AdaptiveLifetime) for policy in policies)
        # Under churn, most nodes have observed at least one stint.
        observed = [policy for policy in policies if policy.observations > 0]
        assert len(observed) > len(policies) // 2

    def test_adaptive_with_infinite_ratio_rejected(self, small_config):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            small_config.replace(
                adaptive_lifetime=True, lifetime_ratio=math.inf
            )
