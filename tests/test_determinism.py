"""End-to-end determinism regression tests.

The paper's figures are comparisons between overlay variants; they are
meaningful only if a (scenario, seed) pair maps to exactly one result.
These tests pin that property end to end — two independent runs of the
same small Figure-3-style scenario must produce *byte-identical* metric
series — and guard the seeded-fallback behavior of the rng-threading
fixes (lint rule DET001).
"""

import hashlib
import json

import numpy as np

from repro.bench import run_suite, strip_nondeterministic
from repro.experiments import SMOKE, make_config, make_trust_graph
from repro.experiments.runner import run_overlay_experiment
from repro.graphs import (
    erdos_renyi_gnm,
    generate_social_graph,
    sample_trust_graph,
)
from repro.graphs.metrics import average_path_length
from repro.metrics import MetricsCollector
from repro.rng import fallback_rng


def _series_bytes(series):
    """Canonical byte representation of a TimeSeries."""
    return (
        np.asarray(series.times, dtype=np.float64).tobytes()
        + np.asarray(series.values, dtype=np.float64).tobytes()
    )


def _run_fig3_point(seed):
    trust = make_trust_graph(SMOKE, f=0.5, seed=seed)
    config = make_config(SMOKE, alpha=0.5, f=0.5, seed=seed)
    return run_overlay_experiment(
        trust_graph=trust,
        config=config,
        horizon=SMOKE.total_horizon,
        measure_window=SMOKE.measure_window,
        collector_interval=SMOKE.collector_interval,
        path_length_every=SMOKE.path_length_every,
        path_sources=SMOKE.path_sources,
    )


class TestEndToEndDeterminism:
    def test_same_seed_byte_identical_series(self):
        first = _run_fig3_point(seed=3)
        second = _run_fig3_point(seed=3)
        for name in (
            "disconnected",
            "trust_disconnected",
            "path_length",
            "trust_path_length",
            "online_count",
            "replacements_per_node",
            "messages_per_node",
        ):
            series_a = getattr(first.collector, name)
            series_b = getattr(second.collector, name)
            assert _series_bytes(series_a) == _series_bytes(series_b), (
                f"series {name!r} diverged between identical-seed runs"
            )
        assert first.collector.max_out_degrees() == second.collector.max_out_degrees()
        assert first.full_edge_count == second.full_edge_count

    def test_different_seeds_actually_differ(self):
        first = _run_fig3_point(seed=3)
        second = _run_fig3_point(seed=4)
        assert _series_bytes(first.collector.disconnected) != _series_bytes(
            second.collector.disconnected
        )


#: SHA-256 of every metric series of the seed-3 SMOKE run, captured
#: BEFORE the event-loop/core hot-path optimizations landed.  Matching
#: them pins the optimized simulator and core byte-identical to the
#: pre-optimization implementation: no rng draw sequence, event order,
#: or cache-eviction choice may change.  If an *intentional* semantic
#: change moves these, regenerate via the expression in the test.
_GOLDEN_SERIES_SHA256 = {
    "disconnected": "fc4633f096a332b63f8ef349a34be9ba63b39228534203e0b75e7e44d8da83e8",
    "trust_disconnected": "6aa551e671be34eb37269a90318c37815efb5bfe7a627f657c6569b385b44ad2",
    "path_length": "63165e137aa84cb5ac2b991bd3bde05ed973da6f5e7f7a37d0a3b65b0c631649",
    "trust_path_length": "094ab5816edfb308b5230acb1e216828ad0b38938d325d0417f4fd504e1e8de3",
    "online_count": "549dee2e5a7ad90807b4cc9ac0f07ffb145dc22035faffe9dafb2d002b768285",
    "replacements_per_node": "69c038cfcb5be1ba52ffdba45d955eb8153dd03f356ca08cdb97fd35e344ea7d",
    "messages_per_node": "a672ccc95271bad7b52ed8a41941b527cf2886350a8cf81b4c79d822f1f0383a",
}


class TestGoldenHashes:
    """Pin the optimized hot paths to the pre-optimization output."""

    def test_metric_series_match_pre_optimization_run(self):
        result = _run_fig3_point(seed=3)
        for name, expected in _GOLDEN_SERIES_SHA256.items():
            digest = hashlib.sha256(
                _series_bytes(getattr(result.collector, name))
            ).hexdigest()
            assert digest == expected, (
                f"series {name!r} diverged from the pre-optimization golden "
                f"run (got {digest}); a hot-path change altered rng draw "
                "order or event ordering"
            )
        assert result.full_edge_count == 603


def _run_mixnet_scenario(seed):
    """A small end-to-end dissemination over the fast-path mixnet.

    Returns a token-independent digest of everything an experiment
    would consume: the columnar traffic log (times, interned channel
    ids, endpoint names) and the delivery/replay/cache counters.
    Pseudonym address tokens come from a process-global counter and are
    deliberately excluded — they never appear in these outputs.
    """
    import numpy as np

    from repro.privlink import TrafficLog, make_mixnet_link_layer
    from repro.sim import Simulator

    rng = np.random.default_rng(seed)
    sim = Simulator()
    traffic = TrafficLog()
    layer = make_mixnet_link_layer(
        sim, rng, num_relays=10, hop_latency=0.0, traffic=traffic
    )
    inboxes = {node_id: [] for node_id in range(12)}
    for node_id in range(12):
        layer.register_node(node_id, inboxes[node_id].append, lambda: True)
    addresses = [layer.create_endpoint(node_id) for node_id in range(4)]
    for step in range(200):
        sender = step % 12
        if step % 3:
            layer.send_to_node(sender, (sender + 1 + step % 5) % 12, ("m", step))
        else:
            layer.send_to_endpoint(sender, addresses[step % 4], ("p", step))
        if step == 150:
            layer.close_endpoint(addresses[0])
        sim.run_until(float(step) / 10.0)
    sim.run_until(30.0)

    network = layer.network
    times, srcs, dsts, sizes = traffic.columns()
    hasher = hashlib.sha256()
    hasher.update(times.tobytes())
    hasher.update(srcs.tobytes())
    hasher.update(dsts.tobytes())
    hasher.update(sizes.tobytes())
    hasher.update("\x00".join(traffic.endpoint_names()).encode())
    counters = (
        network.delivered_count,
        network.dropped_offline,
        network.dropped_closed,
        network.total_replays_dropped(),
        network.circuit_cache_hits,
        network.circuit_cache_misses,
        network.circuit_cache_evictions,
        sum(len(inbox) for inbox in inboxes.values()),
    )
    hasher.update(repr(counters).encode())
    return hasher.hexdigest()


#: Digest of the seed-3 mixnet scenario under the columnar fast path
#: (circuit cache + stamped compact replay digests + inline hops).
#: Regenerate via ``_run_mixnet_scenario(3)`` after an *intentional*
#: semantic change; anything else moving it means a fast-path edit
#: changed delivery, traffic, or rng draw order.
_GOLDEN_MIXNET_SHA256 = (
    "0e54cc2016a0a308925289da0aec0ea62a35d88d77db4f74d803164fee7ffa9f"
)


class TestMixnetGoldenHash:
    """Pin the mixnet fast path end to end."""

    def test_scenario_matches_golden_digest(self):
        assert _run_mixnet_scenario(seed=3) == _GOLDEN_MIXNET_SHA256

    def test_repeated_runs_identical(self):
        # Guards against hidden process-global state (e.g. the
        # rendezvous token counter) leaking into hashed outputs.
        assert _run_mixnet_scenario(seed=5) == _run_mixnet_scenario(seed=5)

    def test_different_seeds_differ(self):
        assert _run_mixnet_scenario(seed=3) != _run_mixnet_scenario(seed=4)


class TestBenchDeterminism:
    """Two same-seed bench runs must agree on everything but timing."""

    def test_same_seed_reports_identical_after_strip(self):
        kwargs = dict(mode="quick", seed=7, repeats=1)
        first = strip_nondeterministic(run_suite(**kwargs))
        second = strip_nondeterministic(run_suite(**kwargs))
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_different_seeds_change_workload_facts(self):
        only = ["churn_sessions"]
        a = strip_nondeterministic(run_suite(mode="quick", seed=7, repeats=1, only=only))
        b = strip_nondeterministic(run_suite(mode="quick", seed=8, repeats=1, only=only))
        assert a != b


class TestSeededFallbacks:
    """The rng-less entry points must be deterministic, not OS-entropy."""

    def test_fallback_rng_is_reproducible(self):
        assert fallback_rng("x").random() == fallback_rng("x").random()

    def test_fallback_rng_keys_are_independent(self):
        assert fallback_rng("x").random() != fallback_rng("y").random()

    def test_social_graph_without_rng_is_deterministic(self):
        a = generate_social_graph(60, edges_per_node=4)
        b = generate_social_graph(60, edges_per_node=4)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_sampling_without_rng_is_deterministic(self):
        source = generate_social_graph(120, edges_per_node=4)
        a = sample_trust_graph(source, 40, f=0.5)
        b = sample_trust_graph(source, 40, f=0.5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_gnm_without_rng_is_deterministic(self):
        a = erdos_renyi_gnm(50, 100)
        b = erdos_renyi_gnm(50, 100)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_sampled_path_length_without_rng_is_deterministic(self):
        graph = generate_social_graph(80, edges_per_node=4)
        a = average_path_length(graph, sample_sources=10)
        b = average_path_length(graph, sample_sources=10)
        assert a == b

    def test_collector_default_rng_matches_explicit_fallback(self):
        from repro import Overlay

        trust = make_trust_graph(SMOKE, f=0.5, seed=5)
        config = make_config(SMOKE, alpha=0.5, f=0.5, seed=5)

        def build_collector(rng):
            overlay = Overlay.build(trust, config)
            collector = MetricsCollector(
                overlay,
                path_length_every=2,
                path_length_sources=8,
                rng=rng,
            )
            overlay.start()
            collector.start()
            overlay.run_until(10.0)
            return collector

        implicit = build_collector(None)
        explicit = build_collector(fallback_rng("metrics.collector"))
        assert _series_bytes(implicit.path_length) == _series_bytes(
            explicit.path_length
        )
