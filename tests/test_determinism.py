"""End-to-end determinism regression tests.

The paper's figures are comparisons between overlay variants; they are
meaningful only if a (scenario, seed) pair maps to exactly one result.
These tests pin that property end to end — two independent runs of the
same small Figure-3-style scenario must produce *byte-identical* metric
series — and guard the seeded-fallback behavior of the rng-threading
fixes (lint rule DET001).
"""

import numpy as np

from repro.experiments import SMOKE, make_config, make_trust_graph
from repro.experiments.runner import run_overlay_experiment
from repro.graphs import (
    erdos_renyi_gnm,
    generate_social_graph,
    sample_trust_graph,
)
from repro.graphs.metrics import average_path_length
from repro.metrics import MetricsCollector
from repro.rng import fallback_rng


def _series_bytes(series):
    """Canonical byte representation of a TimeSeries."""
    return (
        np.asarray(series.times, dtype=np.float64).tobytes()
        + np.asarray(series.values, dtype=np.float64).tobytes()
    )


def _run_fig3_point(seed):
    trust = make_trust_graph(SMOKE, f=0.5, seed=seed)
    config = make_config(SMOKE, alpha=0.5, f=0.5, seed=seed)
    return run_overlay_experiment(
        trust_graph=trust,
        config=config,
        horizon=SMOKE.total_horizon,
        measure_window=SMOKE.measure_window,
        collector_interval=SMOKE.collector_interval,
        path_length_every=SMOKE.path_length_every,
        path_sources=SMOKE.path_sources,
    )


class TestEndToEndDeterminism:
    def test_same_seed_byte_identical_series(self):
        first = _run_fig3_point(seed=3)
        second = _run_fig3_point(seed=3)
        for name in (
            "disconnected",
            "trust_disconnected",
            "path_length",
            "trust_path_length",
            "online_count",
            "replacements_per_node",
            "messages_per_node",
        ):
            series_a = getattr(first.collector, name)
            series_b = getattr(second.collector, name)
            assert _series_bytes(series_a) == _series_bytes(series_b), (
                f"series {name!r} diverged between identical-seed runs"
            )
        assert first.collector.max_out_degrees() == second.collector.max_out_degrees()
        assert first.full_edge_count == second.full_edge_count

    def test_different_seeds_actually_differ(self):
        first = _run_fig3_point(seed=3)
        second = _run_fig3_point(seed=4)
        assert _series_bytes(first.collector.disconnected) != _series_bytes(
            second.collector.disconnected
        )


class TestSeededFallbacks:
    """The rng-less entry points must be deterministic, not OS-entropy."""

    def test_fallback_rng_is_reproducible(self):
        assert fallback_rng("x").random() == fallback_rng("x").random()

    def test_fallback_rng_keys_are_independent(self):
        assert fallback_rng("x").random() != fallback_rng("y").random()

    def test_social_graph_without_rng_is_deterministic(self):
        a = generate_social_graph(60, edges_per_node=4)
        b = generate_social_graph(60, edges_per_node=4)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_sampling_without_rng_is_deterministic(self):
        source = generate_social_graph(120, edges_per_node=4)
        a = sample_trust_graph(source, 40, f=0.5)
        b = sample_trust_graph(source, 40, f=0.5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_gnm_without_rng_is_deterministic(self):
        a = erdos_renyi_gnm(50, 100)
        b = erdos_renyi_gnm(50, 100)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_sampled_path_length_without_rng_is_deterministic(self):
        graph = generate_social_graph(80, edges_per_node=4)
        a = average_path_length(graph, sample_sources=10)
        b = average_path_length(graph, sample_sources=10)
        assert a == b

    def test_collector_default_rng_matches_explicit_fallback(self):
        from repro import Overlay

        trust = make_trust_graph(SMOKE, f=0.5, seed=5)
        config = make_config(SMOKE, alpha=0.5, f=0.5, seed=5)

        def build_collector(rng):
            overlay = Overlay.build(trust, config)
            collector = MetricsCollector(
                overlay,
                path_length_every=2,
                path_length_sources=8,
                rng=rng,
            )
            overlay.start()
            collector.start()
            overlay.run_until(10.0)
            return collector

        implicit = build_collector(None)
        explicit = build_collector(fallback_rng("metrics.collector"))
        assert _series_bytes(implicit.path_length) == _series_bytes(
            explicit.path_length
        )
