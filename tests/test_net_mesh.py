"""The localhost mesh harness: convergence, determinism, faults, CLI."""

import asyncio
import json

import pytest

from repro.errors import NetError
from repro.net.harness import (
    MeshSpec,
    converged_against,
    mesh_system_config,
    ring_trust_graph,
    run_loopback_mesh,
    run_udp_mesh,
    simulate_reference,
)
from repro.net.transport import FaultPlan


class TestSpec:
    def test_validation(self):
        with pytest.raises(NetError):
            MeshSpec(num_nodes=2)
        with pytest.raises(NetError):
            MeshSpec(lattice_degree=3)
        with pytest.raises(NetError):
            MeshSpec(num_nodes=4, lattice_degree=4)
        with pytest.raises(NetError):
            MeshSpec(duration=0.0)

    def test_ring_lattice_is_deterministic(self):
        a = ring_trust_graph(12, 4)
        b = ring_trust_graph(12, 4)
        assert sorted(a.edges()) == sorted(b.edges())
        assert all(a.degree(n) == 4 for n in a.nodes())

    def test_system_config_mirrors_spec(self):
        spec = MeshSpec(num_nodes=9, pseudonym_lifetime=15.0)
        config = mesh_system_config(spec)
        assert config.num_nodes == 9
        assert config.pseudonym_lifetime == pytest.approx(15.0)
        assert config.target_degree == spec.target_degree


class TestLoopbackMesh:
    def test_twenty_nodes_converge_to_sim_envelope(self):
        # The integration bar from the issue: a 20-node mesh on the
        # deterministic fabric reaches the simulator's degree and
        # connectivity envelope at equal parameters.
        spec = MeshSpec(num_nodes=20, seed=1, duration=40.0)
        report = run_loopback_mesh(spec)
        reference = simulate_reference(spec)
        ok, summary = converged_against(report, reference)
        assert ok, summary
        assert report.all_bootstrapped
        assert report.fraction_disconnected == 0.0
        assert report.counters["codec_rejects"] == 0

    def test_seed_reproducible(self):
        spec = MeshSpec(num_nodes=9, seed=7, duration=25.0)
        first = run_loopback_mesh(spec)
        second = run_loopback_mesh(spec)
        assert first.digest() == second.digest()
        assert first.counters == second.counters
        assert first.disconnected_series == second.disconnected_series

    def test_different_seed_different_run(self):
        base = MeshSpec(num_nodes=9, seed=7, duration=25.0)
        other = MeshSpec(num_nodes=9, seed=8, duration=25.0)
        assert run_loopback_mesh(base).digest() != run_loopback_mesh(
            other
        ).digest()

    def test_faulty_network_still_converges(self):
        spec = MeshSpec(
            num_nodes=9,
            seed=3,
            duration=40.0,
            faults=FaultPlan(loss_rate=0.10, reorder_rate=0.10),
        )
        report = run_loopback_mesh(spec)
        assert report.all_bootstrapped
        assert report.shuffle_offers > 0
        assert report.fraction_disconnected <= 0.2

    def test_node_logs_record_bootstrap(self):
        spec = MeshSpec(num_nodes=9, seed=1, duration=10.0)
        report = run_loopback_mesh(spec)
        assert len(report.node_logs) == 9
        # Node 0 is the seed; everyone else logs a bootstrap ack.
        for log in report.node_logs[1:]:
            assert any("bootstrapped via" in line for line in log)
        for log in report.node_logs:
            assert any("shutdown" in line for line in log)


class TestUdpMesh:
    def test_small_udp_mesh_bootstraps_and_shuffles(self):
        spec = MeshSpec(
            num_nodes=5,
            seed=1,
            duration=12.0,
            seconds_per_period=0.02,
        )
        report = run_udp_mesh(spec)
        assert report.transport == "udp"
        assert report.all_bootstrapped
        assert report.shuffle_offers > 0
        assert report.counters["codec_rejects"] == 0

    def test_udp_mesh_inside_running_loop_refused(self):
        # run_udp_mesh wraps asyncio.run; calling it from a live loop
        # must fail loudly rather than deadlock.
        async def attempt():
            with pytest.raises(RuntimeError):
                run_udp_mesh(MeshSpec(num_nodes=3, lattice_degree=2))

        asyncio.run(attempt())


class TestMeshCli:
    def test_loopback_cli_run(self, capsys, tmp_path):
        from repro.cli import main

        report_path = tmp_path / "mesh.json"
        logs_dir = tmp_path / "logs"
        code = main(
            [
                "mesh",
                "--nodes", "9",
                "--duration", "25",
                "--seed", "1",
                "--json", str(report_path),
                "--logs-dir", str(logs_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "convergence vs simulator" in out
        payload = json.loads(report_path.read_text())
        assert payload["num_nodes"] == 9
        assert payload["all_bootstrapped"] is True
        assert len(list(logs_dir.glob("node-*.log"))) == 9

    def test_no_reference_skips_check(self, capsys):
        from repro.cli import main

        code = main(
            ["mesh", "--nodes", "9", "--duration", "8", "--no-reference"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "convergence" not in out

    def test_bad_spec_exits_2(self, capsys):
        from repro.cli import main

        assert main(["mesh", "--nodes", "2"]) == 2
