"""Tests for the generic config grid sweep."""

import pytest

from repro import SystemConfig
from repro.errors import ExperimentError
from repro.experiments.store import ResultStore
from repro.experiments.sweeps import SweepPoint, grid_sweep, sweep_table_rows


@pytest.fixture
def base():
    return SystemConfig(num_nodes=10, cache_size=10, shuffle_length=4, seed=3)


class TestGridSweep:
    def test_cartesian_product_order(self, base):
        seen = []
        points = grid_sweep(
            base,
            {"cache_size": [5, 10], "shuffle_length": [2, 3]},
            lambda config: seen.append(
                (config.cache_size, config.shuffle_length)
            )
            or 0,
        )
        assert seen == [(5, 2), (5, 3), (10, 2), (10, 3)]
        assert len(points) == 4
        assert points[0].override("cache_size") == 5

    def test_base_config_untouched_fields(self, base):
        points = grid_sweep(
            base,
            {"cache_size": [7]},
            lambda config: config.num_nodes,
        )
        assert points[0].outcome == 10  # num_nodes inherited

    def test_unknown_field_rejected(self, base):
        with pytest.raises(ExperimentError):
            grid_sweep(base, {"warp_speed": [1]}, lambda config: 0)

    def test_empty_axis_rejected(self, base):
        with pytest.raises(ExperimentError):
            grid_sweep(base, {"cache_size": []}, lambda config: 0)

    def test_unknown_override_lookup_rejected(self, base):
        points = grid_sweep(base, {"cache_size": [5]}, lambda config: 0)
        with pytest.raises(ExperimentError):
            points[0].override("availability")

    def test_store_memoizes_points(self, base, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def experiment(config):
            calls.append(config.cache_size)
            return {"disc": 0.1}

        grid_sweep(base, {"cache_size": [5, 10]}, experiment, store=store)
        grid_sweep(base, {"cache_size": [5, 10, 20]}, experiment, store=store)
        # Only the new point (20) recomputed on the second run.
        assert calls == [5, 10, 20]

    def test_store_invalidated_by_seed(self, base, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        def experiment(config):
            calls.append(1)
            return 0

        grid_sweep(base, {"cache_size": [5]}, experiment, store=store)
        grid_sweep(
            base.replace(seed=99), {"cache_size": [5]}, experiment, store=store
        )
        assert len(calls) == 2


class TestSweepTableRows:
    def test_scalar_outcomes(self):
        points = [
            SweepPoint(overrides=(("cache_size", 5),), outcome=0.1),
            SweepPoint(overrides=(("cache_size", 10),), outcome=0.2),
        ]
        headers, rows = sweep_table_rows(points)
        assert headers == ["cache_size", "outcome"]
        assert rows == [(5, 0.1), (10, 0.2)]

    def test_dict_outcomes(self):
        points = [
            SweepPoint(
                overrides=(("availability", 0.5),),
                outcome={"disc": 0.1, "npl": 3.0},
            )
        ]
        headers, rows = sweep_table_rows(points)
        assert headers == ["availability", "disc", "npl"]
        assert rows == [(0.5, 0.1, 3.0)]

    def test_selected_fields(self):
        points = [
            SweepPoint(
                overrides=(("availability", 0.5),),
                outcome={"disc": 0.1, "npl": 3.0},
            )
        ]
        headers, rows = sweep_table_rows(points, outcome_fields=["npl"])
        assert headers == ["availability", "npl"]

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sweep_table_rows([])

    def test_end_to_end_with_real_overlay(self):
        """A tiny real sweep: availability x nothing, smoke scale."""
        from repro.experiments import SMOKE, make_config, make_trust_graph
        from repro.experiments import run_overlay_experiment

        trust = make_trust_graph(SMOKE, f=0.5, seed=4)
        base = make_config(SMOKE, alpha=0.5, f=0.5, seed=4)

        def experiment(config):
            result = run_overlay_experiment(
                trust, config, horizon=15.0, measure_window=5.0
            )
            return {"disconnected": result.disconnected}

        points = grid_sweep(base, {"availability": [0.4, 0.8]}, experiment)
        headers, rows = sweep_table_rows(points)
        assert headers == ["availability", "disconnected"]
        assert len(rows) == 2
        assert all(0.0 <= row[1] <= 1.0 for row in rows)
