"""Tests for the ``repro sweep`` subcommand and figure --workers flag."""

import pytest

from repro.cli import main
from repro.parallel.cli import parse_axis


def _sweep_args(store, extra=()):
    return [
        "sweep",
        "--scale",
        "smoke",
        "--seed",
        "3",
        "--axis",
        "availability=0.3,0.6",
        "--workers",
        "2",
        "--store",
        str(store),
        *extra,
    ]


class TestParseAxis:
    def test_numeric_coercion(self):
        assert parse_axis("availability=0.3,0.6") == ("availability", [0.3, 0.6])
        assert parse_axis("cache_size=50,100") == ("cache_size", [50, 100])

    def test_string_values_pass_through(self):
        assert parse_axis("name=a,b") == ("name", ["a", "b"])

    def test_malformed_rejected(self):
        import argparse

        for bad in ("availability", "=0.3", "availability="):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_axis(bad)


class TestSweepCommand:
    def test_end_to_end(self, tmp_path, capsys):
        store = tmp_path / "results"
        code = main(_sweep_args(store))
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "2 computed, 0 reused" in out
        assert (store / "sweep.ledger.jsonl").exists()

    def test_resume_is_noop_after_completion(self, tmp_path, capsys):
        store = tmp_path / "results"
        assert main(_sweep_args(store)) == 0
        capsys.readouterr()
        code = main(_sweep_args(store, ["--resume", "--expect-no-compute"]))
        assert code == 0
        out = capsys.readouterr().out
        assert "0 computed, 2 reused" in out

    def test_expect_no_compute_fails_on_fresh_run(self, tmp_path, capsys):
        store = tmp_path / "results"
        code = main(_sweep_args(store, ["--expect-no-compute"]))
        assert code == 1
        assert "expected a no-op" in capsys.readouterr().out

    def test_resume_without_ledger_fails(self, tmp_path, capsys):
        store = tmp_path / "results"
        code = main(_sweep_args(store, ["--resume"]))
        assert code == 1
        assert "no ledger" in capsys.readouterr().out

    def test_unknown_axis_field_fails(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--scale",
                "smoke",
                "--axis",
                "warp_speed=1,2",
                "--store",
                str(tmp_path / "results"),
            ]
        )
        assert code == 1
        assert "warp_speed" in capsys.readouterr().out

    def test_malformed_axis_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--axis", "not-an-axis"])
        assert excinfo.value.code == 2

    def test_axis_required(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--scale", "smoke"])


class TestFigureWorkersFlag:
    def test_fig8_with_workers(self, capsys):
        code = main(["fig8", "--scale", "smoke", "--workers", "2"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out
