"""Differential tests: the vectorized dissemination plane vs objects.

The batch engine's exactness contract is that, over a shared channel
snapshot and the same per-broadcast sampling keys, it reproduces the
object plane byte for byte: identical delivery sets, identical per-node
delivery rounds, identical forward counts.  These tests pin that
contract for infect-and-die, infect-forever, and flooding; for churn
interleaved with an epidemic; and for the TTL/duplicate edge cases the
frontier discretization has to get right.
"""

import numpy as np
import pytest

from repro import Overlay
from repro.core import BatchOverlay
from repro.config import SystemConfig
from repro.dissemination import (
    BatchBroadcastEngine,
    BroadcastLedger,
    BroadcastRecord,
    ChannelSnapshot,
    EpidemicBroadcast,
    FloodBroadcast,
    build_channel_lists,
    coverage_report,
)
from repro.errors import DisseminationError
from repro.privlink import make_ideal_link_layer


def _instant_overlay(graph, config, warmup=12.0, with_churn=True):
    """A warmed overlay whose app messages travel with zero latency, so
    a broadcast completes within one sim instant and hop rounds are
    exact."""
    overlay = Overlay.build(
        graph,
        config,
        with_churn=with_churn,
        link_layer_factory=lambda sim, rng: make_ideal_link_layer(
            sim, rng, max_latency=0.0
        ),
    )
    overlay.start()
    overlay.run_until(warmup)
    return overlay


def _object_broadcasts(overlay, disseminator, origins):
    """Run broadcasts sequentially on the object plane, draining each
    instant cascade, and return the records."""
    records = []
    for origin in origins:
        records.append(disseminator.broadcast(origin, payload=None))
        overlay.sim.run_until(overlay.sim.now)
    return records


def _engine_for(overlay, snapshot=None, **kwargs):
    """A batch engine keyed off the same ``dissemination`` substream the
    object plane uses, over the overlay's current channels."""
    if snapshot is None:
        snapshot = ChannelSnapshot.from_overlay(overlay)
    online = np.array([node.online for node in overlay.nodes], dtype=bool)
    kwargs.setdefault("rng", overlay.substream("dissemination"))
    return BatchBroadcastEngine(snapshot, online=online, **kwargs)


def _assert_identical(record: BroadcastRecord, view) -> None:
    __tracebackhint__ = record.message_id
    assert view.delivery_rounds == record.delivery_rounds
    assert view.forwards == record.forwards
    assert set(view.delivery_rounds) == set(record.delivery_times)


def _online_origins(overlay, count):
    online = [node.node_id for node in overlay.nodes if node.online]
    return [online[i % len(online)] for i in range(count)]


class TestDifferentialExactness:
    """Batch plane == object plane, per broadcast, per node, per round."""

    def test_epidemic_infect_and_die(self, small_trust_graph, small_config):
        overlay = _instant_overlay(small_trust_graph, small_config)
        disseminator = EpidemicBroadcast(
            overlay, fanout=3, ttl=6, sampling="counter"
        )
        disseminator.install()
        origins = _online_origins(overlay, 5)
        records = _object_broadcasts(overlay, disseminator, origins)

        engine = _engine_for(overlay, fanout=3, ttl=6)
        mids = engine.start(origins)
        engine.run()
        for record, mid in zip(records, mids):
            _assert_identical(record, engine.ledger.record(mid))
        assert engine.total_delivered == sum(r.deliveries() for r in records)

    def test_epidemic_infect_forever(self, small_trust_graph, small_config):
        overlay = _instant_overlay(small_trust_graph, small_config)
        disseminator = EpidemicBroadcast(
            overlay, fanout=3, ttl=5, infect_forever=True, sampling="counter"
        )
        disseminator.install()
        origins = _online_origins(overlay, 4)
        records = _object_broadcasts(overlay, disseminator, origins)

        engine = _engine_for(overlay, fanout=3, ttl=5, infect_forever=True)
        mids = engine.start(origins)
        engine.run()
        for record, mid in zip(records, mids):
            _assert_identical(record, engine.ledger.record(mid))

    def test_flooding(self, small_trust_graph, small_config):
        overlay = _instant_overlay(small_trust_graph, small_config)
        flood = FloodBroadcast(overlay, ttl=6)
        flood.install()
        origins = _online_origins(overlay, 5)
        records = _object_broadcasts(overlay, flood, origins)

        engine = _engine_for(overlay, fanout=None, rng=None, ttl=6)
        mids = engine.start(origins)
        engine.run()
        for record, mid in zip(records, mids):
            _assert_identical(record, engine.ledger.record(mid))

    def test_ttl_exhaustion_at_frontier(
        self, small_trust_graph, small_config
    ):
        """ttl=1: the frontier dies immediately after the first hop —
        nobody reached at round 1 may forward (object and batch)."""
        overlay = _instant_overlay(small_trust_graph, small_config)
        flood = FloodBroadcast(overlay, ttl=1)
        flood.install()
        origins = _online_origins(overlay, 3)
        records = _object_broadcasts(overlay, flood, origins)

        engine = _engine_for(overlay, fanout=None, rng=None, ttl=1)
        mids = engine.start(origins)
        engine.run()
        assert engine.rounds == 1  # one frontier round, then exhaustion
        for record, mid in zip(records, mids):
            view = engine.ledger.record(mid)
            _assert_identical(record, view)
            assert set(view.delivery_rounds.values()) <= {0, 1}
            # Only the origin forwarded.
            degree = int(engine.snapshot.degrees()[record.origin])
            assert view.forwards == degree


class TestChurnInterleaved:
    """An epidemic racing churn: nodes drop offline mid-cascade."""

    def _frozen_overlay(self, graph, config):
        """Fixed one-period latency, topology frozen after warmup, so
        hop k of a broadcast lands exactly k periods after start."""
        overlay = Overlay.build(
            graph,
            config,
            with_churn=False,
            link_layer_factory=lambda sim, rng: make_ideal_link_layer(
                sim, rng, fixed_latency=1.0
            ),
        )
        overlay.start()
        overlay.run_until(10.0)
        for node in overlay.nodes:
            node._shuffler.stop()
            if node._renewal_handle is not None:
                node._renewal_handle.cancel()
                node._renewal_handle = None
        return overlay

    def test_node_offline_mid_epidemic(self, small_trust_graph, small_config):
        """The origin and a node the cascade has not reached yet go
        offline between hop 1 and hop 2: deliveries in flight toward
        them are dropped at delivery time (so the unreached victim also
        never forwards), and both planes agree on the shrunken cascade."""
        overlay = self._frozen_overlay(small_trust_graph, small_config)
        disseminator = EpidemicBroadcast(
            overlay, fanout=3, ttl=4, sampling="counter"
        )
        disseminator.install()
        snapshot = ChannelSnapshot.from_overlay(overlay)
        online = np.array([node.online for node in overlay.nodes], dtype=bool)
        assert online.all()
        origin = 0

        # Control cascade (no churn) tells us who gets reached when; it
        # draws the same first sampling key as the object run below.
        control = BatchBroadcastEngine(
            snapshot,
            fanout=3,
            ttl=4,
            rng=overlay.substream("dissemination"),
        )
        control_view = control.broadcast(origin)
        late = sorted(
            node
            for node, rnd in control_view.delivery_rounds.items()
            if rnd == 2
        )
        assert late  # the cascade must still be growing at round 2

        record = disseminator.broadcast(origin, payload=None)
        start = overlay.sim.now
        overlay.run_until(start + 1.5)  # hop 1 delivered, hop 2 in flight
        victims = [origin, late[0]]
        for victim in victims:
            overlay.nodes[victim].go_offline()
        overlay.run_until(start + 6.0)

        engine = BatchBroadcastEngine(
            snapshot,
            fanout=3,
            ttl=4,
            rng=overlay.substream("dissemination"),
            online=online,
        )
        mid = engine.start([origin])[0]
        engine.step()  # round 1: victims still online
        online[victims] = False  # mask is live — engine sees the flip
        engine.run()
        view = engine.ledger.record(mid)
        _assert_identical(record, view)
        # The round-2 victim was never delivered, so the cascade is
        # strictly smaller than the no-churn control.
        assert late[0] not in view.delivery_rounds
        assert view.deliveries() < control_view.deliveries()

    def test_offline_origin_rejected(self, small_trust_graph, small_config):
        overlay = self._frozen_overlay(small_trust_graph, small_config)
        snapshot = ChannelSnapshot.from_overlay(overlay)
        online = np.array([node.online for node in overlay.nodes], dtype=bool)
        online[7] = False
        engine = BatchBroadcastEngine(
            snapshot,
            fanout=3,
            ttl=4,
            rng=overlay.substream("dissemination"),
            online=online,
        )
        with pytest.raises(DisseminationError, match="offline"):
            engine.start([7])


class TestFrontierCollisions:
    """Duplicate suppression when activation paths meet in one round."""

    def _diamond(self):
        # 0 - 1, 0 - 2, 1 - 3, 2 - 3: two equal-length paths 0->3.
        indptr = np.array([0, 2, 4, 6, 8], dtype=np.int64)
        targets = np.array([1, 2, 0, 3, 0, 3, 1, 2], dtype=np.int64)
        return ChannelSnapshot(indptr, targets)

    def test_two_frontiers_collide_in_one_round(self):
        """Node 3 is reached via 1 AND via 2 in the same round: exactly
        one delivery, at round 2, with both sends still counted."""
        engine = BatchBroadcastEngine(self._diamond(), fanout=None, ttl=2)
        view = engine.broadcast(0)
        assert view.delivery_rounds == {0: 0, 1: 1, 2: 1, 3: 2}
        # origin floods 2 channels; nodes 1 and 2 each flood 2 more.
        assert view.forwards == 6
        assert view.deliveries() == 4

    def test_collision_matches_object_plane(
        self, small_trust_graph, small_config
    ):
        """The dense conftest graph produces same-round collisions
        naturally; ttl=2 floods still match the object plane exactly."""
        overlay = _instant_overlay(small_trust_graph, small_config)
        flood = FloodBroadcast(overlay, ttl=2)
        flood.install()
        origins = _online_origins(overlay, 4)
        records = _object_broadcasts(overlay, flood, origins)
        engine = _engine_for(overlay, fanout=None, rng=None, ttl=2)
        mids = engine.start(origins)
        engine.run()
        for record, mid in zip(records, mids):
            _assert_identical(record, engine.ledger.record(mid))

    def test_infect_forever_multiplicity_aggregates(self):
        """With infect-forever, node 3's two same-round activations fold
        into one frontier entry with multiplicity 2 — its next round
        forwards count double."""
        engine = BatchBroadcastEngine(
            self._diamond(),
            fanout=2,
            ttl=3,
            infect_forever=True,
            rng=np.random.default_rng(7),
        )
        view = engine.broadcast(0)
        assert view.delivery_rounds[3] == 2
        # Every hop sends fanout=2 messages and degree is 2 everywhere,
        # so multiplicity doubles each round: 2 + 4 + 8 sends.
        assert view.forwards == 14


class TestAdjacencyCache:
    """The O(N+E) channel rebuild only runs when the overlay changed."""

    def test_same_instant_broadcasts_reuse_map(
        self, small_trust_graph, small_config
    ):
        overlay = _instant_overlay(small_trust_graph, small_config)
        disseminator = EpidemicBroadcast(
            overlay, fanout=3, ttl=4, sampling="counter"
        )
        disseminator.install()
        origins = _online_origins(overlay, 2)
        disseminator.broadcast(origins[0], payload=None)
        overlay.sim.run_until(overlay.sim.now)
        first = disseminator._adjacency
        assert first is not None
        disseminator.broadcast(origins[1], payload=None)
        assert disseminator._adjacency is first  # same object: cache hit

    def test_link_mutation_invalidates(self, small_trust_graph, small_config):
        overlay = _instant_overlay(small_trust_graph, small_config)
        disseminator = EpidemicBroadcast(
            overlay, fanout=3, ttl=4, sampling="counter"
        )
        disseminator.install()
        origin = _online_origins(overlay, 1)[0]
        disseminator.broadcast(origin, payload=None)
        overlay.sim.run_until(overlay.sim.now)
        stale = disseminator._adjacency
        overlay.run_until(overlay.sim.now + 2.0)  # gossip mutates links
        disseminator.broadcast(origin, payload=None)
        assert disseminator._adjacency is not stale

    def test_uncached_build_matches_cache(
        self, small_trust_graph, small_config
    ):
        overlay = _instant_overlay(small_trust_graph, small_config)
        disseminator = EpidemicBroadcast(overlay, fanout=3, ttl=4)
        disseminator.install()
        assert disseminator._build_adjacency() == build_channel_lists(overlay)


class TestSnapshotBuilders:
    def test_from_overlay_preserves_channel_order(
        self, small_trust_graph, small_config
    ):
        overlay = _instant_overlay(small_trust_graph, small_config)
        lists = build_channel_lists(overlay)
        snapshot = ChannelSnapshot.from_overlay(overlay)
        assert snapshot.num_nodes == len(overlay.nodes)
        for node in overlay.nodes:
            row = snapshot.targets[
                snapshot.indptr[node.node_id] : snapshot.indptr[node.node_id + 1]
            ]
            expected = [dest for _k, _t, dest in lists[node.node_id]]
            assert row.tolist() == expected

    def test_from_batch_overlay_blocks(self):
        config = SystemConfig(
            num_nodes=400,
            cache_size=16,
            shuffle_length=8,
            target_degree=8,
            min_pseudonym_links=4,
            availability=0.7,
            mean_offline_time=8.0,
            seed=3,
        )
        overlay = BatchOverlay.build(config, extra_edges_per_node=2)
        overlay.run(3)
        snapshot = ChannelSnapshot.from_batch_overlay(overlay)
        indptr, indices, holder, owner = overlay.channel_edges()
        assert snapshot.num_nodes == config.num_nodes
        trusted_deg = np.diff(indptr)
        out_deg = np.bincount(holder, minlength=config.num_nodes)
        reverse_deg = np.bincount(owner, minlength=config.num_nodes)
        assert snapshot.channel_count == int(
            trusted_deg.sum() + out_deg.sum() + reverse_deg.sum()
        )
        # Spot-check one row's three blocks.
        row = int(np.argmax(trusted_deg * (out_deg > 0) * (reverse_deg > 0)))
        lo, hi = int(snapshot.indptr[row]), int(snapshot.indptr[row + 1])
        channels = snapshot.targets[lo:hi]
        t = int(trusted_deg[row])
        o = int(out_deg[row])
        assert channels[:t].tolist() == indices[
            int(indptr[row]) : int(indptr[row + 1])
        ].tolist()
        assert sorted(channels[t : t + o].tolist()) == sorted(
            owner[holder == row].tolist()
        )
        assert sorted(channels[t + o :].tolist()) == sorted(
            holder[owner == row].tolist()
        )
        # Every channel is a live broadcast target.
        engine = BatchBroadcastEngine(
            snapshot,
            fanout=None,
            ttl=8,
            online=overlay.churn.online,
        )
        origin = int(overlay.churn.online_rows()[0])
        view = engine.broadcast(origin)
        assert view.deliveries() >= 1

    def test_snapshot_validation(self):
        with pytest.raises(DisseminationError):
            ChannelSnapshot(np.zeros(0, dtype=np.int64), np.zeros(0, np.int64))
        with pytest.raises(DisseminationError):
            ChannelSnapshot(
                np.array([0, 2], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )


class TestLedgerAndViews:
    def test_ledger_grows_and_validates(self):
        ledger = BroadcastLedger(num_nodes=10, capacity=2)
        mids = [ledger.open(i % 10, key=i + 1, ttl=3, fanout=2, start_round=0)
                for i in range(9)]
        assert mids == list(range(1, 10))
        assert ledger.count == 9
        # Every origin is self-delivered at round 0.
        assert ledger.total_delivered() == 9
        with pytest.raises(DisseminationError):
            ledger.record(99)
        with pytest.raises(DisseminationError):
            ledger.open(0, key=1, ttl=0, fanout=2, start_round=0)
        with pytest.raises(DisseminationError):
            BroadcastLedger(num_nodes=0)

    def test_record_helpers_both_planes(
        self, small_trust_graph, small_config
    ):
        """coverage()/latency_percentile() agree between BroadcastRecord
        and LedgerRecordView on identical broadcasts."""
        overlay = _instant_overlay(small_trust_graph, small_config)
        disseminator = EpidemicBroadcast(
            overlay, fanout=3, ttl=6, sampling="counter"
        )
        disseminator.install()
        origin = _online_origins(overlay, 1)[0]
        record = disseminator.broadcast(origin, payload=None)
        overlay.sim.run_until(overlay.sim.now)
        view = _engine_for(overlay, fanout=3, ttl=6).broadcast(origin)

        num_nodes = len(overlay.nodes)
        assert view.coverage(num_nodes) == record.coverage(num_nodes)
        assert record.coverage(num_nodes) == record.deliveries() / num_nodes
        # Zero-latency links: the object plane's percentile is over wall
        # latencies (all zero); the view's is over hop rounds.
        assert record.latency_percentile(95.0) == 0.0
        rounds = list(view.delivery_rounds.values())
        assert view.latency_percentile(95.0) == float(
            np.percentile(rounds, 95.0)
        )
        for bad in (record, view):
            with pytest.raises(DisseminationError):
                bad.coverage(0)
            with pytest.raises(DisseminationError):
                bad.latency_percentile(101.0)
            with pytest.raises(DisseminationError):
                bad.latency_percentile(-1.0)

    def test_coverage_report_accepts_view(
        self, small_trust_graph, small_config
    ):
        """LedgerRecordView is duck-compatible with the coverage
        reporting built for BroadcastRecord."""
        overlay = _instant_overlay(small_trust_graph, small_config)
        view = _engine_for(overlay, fanout=3, ttl=6).broadcast(
            _online_origins(overlay, 1)[0]
        )
        targets = [node.node_id for node in overlay.nodes if node.online]
        report = coverage_report(view, targets)
        assert report.reached <= len(targets)
        assert report.forwards == view.forwards
        assert report.message_id == view.message_id


class TestEngineValidation:
    def _snapshot(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        targets = np.array([1, 0], dtype=np.int64)
        return ChannelSnapshot(indptr, targets)

    def test_constructor_guards(self):
        snapshot = self._snapshot()
        rng = np.random.default_rng(1)
        with pytest.raises(DisseminationError, match="ttl"):
            BatchBroadcastEngine(snapshot, fanout=2, ttl=0, rng=rng)
        with pytest.raises(DisseminationError, match="ttl"):
            BatchBroadcastEngine(snapshot, fanout=2, ttl=256, rng=rng)
        with pytest.raises(DisseminationError, match="fanout"):
            BatchBroadcastEngine(snapshot, fanout=0, rng=rng)
        with pytest.raises(DisseminationError, match="infect_forever"):
            BatchBroadcastEngine(snapshot, fanout=None, infect_forever=True)
        with pytest.raises(DisseminationError, match="rng"):
            BatchBroadcastEngine(snapshot, fanout=2)
        with pytest.raises(DisseminationError, match="online"):
            BatchBroadcastEngine(
                snapshot, fanout=None, online=np.ones(3, dtype=bool)
            )

    def test_start_guards(self):
        engine = BatchBroadcastEngine(self._snapshot(), fanout=None, ttl=2)
        with pytest.raises(DisseminationError, match="out of range"):
            engine.start([5])
        with pytest.raises(DisseminationError, match="payload"):
            engine.start([0, 1], payloads=["only-one"])

    def test_flood_on_pair(self):
        engine = BatchBroadcastEngine(self._snapshot(), fanout=None, ttl=2)
        view = engine.broadcast(0, payload="hello")
        assert view.delivery_rounds == {0: 0, 1: 1}
        assert view.payload == "hello"
        assert view.latency_of(1) == 1.0
        assert view.latency_of(0) == 0.0
        assert view.max_latency() == 1.0
