"""Property-based tests for the pseudonym cache."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pseudonym, PseudonymCache
from repro.privlink import Address
from repro.rng import PSEUDONYM_BITS

_VALUE = st.integers(min_value=0, max_value=(1 << PSEUDONYM_BITS) - 1)


@st.composite
def pseudonyms(draw):
    return Pseudonym(
        value=draw(_VALUE),
        address=Address(draw(st.integers(1, 10**6))),
        expires_at=draw(st.floats(min_value=0.5, max_value=1000.0, allow_nan=False)),
    )


_BATCHES = st.lists(
    st.tuples(
        st.lists(pseudonyms(), min_size=0, max_size=15),
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
    ),
    min_size=1,
    max_size=8,
)


class TestCacheInvariants:
    @given(capacity=st.integers(1, 30), batches=_BATCHES)
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, capacity, batches):
        cache = PseudonymCache(capacity)
        for batch, now in batches:
            cache.merge(batch, now=now)
            assert len(cache) <= capacity

    @given(batches=_BATCHES)
    @settings(max_examples=60, deadline=None)
    def test_no_expired_entry_survives_merge(self, batches):
        cache = PseudonymCache(50)
        last_now = 0.0
        for batch, now in batches:
            last_now = max(last_now, now)
            cache.merge(batch, now=last_now)
        for pseudonym in cache.pseudonyms():
            assert not pseudonym.is_expired(last_now)

    @given(batches=_BATCHES, own=_VALUE)
    @settings(max_examples=60, deadline=None)
    def test_own_value_never_cached(self, batches, own):
        cache = PseudonymCache(50)
        for batch, now in batches:
            cache.merge(batch, now=now, own_value=own)
        assert own not in {p.value for p in cache.pseudonyms()}

    @given(batches=_BATCHES)
    @settings(max_examples=60, deadline=None)
    def test_values_unique(self, batches):
        cache = PseudonymCache(50)
        for batch, now in batches:
            cache.merge(batch, now=now)
        values = [p.value for p in cache.pseudonyms()]
        assert len(values) == len(set(values))

    @given(
        batch=st.lists(pseudonyms(), min_size=1, max_size=20),
        count=st.integers(1, 25),
    )
    @settings(max_examples=60, deadline=None)
    def test_selection_is_subset_without_duplicates(self, batch, count):
        cache = PseudonymCache(50)
        cache.merge(batch, now=0.0)
        rng = np.random.default_rng(0)
        selection = cache.select_for_shuffle(rng, count, now=0.0)
        assert len(selection) <= count
        values = [p.value for p in selection]
        assert len(values) == len(set(values))
        cached = {p.value for p in cache.pseudonyms()}
        assert set(values) <= cached
