"""Tests for result rendering."""

import csv

from repro.experiments import format_table, write_csv


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [("alpha", 1), ("beta", 22)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        # Separator row of dashes.
        assert set(lines[2].replace(" ", "")) == {"-"}
        assert len(lines) == 5

    def test_float_formatting(self):
        table = format_table(["x"], [(0.123456,)])
        assert "0.1235" in table

    def test_none_rendered_as_dash(self):
        table = format_table(["x"], [(None,)])
        assert "-" in table.splitlines()[-1]

    def test_wide_cells_extend_columns(self):
        table = format_table(["h"], [("a-very-long-cell",)])
        header, separator, row = table.splitlines()
        assert len(separator) >= len("a-very-long-cell")

    def test_no_title(self):
        table = format_table(["a"], [(1,)])
        assert table.splitlines()[0].startswith("a")


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ["a", "b"], [(1, 2.5), ("x", None)])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2.5"]
        assert rows[2] == ["x", ""]
