"""Tests for the static coalition analysis."""

import networkx as nx
import pytest

from repro.attacks import (
    coalition_exposure,
    cut_components,
    is_vertex_cut,
)
from repro.errors import ExperimentError


@pytest.fixture
def barbell():
    """Two triangles joined through node 3 (a cut vertex)."""
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (2, 0)])  # left triangle
    graph.add_edges_from([(4, 5), (5, 6), (6, 4)])  # right triangle
    graph.add_edges_from([(2, 3), (3, 4)])  # bridge through 3
    return graph


class TestVertexCut:
    def test_cut_vertex_detected(self, barbell):
        assert is_vertex_cut(barbell, [3])

    def test_non_cut_vertex(self, barbell):
        assert not is_vertex_cut(barbell, [0])

    def test_cut_components(self, barbell):
        components = cut_components(barbell, [3])
        assert len(components) == 2
        sizes = sorted(len(component) for component in components)
        assert sizes == [3, 3]

    def test_whole_graph_coalition_not_a_cut(self, barbell):
        assert not is_vertex_cut(barbell, list(barbell.nodes()))

    def test_cut_set_of_two(self):
        graph = nx.path_graph(5)  # 0-1-2-3-4
        assert is_vertex_cut(graph, [2])
        assert is_vertex_cut(graph, [1, 3])
        assert not is_vertex_cut(graph, [0, 4])


class TestCoalitionExposure:
    def test_known_ids_are_members_plus_neighbors(self, barbell):
        exposure = coalition_exposure(barbell, [0])
        assert exposure.known_ids == frozenset({0, 1, 2})

    def test_vertex_cut_flag(self, barbell):
        assert coalition_exposure(barbell, [3]).forms_vertex_cut
        assert not coalition_exposure(barbell, [1]).forms_vertex_cut

    def test_isolated_pair_detected(self):
        # Coalition {2} separates the trust-edge pair (0, 1).
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)])
        exposure = coalition_exposure(graph, [2])
        assert exposure.forms_vertex_cut
        assert (0, 1) in exposure.isolated_pairs

    def test_no_isolated_pairs_without_cut(self, barbell):
        exposure = coalition_exposure(barbell, [0])
        assert exposure.isolated_pairs == ()

    def test_probe_targets_are_adjacent_non_members(self, barbell):
        exposure = coalition_exposure(barbell, [3])
        # 3's neighbors are 2 and 4; the only probe pair is (2, 4).
        assert exposure.probe_targets == ((2, 4),)

    def test_probe_target_cap(self):
        graph = nx.star_graph(20)
        exposure = coalition_exposure(graph, [0], max_probe_targets=5)
        assert len(exposure.probe_targets) == 5

    def test_empty_coalition_rejected(self, barbell):
        with pytest.raises(ExperimentError):
            coalition_exposure(barbell, [])

    def test_unknown_member_rejected(self, barbell):
        with pytest.raises(ExperimentError):
            coalition_exposure(barbell, [99])

    def test_id_disclosure_counts_non_members(self, barbell):
        exposure = coalition_exposure(barbell, [0, 1])
        assert exposure.id_disclosure_fraction == 1.0  # only node 2 learned
