"""Tests for the pseudonym routing layer."""

import pytest

from repro import Overlay
from repro.errors import DisseminationError, ProtocolError
from repro.routing import DataPacket, PseudonymRouter, RouteRequest


def _routed_overlay(graph, config, warmup=15.0):
    overlay = Overlay.build(graph, config, with_churn=False)
    router = PseudonymRouter(overlay)
    router.install()
    overlay.start()
    overlay.run_until(warmup)
    return overlay, router


class TestDiscovery:
    def test_route_found(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        target = overlay.nodes[20].own.value
        record = router.discover(0, target)
        overlay.run_until(overlay.sim.now + 3.0)
        assert record.succeeded
        assert record.route_hops >= 1
        assert record.latency < 3.0

    def test_origin_learns_next_hop(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        target = overlay.nodes[15].own.value
        router.discover(0, target)
        overlay.run_until(overlay.sim.now + 3.0)
        assert target in router.table_of(0)

    def test_path_nodes_learn_routes_too(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        target = overlay.nodes[25].own.value
        record = router.discover(0, target)
        overlay.run_until(overlay.sim.now + 3.0)
        assert record.succeeded
        holders = sum(
            1
            for node in overlay.nodes
            if target in router.table_of(node.node_id)
        )
        # At least the origin plus intermediate hops hold pointers.
        assert holders >= record.route_hops

    def test_unknown_value_never_succeeds(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        record = router.discover(0, target_value=12345)
        overlay.run_until(overlay.sim.now + 5.0)
        assert not record.succeeded

    def test_offline_origin_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        router = PseudonymRouter(overlay)
        router.install()
        with pytest.raises(DisseminationError):
            router.discover(0, 1)


class TestUnicast:
    def test_send_with_discovery(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        target = overlay.nodes[22].own.value
        record = router.send(0, target, payload="hello")
        overlay.run_until(overlay.sim.now + 4.0)
        assert record.delivered
        assert record.hops >= 1

    def test_send_with_cached_route_cheaper(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        target = overlay.nodes[22].own.value
        first = router.send(0, target, payload="a")
        overlay.run_until(overlay.sim.now + 4.0)
        control_after_first = router.control_messages
        second = router.send(0, target, payload="b")
        overlay.run_until(overlay.sim.now + 4.0)
        assert first.delivered and second.delivered
        # The cached route avoids a second flood.
        assert router.control_messages == control_after_first

    def test_invalidate_forces_rediscovery(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        target = overlay.nodes[22].own.value
        first = router.send(0, target, payload="a")
        overlay.run_until(overlay.sim.now + 4.0)
        assert first.delivered
        assert router.invalidate(0, target)
        assert target not in router.table_of(0)
        assert not router.invalidate(0, target)  # already gone
        control_before = router.control_messages
        second = router.send(0, target, payload="b")
        overlay.run_until(overlay.sim.now + 4.0)
        assert second.delivered
        assert router.control_messages > control_before  # re-flooded

    def test_send_to_self_value(self, small_trust_graph, small_config):
        overlay, router = _routed_overlay(small_trust_graph, small_config)
        own_value = overlay.nodes[0].own.value
        record = router.send(0, own_value, payload="note to self")
        overlay.run_until(overlay.sim.now + 1.0)
        assert record.delivered
        assert record.hops == 0

    def test_ttl_bounds_flood(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        router = PseudonymRouter(overlay, discovery_ttl=1)
        router.install()
        overlay.start()
        overlay.run_until(15.0)
        # With ttl=1 only direct channel partners can answer.
        far_value = overlay.nodes[20].own.value
        near_value = None
        snapshot = overlay.snapshot()
        neighbors = set(snapshot.neighbors(0))
        for neighbor in neighbors:
            near_value = overlay.nodes[neighbor].own.value
            break
        near = router.discover(0, near_value)
        far = router.discover(0, far_value) if 20 not in neighbors else None
        overlay.run_until(overlay.sim.now + 3.0)
        assert near.succeeded
        if far is not None:
            assert not far.succeeded


class TestValidation:
    def test_invalid_ttls(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ProtocolError):
            PseudonymRouter(overlay, discovery_ttl=0)
        with pytest.raises(ProtocolError):
            PseudonymRouter(overlay, data_ttl=0)

    def test_double_install_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        router = PseudonymRouter(overlay)
        router.install()
        with pytest.raises(ProtocolError):
            router.install()

    def test_message_validation(self):
        from repro.privlink import Address

        with pytest.raises(ProtocolError):
            RouteRequest(1, 2, Address(1), hops=0, ttl=-1)
        with pytest.raises(ProtocolError):
            DataPacket(1, 2, "x", hops=0, ttl=-1)
