"""Tests for the observer traffic log."""

from repro.privlink import TrafficLog


class TestTrafficLog:
    def test_records(self):
        log = TrafficLog()
        log.record(1.0, "node:0", "relay:1")
        log.record(2.0, "relay:1", "node:2")
        assert len(log) == 2

    def test_disabled_log_ignores(self):
        log = TrafficLog(enabled=False)
        log.record(1.0, "a", "b")
        assert len(log) == 0

    def test_channels(self):
        log = TrafficLog()
        log.record(1.0, "a", "b")
        log.record(2.0, "a", "b")
        log.record(3.0, "b", "c")
        assert log.channels()[("a", "b")] == 2

    def test_by_endpoint(self):
        log = TrafficLog()
        log.record(1.0, "a", "b")
        log.record(2.0, "b", "c")
        grouped = log.by_endpoint()
        assert len(grouped["b"]) == 2
        assert len(grouped["a"]) == 1

    def test_window(self):
        log = TrafficLog()
        for time in (0.5, 1.5, 2.5):
            log.record(time, "a", "b")
        assert len(log.window(1.0, 2.0)) == 1

    def test_unique_endpoints(self):
        log = TrafficLog()
        log.record(1.0, "a", "b")
        log.record(2.0, "b", "c")
        assert log.unique_endpoints() == ("a", "b", "c")

    def test_max_records(self):
        log = TrafficLog(max_records=1)
        log.record(1.0, "a", "b")
        log.record(2.0, "c", "d")
        assert len(log) == 1
        assert log.dropped == 1

    def test_clear(self):
        log = TrafficLog(max_records=1)
        log.record(1.0, "a", "b")
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0
