"""Tests for the observer traffic log.

:class:`TrafficLog` is the columnar fast path; every query it answers
is also checked against :class:`LegacyTrafficLog` (the original
list-of-dataclasses layout) on the same record sequence, so the two
can never silently diverge.
"""

import numpy as np
import pytest

from repro.privlink import TrafficLog
from repro.privlink.traffic import LegacyTrafficLog


class TestTrafficLog:
    def test_records(self):
        log = TrafficLog()
        log.record(1.0, "node:0", "relay:1")
        log.record(2.0, "relay:1", "node:2")
        assert len(log) == 2

    def test_disabled_log_ignores(self):
        log = TrafficLog(enabled=False)
        log.record(1.0, "a", "b")
        assert len(log) == 0

    def test_channels(self):
        log = TrafficLog()
        log.record(1.0, "a", "b")
        log.record(2.0, "a", "b")
        log.record(3.0, "b", "c")
        assert log.channels()[("a", "b")] == 2

    def test_by_endpoint(self):
        log = TrafficLog()
        log.record(1.0, "a", "b")
        log.record(2.0, "b", "c")
        grouped = log.by_endpoint()
        assert len(grouped["b"]) == 2
        assert len(grouped["a"]) == 1

    def test_window(self):
        log = TrafficLog()
        for time in (0.5, 1.5, 2.5):
            log.record(time, "a", "b")
        assert len(log.window(1.0, 2.0)) == 1

    def test_unique_endpoints(self):
        log = TrafficLog()
        log.record(1.0, "a", "b")
        log.record(2.0, "b", "c")
        assert log.unique_endpoints() == ("a", "b", "c")

    def test_max_records(self):
        log = TrafficLog(max_records=1)
        log.record(1.0, "a", "b")
        log.record(2.0, "c", "d")
        assert len(log) == 1
        assert log.dropped == 1

    def test_max_records_counts_every_overflow(self):
        log = TrafficLog(max_records=2)
        for time in range(5):
            log.record(float(time), "a", "b")
        assert len(log) == 2
        assert log.dropped == 3
        assert [record.time for record in log] == [0.0, 1.0]

    def test_clear(self):
        log = TrafficLog(max_records=1)
        log.record(1.0, "a", "b")
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0

    def test_clear_resets_interning_and_accepts_new_records(self):
        log = TrafficLog(max_records=1)
        log.record(1.0, "a", "b")
        log.record(2.0, "c", "d")
        assert log.dropped == 1
        log.clear()
        assert log.endpoint_names() == ()
        assert log.endpoint_id("a") is None
        log.record(3.0, "x", "y")
        assert len(log) == 1
        assert log.endpoint_names() == ("x", "y")

    def test_disabled_log_allocates_nothing(self):
        log = TrafficLog(enabled=False)
        assert not log.enabled
        for time in range(100):
            log.record(float(time), "a", "b")
        assert len(log) == 0
        assert log.endpoint_names() == ()
        times, srcs, dsts, sizes = log.columns()
        assert times.size == srcs.size == dsts.size == sizes.size == 0


class TestColumnarStorage:
    def test_endpoints_interned_in_first_sight_order(self):
        log = TrafficLog()
        log.record(1.0, "b", "a")
        log.record(2.0, "a", "c")
        log.record(3.0, "b", "c")
        assert log.endpoint_names() == ("b", "a", "c")
        assert log.endpoint_id("a") == 1
        assert log.endpoint_id("missing") is None
        _, srcs, dsts, _ = log.columns()
        assert srcs.tolist() == [0, 1, 0]
        assert dsts.tolist() == [1, 2, 2]

    def test_records_survive_chunk_boundaries(self):
        log = TrafficLog(chunk_records=4)
        for index in range(11):
            log.record(float(index), f"src:{index % 3}", "dst", size_hint=index)
        assert len(log) == 11
        times, srcs, dsts, sizes = log.columns()
        assert times.tolist() == [float(index) for index in range(11)]
        assert sizes.tolist() == list(range(11))
        assert times.dtype == np.float64
        assert srcs.dtype == dsts.dtype == sizes.dtype == np.uint32
        records = list(log)
        assert [record.time for record in records] == times.tolist()
        assert [record.src for record in records] == [
            f"src:{index % 3}" for index in range(11)
        ]

    def test_columns_are_snapshots(self):
        log = TrafficLog(chunk_records=4)
        for index in range(6):
            log.record(float(index), "a", "b")
        times, _, _, _ = log.columns()
        log.record(6.0, "a", "b")
        assert times.size == 6
        assert log.columns()[0].size == 7

    def test_invalid_chunk_records_rejected(self):
        with pytest.raises(ValueError, match="chunk_records"):
            TrafficLog(chunk_records=0)

    def test_columnar_memory_is_smaller_than_legacy(self):
        columnar, legacy = TrafficLog(), LegacyTrafficLog()
        for index in range(10_000):
            for log in (columnar, legacy):
                log.record(float(index), f"node:{index % 50}", f"relay:{index % 7}")
        assert columnar.memory_bytes() * 4 < legacy.memory_bytes()


class TestLegacyEquivalence:
    """Differential check: both layouts answer every query identically."""

    @pytest.fixture()
    def pair(self):
        rng = np.random.default_rng(42)
        columnar = TrafficLog(chunk_records=64)
        legacy = LegacyTrafficLog()
        endpoints = [f"endpoint:{index}" for index in range(17)]
        for time, src, dst, size in zip(
            np.cumsum(rng.random(1000)),
            rng.integers(0, 17, 1000),
            rng.integers(0, 17, 1000),
            rng.integers(1, 100, 1000),
        ):
            for log in (columnar, legacy):
                log.record(
                    float(time), endpoints[src], endpoints[dst], int(size)
                )
        return columnar, legacy

    def test_record_views_identical(self, pair):
        columnar, legacy = pair
        assert len(columnar) == len(legacy)
        assert list(columnar) == list(legacy)

    def test_channels_identical(self, pair):
        columnar, legacy = pair
        assert columnar.channels() == legacy.channels()

    def test_by_endpoint_identical(self, pair):
        columnar, legacy = pair
        assert columnar.by_endpoint() == legacy.by_endpoint()

    def test_window_identical(self, pair):
        columnar, legacy = pair
        assert columnar.window(100.0, 300.0) == legacy.window(100.0, 300.0)
        assert columnar.window(1e9, 2e9) == legacy.window(1e9, 2e9)

    def test_unique_endpoints_identical(self, pair):
        columnar, legacy = pair
        assert columnar.unique_endpoints() == legacy.unique_endpoints()
