"""Tests for the bidirectional-channel adjacency used by dissemination."""

import pytest

from repro import Overlay
from repro.dissemination import FloodBroadcast


class TestChannelAdjacency:
    def _ready(self, graph, config, warmup=10.0):
        overlay = Overlay.build(graph, config, with_churn=False)
        flood = FloodBroadcast(overlay, ttl=8)
        flood.install()
        overlay.start()
        overlay.run_until(warmup)
        return overlay, flood

    def test_adjacency_matches_snapshot_edges(
        self, small_trust_graph, small_config
    ):
        """Every snapshot edge appears as a channel on at least one end,
        and the channel graph has no edges the snapshot lacks."""
        overlay, flood = self._ready(small_trust_graph, small_config)
        adjacency = flood._build_adjacency()
        snapshot = overlay.snapshot(online_only=False)

        channel_pairs = set()
        for node_id, channels in adjacency.items():
            for kind, target, destination in channels:
                if kind == "trusted":
                    channel_pairs.add(frozenset((node_id, target)))
                elif kind == "reverse":
                    channel_pairs.add(frozenset((node_id, target)))
                else:  # out: resolve through the measurement oracle
                    owner = overlay.owner_of_address(target)
                    if owner is not None:
                        channel_pairs.add(frozenset((node_id, owner)))
                        assert owner == destination
        snapshot_pairs = {frozenset(edge) for edge in snapshot.edges()}
        assert snapshot_pairs <= channel_pairs

    def test_reverse_channels_present(self, small_trust_graph, small_config):
        overlay, flood = self._ready(small_trust_graph, small_config)
        adjacency = flood._build_adjacency()
        kinds = {
            kind
            for channels in adjacency.values()
            for kind, _target, _destination in channels
        }
        assert "reverse" in kinds
        assert "out" in kinds
        assert "trusted" in kinds

    def test_reverse_channel_delivers(self, small_trust_graph, small_config):
        """A flood traverses links *against* their establishment
        direction: every online snapshot neighbor of the origin gets the
        message with ttl=1, including pure in-link neighbors."""
        overlay, flood = self._ready(small_trust_graph, small_config, warmup=15.0)
        origin = 0
        snapshot = overlay.snapshot()
        neighbors = set(snapshot.neighbors(origin))
        # Find a neighbor connected ONLY via an in-link (it links to 0,
        # 0 does not link to it).
        out_owners = set()
        for pseudonym in overlay.nodes[origin].links.pseudonym_links():
            owner = overlay.owner_of_value(pseudonym.value)
            if owner is not None:
                out_owners.add(owner)
        out_owners |= overlay.nodes[origin].links.trusted
        in_only = neighbors - out_owners
        record = flood.broadcast(origin, payload="x")
        overlay.run_until(overlay.sim.now + 2.0)
        reached = set(record.delivery_times)
        assert neighbors <= reached | {origin}
        if in_only:  # topology-dependent, usually non-empty
            assert in_only <= reached
