"""Tests for pseudonyms."""

import math

import pytest

from repro.core import Pseudonym, mint_pseudonym
from repro.errors import PseudonymError
from repro.privlink import Address
from repro.rng import PSEUDONYM_BITS


class TestPseudonym:
    def test_expiry(self):
        pseudonym = Pseudonym(value=5, address=Address(1), expires_at=10.0)
        assert not pseudonym.is_expired(9.99)
        assert pseudonym.is_expired(10.0)
        assert pseudonym.is_expired(11.0)

    def test_never_expires(self):
        pseudonym = Pseudonym(value=5, address=Address(1), expires_at=math.inf)
        assert pseudonym.never_expires
        assert not pseudonym.is_expired(1e18)

    def test_value_range_enforced(self):
        with pytest.raises(PseudonymError):
            Pseudonym(value=-1, address=Address(1), expires_at=1.0)
        with pytest.raises(PseudonymError):
            Pseudonym(value=1 << PSEUDONYM_BITS, address=Address(1), expires_at=1.0)

    def test_equality_by_fields(self):
        a = Pseudonym(value=5, address=Address(1), expires_at=10.0)
        b = Pseudonym(value=5, address=Address(1), expires_at=10.0)
        c = Pseudonym(value=5, address=Address(1), expires_at=20.0)
        assert a == b
        assert a != c

    def test_str(self):
        pseudonym = Pseudonym(value=255, address=Address(1), expires_at=math.inf)
        assert "inf" in str(pseudonym)


class TestMint:
    def test_expiry_set_from_lifetime(self, rng):
        pseudonym = mint_pseudonym(rng, Address(1), now=5.0, lifetime=10.0)
        assert pseudonym.expires_at == 15.0

    def test_infinite_lifetime(self, rng):
        pseudonym = mint_pseudonym(rng, Address(1), now=5.0, lifetime=math.inf)
        assert pseudonym.never_expires

    def test_values_look_random(self, rng):
        values = {mint_pseudonym(rng, Address(i), 0.0, 1.0).value for i in range(100)}
        assert len(values) == 100  # collisions effectively impossible

    def test_invalid_lifetime(self, rng):
        with pytest.raises(PseudonymError):
            mint_pseudonym(rng, Address(1), now=0.0, lifetime=0.0)
