"""Tests for anti-entropy dissemination."""

import pytest

from repro import Overlay
from repro.dissemination import AntiEntropyBroadcast, DigestMessage
from repro.errors import DisseminationError
from repro.privlink import Address


class TestDigestMessage:
    def test_exactly_one_reply_channel(self):
        with pytest.raises(DisseminationError):
            DigestMessage(known_ids=frozenset())
        with pytest.raises(DisseminationError):
            DigestMessage(
                known_ids=frozenset(), reply_node=1, reply_address=Address(1)
            )


class TestAntiEntropy:
    def _system(self, graph, config, with_churn=False):
        overlay = Overlay.build(graph, config, with_churn=with_churn)
        protocol = AntiEntropyBroadcast(overlay, period=1.0)
        protocol.install()
        overlay.start()
        return overlay, protocol

    def test_eventual_full_coverage(self, small_trust_graph, small_config):
        overlay, protocol = self._system(small_trust_graph, small_config)
        overlay.run_until(10.0)
        record = protocol.broadcast(0, payload="digest me")
        overlay.run_until(overlay.sim.now + 40.0)
        assert record.deliveries() == small_config.num_nodes

    def test_rejoining_node_catches_up(self, small_trust_graph, small_config):
        """The property flooding lacks: offline nodes sync on rejoin."""
        overlay, protocol = self._system(small_trust_graph, small_config)
        overlay.run_until(10.0)
        # Take node 17 offline, broadcast while it is away.
        overlay.nodes[17].go_offline()
        record = protocol.broadcast(0, payload="missed news")
        overlay.run_until(overlay.sim.now + 15.0)
        assert 17 not in record.delivery_times
        # It rejoins and synchronizes via digest exchange.
        overlay.nodes[17].come_online()
        overlay.run_until(overlay.sim.now + 25.0)
        assert 17 in record.delivery_times
        assert record.message_id in protocol.store_of(17)

    def test_multiple_messages_converge(self, small_trust_graph, small_config):
        overlay, protocol = self._system(small_trust_graph, small_config)
        overlay.run_until(5.0)
        records = [
            protocol.broadcast(origin, payload=f"msg-{origin}")
            for origin in (0, 5, 12)
        ]
        overlay.run_until(overlay.sim.now + 50.0)
        for record in records:
            assert record.deliveries() == small_config.num_nodes

    def test_coverage_under_churn(self, small_trust_graph, small_config):
        overlay, protocol = self._system(
            small_trust_graph, small_config, with_churn=True
        )
        overlay.run_until(10.0)
        online = overlay.online_ids()
        record = protocol.broadcast(online[0], payload="x")
        overlay.run_until(overlay.sim.now + 60.0)
        # Anti-entropy eventually reaches (nearly) everyone, including
        # nodes offline at broadcast time.
        assert record.deliveries() > 0.9 * small_config.num_nodes

    def test_push_cap_respected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        protocol = AntiEntropyBroadcast(overlay, period=1.0, max_push=2)
        protocol.install()
        overlay.start()
        overlay.run_until(3.0)
        for index in range(6):
            protocol.broadcast(0, payload=index)
        overlay.run_until(overlay.sim.now + 40.0)
        # All messages still converge, just over more rounds.
        assert len(protocol.store_of(29)) == 6

    def test_counters(self, small_trust_graph, small_config):
        overlay, protocol = self._system(small_trust_graph, small_config)
        protocol.broadcast(0, payload="x")
        overlay.run_until(10.0)
        assert protocol.digests_sent > 0
        assert protocol.pushes_sent > 0

    def test_offline_origin_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        protocol = AntiEntropyBroadcast(overlay)
        protocol.install()
        with pytest.raises(DisseminationError):
            protocol.broadcast(0, payload="x")

    def test_invalid_parameters(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(DisseminationError):
            AntiEntropyBroadcast(overlay, period=0.0)
        with pytest.raises(DisseminationError):
            AntiEntropyBroadcast(overlay, max_push=0)
