"""Tests for churn duration distributions."""

import numpy as np
import pytest

from repro.churn import (
    Exponential,
    Pareto,
    Weibull,
    distribution_from_name,
)
from repro.errors import ChurnError


class TestExponential:
    def test_mean_property(self):
        assert Exponential(30.0).mean == 30.0

    def test_sample_mean_converges(self, rng):
        dist = Exponential(10.0)
        samples = dist.sample_many(rng, 20000)
        assert samples.mean() == pytest.approx(10.0, rel=0.05)

    def test_samples_positive(self, rng):
        dist = Exponential(5.0)
        assert (dist.sample_many(rng, 1000) >= 0).all()

    def test_invalid_mean(self):
        with pytest.raises(ChurnError):
            Exponential(0.0)


class TestPareto:
    def test_mean_converges(self, rng):
        dist = Pareto(10.0, shape=3.0)
        samples = dist.sample_many(rng, 50000)
        assert samples.mean() == pytest.approx(10.0, rel=0.15)

    def test_heavy_tail(self, rng):
        exp_samples = Exponential(10.0).sample_many(rng, 20000)
        par_samples = Pareto(10.0, shape=2.0).sample_many(rng, 20000)
        # Pareto has far larger extreme values at the same mean.
        assert np.percentile(par_samples, 99.9) > np.percentile(exp_samples, 99.9)

    def test_shape_must_exceed_one(self):
        with pytest.raises(ChurnError):
            Pareto(10.0, shape=1.0)

    def test_invalid_mean(self):
        with pytest.raises(ChurnError):
            Pareto(-1.0)


class TestWeibull:
    def test_mean_converges(self, rng):
        dist = Weibull(10.0, shape=0.7)
        samples = dist.sample_many(rng, 50000)
        assert samples.mean() == pytest.approx(10.0, rel=0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ChurnError):
            Weibull(0.0)
        with pytest.raises(ChurnError):
            Weibull(1.0, shape=0.0)


class TestFactory:
    def test_exponential(self):
        dist = distribution_from_name("exponential", 5.0)
        assert isinstance(dist, Exponential)
        assert dist.mean == 5.0

    def test_pareto_with_shape(self):
        dist = distribution_from_name("Pareto", 5.0, shape=2.5)
        assert isinstance(dist, Pareto)
        assert dist.shape == 2.5

    def test_weibull(self):
        assert isinstance(distribution_from_name("weibull", 5.0), Weibull)

    def test_unknown_name(self):
        with pytest.raises(ChurnError):
            distribution_from_name("cauchy", 5.0)

    def test_single_sample_positive(self, rng):
        for name in ("exponential", "pareto", "weibull"):
            assert distribution_from_name(name, 2.0).sample(rng) >= 0
