"""Tests for churn session traces."""

import numpy as np
import pytest

from repro.churn import (
    SessionTrace,
    Transition,
    generate_trace,
    homogeneous_specs,
    replay_trace,
)
from repro.errors import ChurnError
from repro.sim import Simulator


class TestSessionTrace:
    def test_ordering_enforced(self):
        with pytest.raises(ChurnError):
            SessionTrace(
                2,
                [True, False],
                [Transition(5.0, 0, False), Transition(1.0, 1, True)],
            )

    def test_initial_length_checked(self):
        with pytest.raises(ChurnError):
            SessionTrace(3, [True], [])

    def test_online_at(self):
        trace = SessionTrace(
            2,
            [True, False],
            [Transition(1.0, 0, False), Transition(2.0, 1, True)],
        )
        assert trace.online_at(0.5) == [True, False]
        assert trace.online_at(1.5) == [False, False]
        assert trace.online_at(2.5) == [False, True]

    def test_horizon(self):
        trace = SessionTrace(1, [True], [Transition(4.0, 0, False)])
        assert trace.horizon == 4.0
        assert SessionTrace(1, [True], []).horizon == 0.0

    def test_empirical_availability(self):
        trace = SessionTrace(
            1,
            [True],
            [Transition(2.0, 0, False), Transition(6.0, 0, True)],
        )
        # Online [0,2) and [6,10): 6 of 10.
        assert trace.empirical_availability(0, 10.0) == pytest.approx(0.6)

    def test_empirical_availability_invalid_horizon(self):
        trace = SessionTrace(1, [True], [])
        with pytest.raises(ChurnError):
            trace.empirical_availability(0, 0.0)


class TestGenerateTrace:
    def test_trace_respects_horizon(self, rng):
        specs = homogeneous_specs(20, availability=0.5, mean_offline_time=3.0)
        trace = generate_trace(specs, horizon=50.0, rng=rng)
        assert trace.num_nodes == 20
        assert all(transition.time <= 50.0 for transition in trace)

    def test_empirical_availability_matches_spec(self, rng):
        specs = homogeneous_specs(1, availability=0.6, mean_offline_time=2.0)
        trace = generate_trace(specs, horizon=5000.0, rng=rng)
        assert trace.empirical_availability(0, 5000.0) == pytest.approx(0.6, abs=0.07)

    def test_start_all_online(self, rng):
        specs = homogeneous_specs(10, availability=0.2, mean_offline_time=5.0)
        trace = generate_trace(specs, horizon=10.0, rng=rng, start_all_online=True)
        assert all(trace.initial_online)

    def test_invalid_horizon(self, rng):
        specs = homogeneous_specs(2, availability=0.5, mean_offline_time=5.0)
        with pytest.raises(ChurnError):
            generate_trace(specs, horizon=0.0, rng=rng)


class TestReplayTrace:
    def test_replay_fires_listener_at_times(self, rng):
        specs = homogeneous_specs(5, availability=0.5, mean_offline_time=2.0)
        trace = generate_trace(specs, horizon=20.0, rng=rng)
        sim = Simulator()
        seen = []
        replay_trace(sim, trace, lambda node, online: seen.append((sim.now, node, online)))
        sim.run_until(20.0)
        assert len(seen) == len(trace)
        expected = [(t.time, t.node_id, t.online) for t in trace]
        assert [(pytest.approx(s[0]), s[1], s[2]) for s in seen] == expected
