"""Whole-program pass: FLOW/FORK/PAR rules, baseline, cache, SARIF."""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.lint import lint_project, render_sarif
from repro.lint.baseline import check_baseline, write_baseline
from repro.lint.cache import ResultCache
from repro.lint.cli import main as lint_main
from repro.lint.parity import PARITY_PAIRS, ParityPair

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write(root, name, source):
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def _package(tmp_path, files):
    pkg = tmp_path / "pkg"
    _write(pkg, "__init__.py", "")
    for name, source in files.items():
        _write(pkg, name, source)
    return pkg


def _rules(result, code):
    return [f for f in result.findings if f.rule == code]


class TestFlowRules:
    def test_flow001_hardcoded_seed_flagged(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "gen.py": """
                import numpy as np

                def sampler():
                    rng = np.random.default_rng(1234)
                    return rng.random()
                """
            },
        )
        result = lint_project([str(pkg)])
        flagged = _rules(result, "FLOW001")
        assert len(flagged) == 1
        assert "hardcoded seed" in flagged[0].message

    def test_flow001_param_seeded_is_clean(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "gen.py": """
                import numpy as np

                def sampler(seed):
                    rng = np.random.default_rng(seed)
                    return rng.random()
                """
            },
        )
        assert _rules(lint_project([str(pkg)]), "FLOW001") == []

    def test_flow002_dropped_rng_flagged(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "pipe.py": """
                import numpy as np
                from typing import Optional

                def helper(count, rng=None):
                    if rng is None:
                        rng = np.random.default_rng(count)
                    return rng.random()

                def caller(count, rng):
                    return helper(count)
                """
            },
        )
        flagged = _rules(lint_project([str(pkg)]), "FLOW002")
        assert len(flagged) == 1
        assert "without passing any" in flagged[0].message

    def test_flow002_threaded_rng_is_clean(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "pipe.py": """
                def helper(count, rng=None):
                    return count

                def caller(count, rng):
                    return helper(count, rng=rng)
                """
            },
        )
        assert _rules(lint_project([str(pkg)]), "FLOW002") == []

    def test_flow003_public_api_reaching_global_rng(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "api.py": """
                import numpy as np

                def _inner():
                    return np.random.random()

                def api():
                    return _inner()
                """
            },
        )
        flagged = _rules(lint_project([str(pkg)]), "FLOW003")
        assert any("api" in f.message and "_inner" in f.message for f in flagged)

    def test_flow003_unreachable_global_rng_not_blamed_on_api(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "api.py": """
                import numpy as np

                def _orphan():
                    return np.random.random()

                def api(x):
                    return x + 1
                """
            },
        )
        result = lint_project([str(pkg)])
        assert all("api" not in f.message for f in _rules(result, "FLOW003"))


FORK_PKG = {
    "work.py": """
    RESULTS = []

    def _crunch_task(item):
        RESULTS.append(item)
        return item
    """
}


class TestForkRules:
    def test_fork001_worker_global_write_flagged(self, tmp_path):
        pkg = _package(tmp_path, FORK_PKG)
        flagged = _rules(lint_project([str(pkg)]), "FORK001")
        assert len(flagged) == 1
        assert "RESULTS" in flagged[0].message
        assert "_crunch_task" in flagged[0].message

    def test_fork001_memo_guard_waived(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "memo.py": """
                _CACHE = {}

                def _memo_task(key):
                    if key in _CACHE:
                        return _CACHE[key]
                    _CACHE[key] = key * 2
                    return _CACHE[key]
                """
            },
        )
        assert _rules(lint_project([str(pkg)]), "FORK001") == []

    def test_fork001_non_worker_write_not_flagged(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "setup.py_": "",
                "config.py": """
                SETTINGS = {}

                def configure(key, value):
                    SETTINGS[key] = value
                """,
            },
        )
        assert _rules(lint_project([str(pkg)]), "FORK001") == []

    def test_fork001_marker_comment_makes_an_entry(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "work.py": """
                TOTALS = []

                def accumulate(item):  # lint: fork-entry
                    TOTALS.append(item)
                """
            },
        )
        assert len(_rules(lint_project([str(pkg)]), "FORK001")) == 1

    def test_fork001_reaches_through_call_graph(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "work.py": """
                STATE = {}

                def _poke(item):
                    STATE[item] = True

                def _deep_task(item):
                    return _helper(item)

                def _helper(item):
                    _poke(item)
                    return item
                """
            },
        )
        flagged = _rules(lint_project([str(pkg)]), "FORK001")
        assert len(flagged) == 1
        assert "_poke" in flagged[0].message

    def test_fork002_class_attribute_write(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "work.py": """
                class Tally:
                    total = 0

                def _tally_task(item):
                    Tally.total = item
                    return item
                """
            },
        )
        flagged = _rules(lint_project([str(pkg)]), "FORK002")
        assert len(flagged) == 1
        assert "Tally.total" in flagged[0].message

    def test_fork003_lambda_runner_flagged(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "pool.py": """
                def parallel_map(func, items, workers=2):
                    return [func(item) for item in items]
                """,
                "use.py": """
                from .pool import parallel_map

                def fan_out(items):
                    return parallel_map(lambda x: x + 1, items)
                """,
            },
        )
        flagged = _rules(lint_project([str(pkg)]), "FORK003")
        assert len(flagged) == 1
        assert "lambda" in flagged[0].message

    def test_fork003_closure_capturing_simulator(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "sim.py": """
                class Simulator:
                    def step(self, item):
                        return item
                """,
                "pool.py": """
                def parallel_map(func, items, workers=2):
                    return [func(item) for item in items]
                """,
                "use.py": """
                from .pool import parallel_map
                from .sim import Simulator

                def fan_out(items):
                    sim = Simulator()
                    def _loop(item):
                        return sim.step(item)
                    return parallel_map(_loop, items)
                """,
            },
        )
        flagged = _rules(lint_project([str(pkg)]), "FORK003")
        assert len(flagged) == 1
        assert "captures 'sim'" in flagged[0].message

    def test_fork003_payload_closure_is_fine(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "pool.py": """
                def parallel_map(func, items, workers=2):
                    return [func(item) for item in items]
                """,
                "use.py": """
                from .pool import parallel_map

                def fan_out(items, offset):
                    def _shift(item):
                        return item + offset
                    return parallel_map(_shift, items)
                """,
            },
        )
        assert _rules(lint_project([str(pkg)]), "FORK003") == []

    def test_fork004_generator_payload_flagged(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "pool.py": """
                def parallel_map(func, items, workers=2):
                    return [func(item) for item in items]
                """,
                "use.py": """
                from .pool import parallel_map

                def _double_task(item):
                    return item * 2

                def fan_out(items):
                    return parallel_map(_double_task, (i for i in items))
                """,
            },
        )
        flagged = _rules(lint_project([str(pkg)]), "FORK004")
        assert len(flagged) == 1
        assert "genexp" in flagged[0].message


STUB_FAST = """
def turbo(alpha, beta):
    return alpha + beta
"""

STUB_SLOW_OK = """
def turbo(alpha, beta):
    return alpha + beta
"""

STUB_SLOW_DRIFTED = """
def turbo(alpha, gamma):
    return alpha + gamma
"""


def _stub_pair(**overrides):
    base = dict(
        name="stub",
        fast_module="pkg.fast",
        legacy_module="pkg.slow",
        symbols=(("turbo", "turbo", ("alpha", "beta")),),
        evidence=("turbo_differential",),
    )
    base.update(overrides)
    return ParityPair(**base)


class TestParityRules:
    def test_par001_signature_drift_fails(self, tmp_path):
        pkg = _package(
            tmp_path, {"fast.py": STUB_FAST, "slow.py": STUB_SLOW_DRIFTED}
        )
        result = lint_project([str(pkg)], parity_pairs=[_stub_pair()])
        flagged = _rules(result, "PAR001")
        assert len(flagged) == 1
        assert "beta" in flagged[0].message

    def test_par001_missing_symbol_fails(self, tmp_path):
        pkg = _package(
            tmp_path, {"fast.py": STUB_FAST, "slow.py": "x = 1\n"}
        )
        result = lint_project([str(pkg)], parity_pairs=[_stub_pair()])
        assert any("missing" in f.message for f in _rules(result, "PAR001"))

    def test_par001_matching_pair_is_clean(self, tmp_path):
        pkg = _package(
            tmp_path, {"fast.py": STUB_FAST, "slow.py": STUB_SLOW_OK}
        )
        result = lint_project([str(pkg)], parity_pairs=[_stub_pair()])
        assert _rules(result, "PAR001") == []

    def test_par002_unpinned_pair_fails(self, tmp_path):
        pkg = _package(
            tmp_path, {"fast.py": STUB_FAST, "slow.py": STUB_SLOW_OK}
        )
        tests_dir = tmp_path / "tests"
        _write(tests_dir, "test_other.py", "def test_nothing(): pass\n")
        result = lint_project(
            [str(pkg)],
            parity_pairs=[_stub_pair()],
            tests_root=str(tests_dir),
        )
        flagged = _rules(result, "PAR002")
        assert len(flagged) == 1
        assert "turbo_differential" in flagged[0].message

    def test_par002_pinned_pair_is_clean(self, tmp_path):
        pkg = _package(
            tmp_path, {"fast.py": STUB_FAST, "slow.py": STUB_SLOW_OK}
        )
        tests_dir = tmp_path / "tests"
        _write(
            tests_dir,
            "test_turbo.py",
            "def test_turbo_differential(): pass\n",
        )
        result = lint_project(
            [str(pkg)],
            parity_pairs=[_stub_pair()],
            tests_root=str(tests_dir),
        )
        assert _rules(result, "PAR002") == []

    def test_par003_unregistered_legacy_class_fails(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "thing.py": """
                class Thing:
                    def run(self):
                        return 1

                class LegacyThing:
                    def run(self):
                        return 1
                """
            },
        )
        result = lint_project([str(pkg)], parity_pairs=[])
        flagged = _rules(result, "PAR003")
        assert len(flagged) == 1
        assert "LegacyThing" in flagged[0].message

    def test_par003_registered_pair_is_clean(self, tmp_path):
        pkg = _package(
            tmp_path,
            {
                "thing.py": """
                class Thing:
                    def run(self):
                        return 1

                class LegacyThing:
                    def run(self):
                        return 1
                """
            },
        )
        registered = _stub_pair(
            fast_module="pkg.thing",
            legacy_module="pkg.thing",
            symbols=(("Thing.run", "LegacyThing.run", ()),),
        )
        result = lint_project([str(pkg)], parity_pairs=[registered])
        assert _rules(result, "PAR003") == []

    def test_shipping_registry_covers_the_known_pairs(self):
        names = {pair.name for pair in PARITY_PAIRS}
        assert names == {
            "graph-metrics",
            "traffic-log",
            "circuit-cache",
            "node-plane-slots",
            "node-plane-cache",
            "node-plane-links",
            "sharded-batch",
            "net-clock",
            "dissemination-plane",
            "broadcast-ledger",
        }


class TestBaselineRatchet:
    def test_new_finding_fails_check_via_cli(self, tmp_path, capsys):
        pkg = _package(tmp_path, {"clean.py": "def f(x):\n    return x\n"})
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(pkg), "--no-cache", "--baseline", "write",
                 "--baseline-file", str(baseline)]
            )
            == 0
        )
        # A synthetic new FORK finding appears: the ratchet must fail.
        _write(Path(pkg), "work.py", FORK_PKG["work.py"])
        code = lint_main(
            [str(pkg), "--no-cache", "--baseline", "check",
             "--baseline-file", str(baseline)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "NEW" in out
        assert "FORK001" in out

    def test_unchanged_findings_pass_check(self, tmp_path):
        pkg = _package(tmp_path, FORK_PKG)
        baseline = tmp_path / "baseline.json"
        result = lint_project([str(pkg)])
        assert not result.ok
        write_baseline(result.findings, str(baseline))
        report = check_baseline(result.findings, str(baseline))
        assert report.ok

    def test_fixed_findings_reported_for_ratchet_down(self, tmp_path):
        pkg = _package(tmp_path, FORK_PKG)
        baseline = tmp_path / "baseline.json"
        result = lint_project([str(pkg)])
        write_baseline(result.findings, str(baseline))
        report = check_baseline([], str(baseline))
        assert report.ok
        assert report.fixed_count == len(result.findings)

    def test_missing_baseline_is_an_invocation_error(self, tmp_path, capsys):
        pkg = _package(tmp_path, {"clean.py": "x = 1\n"})
        code = lint_main(
            [str(pkg), "--no-cache", "--baseline", "check",
             "--baseline-file", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "no baseline" in capsys.readouterr().err


class TestCache:
    def test_cache_reuses_results_and_feeds_project_pass(self, tmp_path):
        pkg = _package(tmp_path, FORK_PKG)
        cache_file = tmp_path / "cache.json"
        first = lint_project([str(pkg)], cache=ResultCache(str(cache_file)))
        assert cache_file.exists()
        second = lint_project([str(pkg)], cache=ResultCache(str(cache_file)))
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]
        assert any(f.rule == "FORK001" for f in second.findings)

    def test_content_change_invalidates_entry(self, tmp_path):
        pkg = _package(tmp_path, {"mod.py": "def f():\n    return 1\n"})
        cache_file = tmp_path / "cache.json"
        assert lint_project(
            [str(pkg)], cache=ResultCache(str(cache_file))
        ).ok
        _write(Path(pkg), "mod.py", "import random\n")
        result = lint_project([str(pkg)], cache=ResultCache(str(cache_file)))
        assert [f.rule for f in result.findings] == ["DET002"]


class TestChangedMode:
    def test_changed_reports_only_touched_files(self, tmp_path, capsys, monkeypatch):
        pkg = _package(
            tmp_path,
            {
                "stable.py": "import random\n",
                "touched.py": "def f():\n    return 1\n",
            },
        )
        monkeypatch.chdir(tmp_path)
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
        for command in (
            ["git", "init", "-q"],
            ["git", "add", "."],
            ["git", "commit", "-qm", "seed"],
        ):
            subprocess.run(command, check=True, cwd=tmp_path,
                           env={**__import__("os").environ, **env})
        _write(Path(pkg), "touched.py", "import random\n")
        code = lint_main(
            ["pkg", "--no-cache", "--changed", "--diff-base", "HEAD"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "touched.py" in out
        assert "stable.py" not in out


class TestSarif:
    def test_sarif_document_structure(self, tmp_path):
        pkg = _package(tmp_path, FORK_PKG)
        result = lint_project([str(pkg)])
        document = json.loads(render_sarif(result))
        assert document["version"] == "2.1.0"
        assert document["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert all(result_["ruleId"] in rule_ids for result_ in run["results"])
        for entry in run["results"]:
            assert entry["level"] == "error"
            assert entry["message"]["text"]
            (location,) = entry["locations"]
            region = location["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            assert location["physicalLocation"]["artifactLocation"]["uri"]

    def test_sarif_empty_run_is_valid(self, tmp_path):
        pkg = _package(tmp_path, {"ok.py": "x = 1\n"})
        document = json.loads(render_sarif(lint_project([str(pkg)])))
        assert document["runs"][0]["results"] == []


class TestSelfLint:
    def test_lint_and_parallel_are_clean_at_zero_suppressions(self):
        result = lint_project(
            [
                str(REPO_ROOT / "src" / "repro" / "lint"),
                str(REPO_ROOT / "src" / "repro" / "parallel"),
            ]
        )
        offenders = "\n".join(f.format_text() for f in result.findings)
        assert result.ok, f"lint/parallel findings:\n{offenders}"
        assert result.suppression_count == 0

    def test_committed_baseline_is_empty_and_honest(self):
        document = json.loads(
            (REPO_ROOT / ".lint-baseline.json").read_text(encoding="utf-8")
        )
        total = document["total"] + document["suppressions"]
        assert total < 23  # strictly fewer than the pre-PR suppressions
        assert document["fingerprints"] == {}
