"""Per-rule unit tests for the repro.lint rule set.

Each rule gets positive fixtures (must flag) and negative fixtures
(must stay silent), exercised through :func:`repro.lint.lint_source`.
"""

import textwrap

from repro.lint import lint_source, select_rules


def _lint(source, rules=None, path="src/repro/somewhere/module.py"):
    selected = select_rules(rules) if rules is not None else None
    return lint_source(textwrap.dedent(source), path=path, rules=selected)


def _codes(findings):
    return [finding.rule for finding in findings]


class TestDet001UnseededNumpy:
    def test_flags_unseeded_default_rng(self):
        findings = _lint(
            """
            import numpy as np

            def f():
                rng = np.random.default_rng()
                return rng.random()
            """
        )
        assert _codes(findings) == ["DET001"]
        assert findings[0].line == 5

    def test_flags_plain_numpy_import(self):
        findings = _lint(
            """
            import numpy

            rng = numpy.random.default_rng()
            """
        )
        assert _codes(findings) == ["DET001"]

    def test_flags_from_import_alias(self):
        findings = _lint(
            """
            from numpy.random import default_rng

            rng = default_rng()
            """
        )
        assert _codes(findings) == ["DET001"]

    def test_flags_unseeded_randomstate(self):
        findings = _lint(
            """
            import numpy as np

            state = np.random.RandomState()
            """
        )
        assert _codes(findings) == ["DET001"]

    def test_flags_global_convenience_calls(self):
        findings = _lint(
            """
            import numpy as np

            def f(items):
                np.random.seed(0)
                np.random.shuffle(items)
                return np.random.random()
            """
        )
        assert _codes(findings) == ["DET001", "DET001", "DET001"]

    def test_seeded_default_rng_is_fine(self):
        findings = _lint(
            """
            import numpy as np

            rng = np.random.default_rng(42)
            other = np.random.default_rng(seed=7)
            """
        )
        assert findings == []

    def test_seedsequence_construction_is_fine(self):
        findings = _lint(
            """
            import numpy as np

            seq = np.random.SeedSequence(entropy=[1, 2])
            rng = np.random.default_rng(seq)
            """
        )
        assert findings == []

    def test_generator_method_calls_are_fine(self):
        findings = _lint(
            """
            def f(rng):
                return rng.choice(10), rng.random(), rng.shuffle([1, 2])
            """
        )
        assert findings == []


class TestDet002StdlibRandom:
    def test_flags_import(self):
        findings = _lint("import random\n")
        assert _codes(findings) == ["DET002"]

    def test_flags_from_import(self):
        findings = _lint("from random import choice\n")
        assert _codes(findings) == ["DET002"]

    def test_flags_call_through_import(self):
        findings = _lint(
            """
            import random

            def f():
                return random.random()
            """
        )
        assert _codes(findings) == ["DET002", "DET002"]

    def test_numpy_random_submodule_not_confused(self):
        # ``from numpy import random`` binds the *numpy* random module.
        findings = _lint(
            """
            from numpy import random

            def f(items):
                rng = random.default_rng(3)
                return rng.choice(items)
            """
        )
        assert findings == []

    def test_local_variable_named_random_is_fine(self):
        findings = _lint(
            """
            def f(random):
                return random.thing()
            """
        )
        assert findings == []


class TestDet003HostClock:
    def test_flags_time_time(self):
        findings = _lint(
            """
            import time

            def f():
                return time.time()
            """
        )
        assert _codes(findings) == ["DET003"]

    def test_flags_monotonic_and_perf_counter(self):
        findings = _lint(
            """
            import time

            def f():
                return time.monotonic() + time.perf_counter()
            """
        )
        assert _codes(findings) == ["DET003", "DET003"]

    def test_flags_datetime_now_and_utcnow(self):
        findings = _lint(
            """
            from datetime import datetime

            def f():
                return datetime.now(), datetime.utcnow()
            """
        )
        assert _codes(findings) == ["DET003", "DET003"]

    def test_flags_datetime_module_form(self):
        findings = _lint(
            """
            import datetime

            stamp = datetime.datetime.now()
            """
        )
        assert _codes(findings) == ["DET003"]

    def test_from_time_import_alias(self):
        findings = _lint(
            """
            from time import time as wall

            def f():
                return wall()
            """
        )
        assert _codes(findings) == ["DET003"]

    def test_time_sleep_is_fine(self):
        findings = _lint(
            """
            import time

            def f():
                time.sleep(0.1)
            """
        )
        assert findings == []

    def test_simulator_now_is_fine(self):
        findings = _lint(
            """
            def f(sim):
                return sim.now
            """
        )
        assert findings == []


class TestDet004SetOrder:
    def test_flags_comprehension_over_set_param_with_rng(self):
        findings = _lint(
            """
            from typing import Set

            def pick(sampled: Set[int], rng):
                candidates = [node for node in sampled if node > 0]
                return candidates[int(rng.integers(0, len(candidates)))]
            """
        )
        assert _codes(findings) == ["DET004"]

    def test_flags_for_loop_over_set_literal(self):
        findings = _lint(
            """
            def f(rng):
                total = 0
                for item in {1, 2, 3}:
                    total += int(rng.integers(0, item))
                return total
            """
        )
        assert _codes(findings) == ["DET004"]

    def test_flags_list_of_set_into_rng(self):
        findings = _lint(
            """
            def f(rng, items):
                pool = set(items)
                return rng.choice(list(pool))
            """
        )
        assert _codes(findings) == ["DET004"]

    def test_sorted_iteration_is_fine(self):
        findings = _lint(
            """
            from typing import Set

            def pick(sampled: Set[int], rng):
                candidates = [node for node in sampled_sorted(sampled)]
                ordered = sorted(sampled)
                for node in ordered:
                    pass
                return ordered[int(rng.integers(0, len(ordered)))]

            def sampled_sorted(sampled):
                return sorted(sampled)
            """
        )
        assert findings == []

    def test_set_iteration_without_rng_is_fine(self):
        # Order-insensitive consumption (e.g. building a graph) is legal.
        findings = _lint(
            """
            def f(items):
                seen = set(items)
                return [item for item in seen]
            """
        )
        assert findings == []

    def test_membership_tests_are_fine(self):
        findings = _lint(
            """
            def f(rng, items):
                seen = set(items)
                return [rng.integers(0, x) for x in items if x in seen]
            """
        )
        assert findings == []


class TestHyg001MutableDefault:
    def test_flags_list_dict_set_literals(self):
        findings = _lint(
            """
            def f(a=[], b={}, c={1, 2}):
                return a, b, c
            """
        )
        assert _codes(findings) == ["HYG001", "HYG001", "HYG001"]

    def test_flags_factory_calls(self):
        findings = _lint(
            """
            def f(a=list(), b=dict()):
                return a, b
            """
        )
        assert _codes(findings) == ["HYG001", "HYG001"]

    def test_flags_kwonly_defaults(self):
        findings = _lint(
            """
            def f(*, registry=[]):
                return registry
            """
        )
        assert _codes(findings) == ["HYG001"]

    def test_none_and_immutable_defaults_are_fine(self):
        findings = _lint(
            """
            def f(a=None, b=(), c=0, d="x", e=frozenset()):
                return a, b, c, d, e
            """
        )
        assert findings == []


class TestHyg002BroadExcept:
    def test_flags_bare_except(self):
        findings = _lint(
            """
            def f():
                try:
                    return 1
                except:
                    return 2
            """
        )
        assert _codes(findings) == ["HYG002"]

    def test_flags_broad_except_without_reraise(self):
        findings = _lint(
            """
            def f():
                try:
                    return 1
                except Exception:
                    return 2
            """
        )
        assert _codes(findings) == ["HYG002"]

    def test_broad_except_with_reraise_is_fine(self):
        findings = _lint(
            """
            def f():
                try:
                    return 1
                except Exception:
                    raise
            """
        )
        assert findings == []

    def test_specific_except_is_fine(self):
        findings = _lint(
            """
            def f():
                try:
                    return 1
                except (ValueError, KeyError):
                    return 2
            """
        )
        assert findings == []


class TestHyg003MissingSlots:
    CORE_PATH = "src/repro/core/example.py"

    def test_flags_core_class_without_slots(self):
        findings = _lint(
            """
            class Holder:
                def __init__(self):
                    self.value = 1
            """,
            path=self.CORE_PATH,
        )
        assert _codes(findings) == ["HYG003"]

    def test_slotted_class_is_fine(self):
        findings = _lint(
            """
            class Holder:
                __slots__ = ("value",)

                def __init__(self):
                    self.value = 1
            """,
            path=self.CORE_PATH,
        )
        assert findings == []

    def test_dataclass_is_exempt(self):
        findings = _lint(
            """
            import dataclasses

            @dataclasses.dataclass(frozen=True)
            class Point:
                x: int
                y: int
            """,
            path=self.CORE_PATH,
        )
        assert findings == []

    def test_stateless_class_is_fine(self):
        findings = _lint(
            """
            class Namespace:
                CONSTANT = 7

                def method(self):
                    return self.CONSTANT
            """,
            path=self.CORE_PATH,
        )
        assert findings == []

    def test_rule_is_scoped_to_core(self):
        findings = _lint(
            """
            class Holder:
                def __init__(self):
                    self.value = 1
            """,
            path="src/repro/experiments/example.py",
        )
        assert findings == []
