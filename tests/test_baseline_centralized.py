"""Tests for the centralized-directory baseline."""

import pytest

from repro import SystemConfig
from repro.baselines import CentralizedOverlay, DirectoryServer
from repro.errors import ExperimentError
from repro.graphs import fraction_disconnected


@pytest.fixture
def config():
    return SystemConfig(
        num_nodes=40,
        availability=0.6,
        mean_offline_time=5.0,
        cache_size=10,
        shuffle_length=4,
        target_degree=8,
        seed=21,
    )


class TestDirectoryServer:
    def test_sample_excludes_asker(self, rng):
        server = DirectoryServer(rng)
        for node in range(10):
            server.register(node)
        peers = server.sample_peers(3, 9)
        assert 3 not in peers
        assert len(peers) == 9

    def test_sample_capped_by_population(self, rng):
        server = DirectoryServer(rng)
        server.register(0)
        server.register(1)
        assert server.sample_peers(0, 10) == [1]

    def test_breach_reveals_everything(self, rng):
        server = DirectoryServer(rng)
        for node in range(5):
            server.register(node)
        server.record_link(0, 1)
        server.record_link(1, 2)
        report = server.breach()
        assert report.identities_exposed == 5
        assert (0, 1) in report.links and (1, 2) in report.links


class TestCentralizedOverlay:
    def test_converges_immediately_without_churn(self, config):
        overlay = CentralizedOverlay.build(config, with_churn=False)
        overlay.start()
        overlay.run_until(1.0)
        snapshot = overlay.snapshot()
        assert fraction_disconnected(snapshot) == 0.0
        degrees = [degree for _, degree in snapshot.degree()]
        assert min(degrees) >= config.target_degree // 2

    def test_robust_under_churn(self, config):
        overlay = CentralizedOverlay.build(config)
        overlay.start()
        overlay.run_until(30.0)
        snapshot = overlay.snapshot()
        assert fraction_disconnected(snapshot) < 0.1

    def test_breach_exposes_whole_group(self, config):
        overlay = CentralizedOverlay.build(config)
        overlay.start()
        overlay.run_until(5.0)
        report = overlay.directory.breach()
        assert report.identities_exposed == config.num_nodes
        assert len(report.links) > 0

    def test_message_accounting(self, config):
        overlay = CentralizedOverlay.build(config, with_churn=False)
        overlay.start()
        overlay.run_until(5.0)
        assert overlay.messages_sent > 0
        assert overlay.directory.queries_served > 0

    def test_double_start_rejected(self, config):
        overlay = CentralizedOverlay.build(config, with_churn=False)
        overlay.start()
        with pytest.raises(ExperimentError):
            overlay.start()

    def test_invalid_refresh_period(self, config):
        with pytest.raises(ExperimentError):
            CentralizedOverlay.build(config, refresh_period=0.0)

    def test_snapshot_full_population(self, config):
        overlay = CentralizedOverlay.build(config)
        overlay.start()
        overlay.run_until(2.0)
        snapshot = overlay.snapshot(online_only=False)
        assert snapshot.number_of_nodes() == config.num_nodes
