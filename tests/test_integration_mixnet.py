"""Integration: the overlay protocol over the *mixnet* link layer.

The evaluation assumes ideal services; this test swaps in the simulated
mix network (onion layers, relays, rendezvous pseudonyms) and checks
that the protocol still converges — i.e. nothing in the overlay layer
secretly depends on the ideal layer's shortcuts — and that the privacy
mechanics hold end to end during real protocol traffic.
"""

import networkx as nx
import pytest

from repro import Overlay, SystemConfig
from repro.graphs import fraction_disconnected
from repro.privlink import TrafficLog, make_mixnet_link_layer


@pytest.fixture(scope="module")
def mixnet_system():
    graph = nx.connected_watts_strogatz_graph(40, 4, 0.2, seed=3)
    config = SystemConfig(
        num_nodes=40,
        availability=0.8,
        mean_offline_time=10.0,
        cache_size=40,
        shuffle_length=8,
        target_degree=12,
        seed=11,
    )
    traffic = TrafficLog(enabled=True, max_records=500_000)
    overlay = Overlay.build(
        graph,
        config,
        with_churn=False,
        link_layer_factory=lambda sim, rng: make_mixnet_link_layer(
            sim, rng, num_relays=15, circuit_length=3, traffic=traffic
        ),
    )
    overlay.start()
    overlay.run_until(25.0)
    return overlay, traffic


class TestOverlayOverMixnet:
    def test_overlay_converges(self, mixnet_system):
        overlay, _ = mixnet_system
        snapshot = overlay.snapshot()
        assert fraction_disconnected(snapshot) == 0.0
        assert snapshot.number_of_edges() > overlay.trust_graph.number_of_edges()

    def test_pseudonym_links_formed(self, mixnet_system):
        overlay, _ = mixnet_system
        linked = sum(
            1 for node in overlay.nodes if node.links.pseudonym_degree() > 0
        )
        assert linked > len(overlay.nodes) // 2

    def test_no_direct_node_channels_ever(self, mixnet_system):
        """Thousands of protocol messages later, an external observer
        still has not seen one direct node-to-node channel."""
        overlay, traffic = mixnet_system
        assert len(traffic) > 1000
        for (src, dst), _count in traffic.channels().items():
            assert not (src.startswith("node:") and dst.startswith("node:")), (
                f"direct channel {src} -> {dst} observed"
            )

    def test_relays_forwarded_traffic(self, mixnet_system):
        overlay, _ = mixnet_system
        relays = overlay.link_layer.network.relays
        assert sum(relay.forwarded for relay in relays) > 1000
        # Load spreads across the relay pool (no single chokepoint).
        active = sum(1 for relay in relays if relay.forwarded > 0)
        assert active == len(relays)

    def test_rendezvous_endpoints_active_for_online_nodes(self, mixnet_system):
        overlay, _ = mixnet_system
        service = overlay.link_layer.pseudonym
        for node in overlay.nodes:
            if node.online and node.own is not None:
                assert service.is_active(node.own.address)
