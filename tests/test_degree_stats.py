"""Tests for degree-distribution statistics."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.metrics.degree_stats import (
    degree_gini,
    degree_share_entropy,
    degree_summary,
)


class TestGini:
    def test_regular_graph_zero(self):
        assert degree_gini(nx.cycle_graph(10)) == pytest.approx(0.0, abs=1e-9)

    def test_star_is_concentrated(self):
        assert degree_gini(nx.star_graph(20)) > 0.4

    def test_bounds(self):
        for graph in (nx.path_graph(10), nx.star_graph(8), nx.complete_graph(5)):
            value = degree_gini(graph)
            assert 0.0 <= value < 1.0

    def test_ordering_matches_intuition(self):
        regular = nx.cycle_graph(30)
        er = nx.gnm_random_graph(30, 60, seed=1)
        star = nx.star_graph(29)
        assert degree_gini(regular) < degree_gini(er) < degree_gini(star)

    def test_edgeless_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(5))
        assert degree_gini(graph) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            degree_gini(nx.Graph())


class TestEntropy:
    def test_regular_graph_is_one(self):
        assert degree_share_entropy(nx.cycle_graph(12)) == pytest.approx(1.0)

    def test_star_below_regular(self):
        assert degree_share_entropy(nx.star_graph(20)) < degree_share_entropy(
            nx.cycle_graph(21)
        )

    def test_edgeless_convention(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        assert degree_share_entropy(graph) == 1.0

    def test_overlay_sits_between_trust_and_er(self):
        """The library's core claim, in scalar form."""
        from repro import Overlay
        from repro.experiments import SMOKE, make_config, make_trust_graph
        from repro.graphs import erdos_renyi_gnm

        import numpy as np

        trust = make_trust_graph(SMOKE, f=0.5, seed=2)
        config = make_config(SMOKE, alpha=0.5, f=0.5, seed=2)
        overlay = Overlay.build(trust, config, with_churn=False)
        overlay.start()
        overlay.run_until(20.0)
        snapshot = overlay.snapshot()
        er = erdos_renyi_gnm(
            snapshot.number_of_nodes(),
            snapshot.number_of_edges(),
            rng=np.random.default_rng(0),
        )
        assert (
            degree_gini(er)
            < degree_gini(snapshot)
            < degree_gini(trust)
        )


class TestSummary:
    def test_fields(self):
        summary = degree_summary(nx.star_graph(5))
        assert set(summary) == {"mean", "std", "max", "gini", "entropy"}
        assert summary["max"] == 5.0
