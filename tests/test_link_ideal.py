"""Tests for the ideal link layer (anonymity + pseudonym services)."""

import numpy as np
import pytest

from repro.errors import PseudonymError
from repro.privlink import (
    Address,
    IdealPseudonymService,
    NodeDirectory,
    TrafficLog,
    make_ideal_link_layer,
)
from repro.sim import Simulator


class _FakeNode:
    def __init__(self):
        self.inbox = []
        self.online = True

    def receive(self, payload):
        self.inbox.append(payload)


def _layer(max_latency=0.05):
    sim = Simulator()
    layer = make_ideal_link_layer(
        sim, np.random.default_rng(0), max_latency=max_latency
    )
    return sim, layer


class TestAnonymityService:
    def test_delivers_to_online_node(self):
        sim, layer = _layer()
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "hello")
        sim.run_until(1.0)
        assert node.inbox == ["hello"]

    def test_drops_for_offline_node(self):
        sim, layer = _layer()
        node = _FakeNode()
        node.online = False
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "hello")
        sim.run_until(1.0)
        assert node.inbox == []

    def test_offline_at_delivery_time_matters(self):
        # Node is online at send time but goes offline before delivery.
        sim, layer = _layer(max_latency=0.5)
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "x")
        node.online = False
        sim.run_until(1.0)
        assert node.inbox == []

    def test_unregistered_destination_dropped(self):
        sim, layer = _layer()
        layer.send_to_node(0, 42, "x")
        sim.run_until(1.0)  # no exception

    def test_latency_bounded(self):
        sim, layer = _layer(max_latency=0.1)
        node = _FakeNode()
        received_at = []
        layer.register_node(1, lambda p: received_at.append(sim.now), lambda: True)
        layer.send_to_node(0, 1, "x")
        sim.run_until(1.0)
        assert len(received_at) == 1
        assert 0.0 <= received_at[0] <= 0.1


class TestPseudonymService:
    def test_endpoint_roundtrip(self):
        sim, layer = _layer()
        node = _FakeNode()
        layer.register_node(3, node.receive, lambda: node.online)
        address = layer.create_endpoint(3)
        layer.send_to_endpoint(0, address, "msg")
        sim.run_until(1.0)
        assert node.inbox == ["msg"]

    def test_closed_endpoint_drops(self):
        sim, layer = _layer()
        node = _FakeNode()
        layer.register_node(3, node.receive, lambda: node.online)
        address = layer.create_endpoint(3)
        layer.close_endpoint(address)
        layer.send_to_endpoint(0, address, "msg")
        sim.run_until(1.0)
        assert node.inbox == []

    def test_endpoint_survives_owner_offline(self):
        sim, layer = _layer()
        node = _FakeNode()
        layer.register_node(3, node.receive, lambda: node.online)
        address = layer.create_endpoint(3)
        node.online = False
        layer.send_to_endpoint(0, address, "lost")
        sim.run_until(1.0)
        assert node.inbox == []
        assert layer.pseudonym.is_active(address)
        node.online = True
        layer.send_to_endpoint(0, address, "found")
        sim.run_until(2.0)
        assert node.inbox == ["found"]

    def test_addresses_unique(self):
        _, layer = _layer()
        addresses = {layer.create_endpoint(0) for _ in range(50)}
        assert len(addresses) == 50

    def test_owner_of_oracle(self):
        sim = Simulator()
        directory = NodeDirectory()
        service = IdealPseudonymService(sim, directory, np.random.default_rng(0))
        address = service.create_endpoint(9)
        assert service.owner_of(address) == 9
        service.close_endpoint(address)
        with pytest.raises(PseudonymError):
            service.owner_of(address)

    def test_counters(self):
        sim, layer = _layer()
        node = _FakeNode()
        layer.register_node(3, node.receive, lambda: node.online)
        address = layer.create_endpoint(3)
        layer.send_to_endpoint(0, address, "a")
        sim.run_until(0.5)  # deliver "a" before the endpoint closes
        layer.close_endpoint(address)
        layer.send_to_endpoint(0, address, "b")
        sim.run_until(1.0)
        assert layer.pseudonym.sent_count == 2
        assert layer.pseudonym.delivered_count == 1
        assert layer.pseudonym.dropped_closed == 1


class TestMessageLoss:
    def test_lossless_by_default(self):
        sim, layer = _layer()
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for index in range(30):
            layer.send_to_node(0, 1, index)
        sim.run_until(1.0)
        assert len(node.inbox) == 30
        assert layer.anonymity.loss.dropped == 0

    def test_loss_rate_drops_messages(self):
        import numpy as np

        from repro.privlink import make_ideal_link_layer

        sim = Simulator()
        layer = make_ideal_link_layer(
            sim, np.random.default_rng(0), loss_rate=0.5
        )
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for index in range(200):
            layer.send_to_node(0, 1, index)
        sim.run_until(1.0)
        dropped = layer.anonymity.loss.dropped
        assert dropped > 0
        assert len(node.inbox) + dropped == 200
        assert 60 < dropped < 140  # ~50%

    def test_invalid_loss_rate(self):
        import numpy as np

        from repro.errors import LinkLayerError
        from repro.privlink import make_ideal_link_layer

        with pytest.raises(LinkLayerError):
            make_ideal_link_layer(
                Simulator(), np.random.default_rng(0), loss_rate=1.0
            )


class TestTrafficRecording:
    def test_traffic_logged_when_enabled(self):
        sim = Simulator()
        traffic = TrafficLog(enabled=True)
        layer = make_ideal_link_layer(
            sim, np.random.default_rng(0), traffic=traffic
        )
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "x")
        address = layer.create_endpoint(1)
        layer.send_to_endpoint(2, address, "y")
        sim.run_until(1.0)
        channels = traffic.channels()
        assert ("node:0", "node:1") in channels
        assert any(src == "node:2" for src, _ in channels)


class TestAddress:
    def test_ordering_and_str(self):
        a = Address(token=1, kind="ideal")
        b = Address(token=2, kind="ideal")
        assert a < b
        assert str(a) == "ideal:1"
