"""Engine-level tests: suppressions, discovery, selection, self-hosting."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import LintError, lint_paths, lint_project, lint_source, select_rules
from repro.lint.engine import PARSE_ERROR_CODE
from repro.lint.suppressions import parse_suppressions

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestSuppressions:
    def test_line_suppression_specific_rule(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def f():
                    return time.time()  # lint: disable=DET003
                """
            )
        )
        assert findings == []

    def test_line_suppression_leaves_other_lines(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def f():
                    a = time.time()  # lint: disable=DET003
                    return a + time.time()
                """
            )
        )
        assert [finding.rule for finding in findings] == ["DET003"]
        assert findings[0].line == 6

    def test_line_suppression_wrong_rule_does_not_apply(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def f():
                    return time.time()  # lint: disable=DET001
                """
            )
        )
        assert [finding.rule for finding in findings] == ["DET003"]

    def test_line_suppression_all_rules(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def f():
                    return time.time()  # lint: disable
                """
            )
        )
        assert findings == []

    def test_multiple_rules_in_one_comment(self):
        findings = lint_source(
            "import random  # lint: disable=DET002,DET003\n"
        )
        assert findings == []

    def test_file_wide_suppression(self):
        findings = lint_source(
            textwrap.dedent(
                """
                # lint: disable-file=DET003
                import time

                def f():
                    return time.time() + time.monotonic()
                """
            )
        )
        assert findings == []

    def test_case_insensitive_rule_codes(self):
        findings = lint_source(
            "import random  # lint: disable=det002\n"
        )
        assert findings == []

    def test_marker_inside_string_is_not_a_suppression(self):
        table = parse_suppressions(
            'text = "# lint: disable=DET003"\n'
        )
        assert not table

    def test_marker_inside_string_does_not_suppress_findings(self):
        """End-to-end: a string literal carrying the marker text on an
        offending line must not silence the finding."""
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def f():
                    return (time.time(), "# lint: disable=DET003")
                """
            )
        )
        assert [finding.rule for finding in findings] == ["DET003"]

    def test_multiline_statement_suppressed_as_a_whole(self):
        """A disable comment on any line of a multi-line statement
        covers the statement's full span."""
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def f():
                    value = max(
                        0.0,  # lint: disable=DET003
                        time.time(),
                    )
                    return value
                """
            )
        )
        assert findings == []

    def test_decorated_def_suppression_covers_the_header(self):
        """A disable on a decorator line applies to the whole header
        (decorators through the signature), not just that line."""
        findings = lint_source(
            textwrap.dedent(
                """
                import functools
                import time

                @functools.lru_cache(  # lint: disable=DET003
                    maxsize=int(time.time()) and 8,
                )
                def f():
                    return 1
                """
            )
        )
        assert findings == []

    def test_statement_suppression_does_not_blanket_compound_bodies(self):
        """A disable on an ``if`` header must not suppress the body."""
        findings = lint_source(
            textwrap.dedent(
                """
                import time

                def f(flag):
                    if flag:  # lint: disable=DET003
                        return time.time()
                    return 0.0
                """
            )
        )
        assert [finding.rule for finding in findings] == ["DET003"]

    def test_unrelated_comments_ignored(self):
        table = parse_suppressions("x = 1  # just a comment\n")
        assert not table


class TestDiscoveryAndSelection:
    def test_directory_walk_and_sorted_output(self, tmp_path):
        _write(tmp_path, "pkg/b.py", "import random\n")
        _write(tmp_path, "pkg/a.py", "import random\n")
        result = lint_paths([str(tmp_path)])
        assert result.checked_files == 2
        assert [Path(f.path).name for f in result.findings] == ["a.py", "b.py"]

    def test_hidden_directories_skipped(self, tmp_path):
        _write(tmp_path, ".hidden/bad.py", "import random\n")
        _write(tmp_path, "ok.py", "x = 1\n")
        result = lint_paths([str(tmp_path)])
        assert result.checked_files == 1
        assert result.ok

    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            lint_paths(["definitely/not/here"])

    def test_unknown_rule_raises(self):
        with pytest.raises(LintError):
            select_rules(["NOPE99"])

    def test_rule_filter_restricts_findings(self, tmp_path):
        _write(
            tmp_path,
            "both.py",
            """
            import random
            import time

            def f():
                return time.time()
            """,
        )
        result = lint_paths([str(tmp_path)], rules=["DET003"])
        assert [finding.rule for finding in result.findings] == ["DET003"]

    def test_syntax_error_reported_as_finding(self, tmp_path):
        _write(tmp_path, "broken.py", "def f(:\n")
        result = lint_paths([str(tmp_path)])
        assert [finding.rule for finding in result.findings] == [PARSE_ERROR_CODE]

    def test_counts_by_rule(self, tmp_path):
        _write(tmp_path, "two.py", "import random\nimport random\n")
        result = lint_paths([str(tmp_path)])
        assert result.counts_by_rule() == {"DET002": 2}


class TestSelfHosting:
    def test_src_repro_is_lint_clean(self):
        """The tree enforces its own determinism discipline.

        The whole-program pass must come out clean — per-file rules,
        the interprocedural DET003 waiver standing in for the deleted
        suppressions, and the FLOW/FORK/PAR families — with zero live
        suppression comments anywhere in the tree.
        """
        result = lint_project([str(REPO_SRC)])
        assert result.checked_files > 70
        offenders = "\n".join(f.format_text() for f in result.findings)
        assert result.ok, f"src/repro has lint findings:\n{offenders}"
        assert result.suppression_count == 0
        # The burned-down timing suppressions are now waived statically.
        assert len(result.waived_clock_findings) >= 14

    def test_injected_unseeded_rng_is_caught(self, tmp_path):
        """Acceptance check: a fresh DET001 violation names file and line."""
        bad = _write(
            tmp_path,
            "scratch.py",
            """
            import numpy as np

            def helper():
                rng = np.random.default_rng()
                return rng.random()
            """,
        )
        result = lint_paths([str(tmp_path)])
        assert not result.ok
        finding = result.findings[0]
        assert finding.rule == "DET001"
        assert finding.path == str(bad)
        assert finding.line == 5
