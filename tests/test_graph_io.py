"""Tests for edge-list persistence."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import load_edge_list, save_edge_list


class TestRoundTrip:
    def test_simple_graph(self, tmp_path):
        graph = nx.path_graph(5)
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == set(graph.edges())
        assert loaded.number_of_nodes() == 5

    def test_isolated_nodes_preserved(self, tmp_path):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.number_of_nodes() == 4
        assert loaded.number_of_edges() == 1

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_edge_list(nx.Graph(), path)
        loaded = load_edge_list(path)
        assert loaded.number_of_nodes() == 0


class TestMalformedInput:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_bad_node_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# nodes=abc\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_non_integer_endpoint(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# nodes=3\n0 x\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# nodes=3\n0 1 2\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_out_of_range_endpoint(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# nodes=3\n0 7\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("# nodes=3\n\n# comment\n0 1\n")
        loaded = load_edge_list(path)
        assert loaded.number_of_edges() == 1
