"""Edge-case tests for the mixnet rendezvous machinery."""

import numpy as np
import pytest

from repro.privlink import Address, TrafficLog
from repro.privlink.link import NodeDirectory
from repro.privlink.mixnet import MixNetwork
from repro.sim import Simulator


class _FakeNode:
    def __init__(self):
        self.inbox = []
        self.online = True

    def receive(self, payload):
        self.inbox.append(payload)


def _network(**kwargs):
    sim = Simulator()
    directory = NodeDirectory()
    network = MixNetwork(
        sim, directory, np.random.default_rng(0), num_relays=8, **kwargs
    )
    return sim, directory, network


class TestRendezvousEdgeCases:
    def test_wrong_relay_rendezvous_dropped(self):
        """A rendezvous payload arriving at the wrong relay is refused
        (a real relay could not decrypt it)."""
        sim, directory, network = _network()
        node = _FakeNode()
        directory.register(1, node.receive, lambda: node.online)
        address = network.open_rendezvous(1)
        right_relay_id = network.rendezvous_relay_of(address)
        wrong_relay = next(
            relay for relay in network.relays if relay.relay_id != right_relay_id
        )
        before = network.dropped_closed
        # Craft an onion that terminates at the wrong relay.
        onion = network.wrap_for_rendezvous([wrong_relay], address, "lost")
        network.inject("node:0", wrong_relay, onion)
        sim.run_until(1.0)
        assert node.inbox == []
        assert network.dropped_closed == before + 1

    def test_closed_rendezvous_is_inactive(self):
        _, _, network = _network()
        address = network.open_rendezvous(2)
        assert network.is_rendezvous_active(address)
        network.close_rendezvous(address)
        assert not network.is_rendezvous_active(address)

    def test_rendezvous_relay_of_unknown_raises(self):
        from repro.errors import PseudonymError

        _, _, network = _network()
        with pytest.raises(PseudonymError):
            network.rendezvous_relay_of(Address(999, "rendezvous"))

    def test_return_path_recorded_in_traffic(self):
        traffic = TrafficLog(enabled=True)
        sim, directory, network = _network(traffic=traffic)
        node = _FakeNode()
        directory.register(3, node.receive, lambda: node.online)
        address = network.open_rendezvous(3)
        relay_id = network.rendezvous_relay_of(address)
        relay = network.relays[relay_id]
        onion = network.wrap_for_rendezvous([relay], address, "ping")
        network.inject("node:9", relay, onion)
        sim.run_until(2.0)
        assert node.inbox == ["ping"]
        # The observer sees the sender reach a relay and the owner hear
        # from a relay — never a direct channel.
        channels = traffic.channels()
        assert ("node:9", relay.name) in channels
        assert any(dst == "node:3" for _, dst in channels)
        assert ("node:9", "node:3") not in channels

    def test_rendezvous_owner_offline_drops(self):
        sim, directory, network = _network()
        node = _FakeNode()
        node.online = False
        directory.register(4, node.receive, lambda: node.online)
        address = network.open_rendezvous(4)
        relay = network.relays[network.rendezvous_relay_of(address)]
        onion = network.wrap_for_rendezvous([relay], address, "x")
        network.inject("node:0", relay, onion)
        sim.run_until(2.0)
        assert node.inbox == []
        assert network.dropped_offline == 1
