"""Tests for runtime trust-graph growth (node and edge additions)."""

import pytest

from repro import Overlay
from repro.errors import ProtocolError
from repro.graphs import fraction_disconnected


class TestAddTrustEdge:
    def test_edge_added_both_sides(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        # 11 and 25 are not friends in the fixture.
        assert not small_trust_graph.has_edge(11, 25)
        overlay.add_trust_edge(11, 25)
        assert overlay.trust_graph.has_edge(11, 25)
        assert 25 in overlay.nodes[11].links.trusted
        assert 11 in overlay.nodes[25].links.trusted

    def test_self_edge_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ProtocolError):
            overlay.add_trust_edge(3, 3)

    def test_unknown_node_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ProtocolError):
            overlay.add_trust_edge(0, 999)

    def test_new_edge_used_by_protocol(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(5.0)
        overlay.add_trust_edge(11, 25)
        overlay.run_until(15.0)
        snapshot = overlay.snapshot()
        assert snapshot.has_edge(11, 25)


class TestAddNode:
    def test_new_node_joins_and_integrates(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(10.0)
        new_id = overlay.add_node([0, 5])
        assert new_id == small_config.num_nodes
        assert overlay.trust_graph.has_edge(new_id, 0)
        assert overlay.nodes[0].links.trusted >= {new_id}
        assert overlay.nodes[new_id].online
        # After some gossip the newcomer has pseudonym links and appears
        # connected in the snapshot.
        overlay.run_until(30.0)
        snapshot = overlay.snapshot()
        assert new_id in snapshot
        assert snapshot.degree(new_id) >= 2
        assert fraction_disconnected(snapshot) == 0.0

    def test_new_node_own_pseudonym_registered(
        self, small_trust_graph, small_config
    ):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        new_id = overlay.add_node([1])
        own = overlay.nodes[new_id].own
        assert own is not None
        assert overlay.owner_of_value(own.value) == new_id

    def test_add_node_under_churn(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        overlay.start()
        overlay.run_until(5.0)
        new_id = overlay.add_node([0])
        assert overlay.churn.num_nodes == small_config.num_nodes + 1
        assert overlay.churn.is_online(new_id)
        # The newcomer churns like everyone else: eventually offline.
        overlay.run_until(120.0)
        assert overlay.churn.transitions > 0

    def test_needs_inviter(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ProtocolError):
            overlay.add_node([])

    def test_unknown_inviter_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ProtocolError):
            overlay.add_node([999])

    def test_multiple_additions(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        first = overlay.add_node([0])
        second = overlay.add_node([first])
        assert second == first + 1
        assert overlay.trust_graph.has_edge(second, first)
        overlay.run_until(20.0)
        assert fraction_disconnected(overlay.snapshot()) == 0.0
