"""Tests for the structural robustness and convergence analyses."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis import (
    articulation_ratio,
    edge_connectivity_sample,
    k_core_profile,
    measure_convergence,
    targeted_failure_curve,
)
from repro.errors import ExperimentError, GraphError


class TestTargetedFailure:
    def test_star_collapses_under_degree_attack(self):
        star = nx.star_graph(20)  # hub 0 plus 20 leaves
        points = targeted_failure_curve(star, fractions=(0.0, 0.05))
        assert points[0].disconnected == 0.0
        # Removing ~1 node (the hub) shatters the graph completely.
        assert points[1].disconnected > 0.9

    def test_complete_graph_survives(self):
        graph = nx.complete_graph(20)
        points = targeted_failure_curve(graph, fractions=(0.0, 0.3))
        assert all(point.disconnected == 0.0 for point in points)

    def test_random_strategy(self, rng):
        graph = nx.erdos_renyi_graph(60, 0.15, seed=1)
        points = targeted_failure_curve(
            graph, fractions=(0.0, 0.2), strategy="random", rng=rng
        )
        assert points[1].removed_count == 12

    def test_largest_component_fraction(self):
        graph = nx.path_graph(10)
        points = targeted_failure_curve(graph, fractions=(0.0,))
        assert points[0].largest_component_fraction == pytest.approx(1.0)

    def test_curve_monotone_removal(self):
        graph = nx.erdos_renyi_graph(60, 0.1, seed=2)
        points = targeted_failure_curve(graph, fractions=(0.0, 0.1, 0.2))
        counts = [point.removed_count for point in points]
        assert counts == sorted(counts)

    def test_invalid_inputs(self, rng):
        graph = nx.path_graph(5)
        with pytest.raises(GraphError):
            targeted_failure_curve(graph, strategy="clever")
        with pytest.raises(GraphError):
            targeted_failure_curve(graph, fractions=(0.3, 0.1))
        with pytest.raises(GraphError):
            targeted_failure_curve(graph, fractions=(0.5, 1.0))
        with pytest.raises(GraphError):
            targeted_failure_curve(nx.Graph(), fractions=(0.0,))


class TestArticulationRatio:
    def test_path_graph_mostly_articulation(self):
        # In P5, the 3 middle nodes are articulation points.
        assert articulation_ratio(nx.path_graph(5)) == pytest.approx(0.6)

    def test_cycle_has_none(self):
        assert articulation_ratio(nx.cycle_graph(6)) == 0.0

    def test_single_node(self):
        graph = nx.Graph()
        graph.add_node(0)
        assert articulation_ratio(graph) == 0.0

    def test_disconnected_components_handled(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2)])  # 1 is articulation
        graph.add_edges_from([(10, 11), (11, 12), (12, 10)])  # cycle: none
        assert articulation_ratio(graph) == pytest.approx(1 / 6)

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            articulation_ratio(nx.Graph())


class TestKCoreProfile:
    def test_complete_graph_deep_core(self):
        profile = k_core_profile(nx.complete_graph(6), max_k=5)
        assert profile[5] == 1.0

    def test_star_shallow(self):
        profile = k_core_profile(nx.star_graph(10), max_k=3)
        assert profile[1] == 1.0
        assert profile[2] == 0.0

    def test_monotone_in_k(self):
        graph = nx.erdos_renyi_graph(50, 0.2, seed=3)
        profile = k_core_profile(graph, max_k=8)
        values = [profile[k] for k in range(1, 9)]
        assert values == sorted(values, reverse=True)

    def test_invalid(self):
        with pytest.raises(GraphError):
            k_core_profile(nx.path_graph(3), max_k=0)
        with pytest.raises(GraphError):
            k_core_profile(nx.Graph())


class TestEdgeConnectivity:
    def test_cycle_is_two(self, rng):
        mean, minimum = edge_connectivity_sample(nx.cycle_graph(10), pairs=5, rng=rng)
        assert mean == 2.0
        assert minimum == 2

    def test_complete_graph(self, rng):
        mean, minimum = edge_connectivity_sample(
            nx.complete_graph(6), pairs=5, rng=rng
        )
        assert minimum == 5

    def test_invalid(self, rng):
        with pytest.raises(GraphError):
            edge_connectivity_sample(nx.path_graph(5), pairs=0, rng=rng)
        single = nx.Graph()
        single.add_node(0)
        with pytest.raises(GraphError):
            edge_connectivity_sample(single, rng=rng)


class TestMeasureConvergence:
    def test_converges_on_small_system(self, small_trust_graph, small_config):
        summary = measure_convergence(
            small_trust_graph,
            small_config,
            seeds=(1, 2),
            threshold=0.2,
            horizon=40.0,
        )
        assert summary.runs == 2
        assert summary.failures < 2
        assert summary.mean is not None
        assert summary.mean < 40.0
        assert "converged" in str(summary)

    def test_impossible_threshold_counts_failures(
        self, small_trust_graph, small_config
    ):
        summary = measure_convergence(
            small_trust_graph,
            small_config,
            seeds=(3,),
            threshold=0.0001,
            horizon=3.0,
        )
        # Tiny threshold + tiny horizon: likely failure; either way the
        # accounting holds.
        assert summary.runs == 1
        assert summary.failures + len(summary.times) == 1

    def test_validation(self, small_trust_graph, small_config):
        with pytest.raises(ExperimentError):
            measure_convergence(small_trust_graph, small_config, seeds=())
        with pytest.raises(ExperimentError):
            measure_convergence(
                small_trust_graph, small_config, seeds=(1,), threshold=1.5
            )
