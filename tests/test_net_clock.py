"""Clock contract: SimClock and WallClock behind one Scheduler facade.

This file is also the parity pin for the ``net-clock`` registry entry:
WallClock must keep the exact scheduling surface of SimClock (schedule,
schedule_after, post, post_after), or the same protocol object behaves
differently under simulation and live networking.
"""

import asyncio

import pytest

from repro.errors import SchedulerError
from repro.net.clock import Scheduler, WallClock
from repro.sim import Clock, SimClock, Simulator


class TestSimClock:
    def test_simulator_is_a_clock(self):
        assert isinstance(Simulator(), Clock)

    def test_simclock_delegates_now_and_run(self):
        sim = Simulator()
        clock = SimClock(sim)
        fired = []
        clock.schedule(2.0, fired.append, "a")
        clock.schedule_after(1.0, fired.append, "b")
        clock.post(3.0, fired.append, "c")
        clock.post_after(0.5, fired.append, "d")
        clock.run_until(5.0)
        assert fired == ["d", "b", "a", "c"]
        assert clock.now == 5.0
        assert clock.sim is sim

    def test_simclock_cancel(self):
        sim = Simulator()
        clock = SimClock(sim)
        fired = []
        handle = clock.schedule(1.0, fired.append, "x")
        handle.cancel()
        assert handle.cancelled
        clock.run_until(2.0)
        assert fired == []

    def test_past_schedule_rejected(self):
        sim = Simulator()
        clock = SimClock(sim)
        clock.run_until(5.0)
        with pytest.raises(SchedulerError):
            clock.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        clock = SimClock(Simulator())
        with pytest.raises(SchedulerError):
            clock.schedule_after(-1.0, lambda: None)


class TestWallClock:
    def test_now_advances_in_periods(self):
        async def run():
            clock = WallClock(seconds_per_period=0.01)
            first = clock.now
            await asyncio.sleep(0.05)
            return first, clock.now

        first, later = asyncio.run(run())
        assert first >= 0.0
        # 0.05 wall seconds = 5 periods at 0.01 s/period.
        assert later - first > 2.0

    def test_schedule_after_fires_with_args(self):
        async def run():
            clock = WallClock(seconds_per_period=0.005)
            fired = []
            clock.schedule_after(1.0, fired.append, "x")
            clock.post_after(1.0, fired.append, "y")
            await asyncio.sleep(0.05)
            return fired

        assert sorted(asyncio.run(run())) == ["x", "y"]

    def test_cancel_prevents_firing(self):
        async def run():
            clock = WallClock(seconds_per_period=0.005)
            fired = []
            handle = clock.schedule_after(1.0, fired.append, "x")
            handle.cancel()
            assert handle.cancelled
            await asyncio.sleep(0.03)
            return fired

        assert asyncio.run(run()) == []

    def test_past_times_clamp_to_immediate(self):
        # A wall clock cannot refuse the past: scheduling behind now
        # fires as soon as possible instead of raising.
        async def run():
            clock = WallClock(seconds_per_period=0.005)
            await asyncio.sleep(0.02)
            fired = []
            clock.schedule(0.0, fired.append, "late")
            await asyncio.sleep(0.02)
            return fired

        assert asyncio.run(run()) == ["late"]

    def test_negative_delay_rejected(self):
        async def run():
            clock = WallClock(seconds_per_period=0.005)
            with pytest.raises(SchedulerError):
                clock.schedule_after(-0.5, lambda: None)

        asyncio.run(run())

    def test_bad_seconds_per_period(self):
        with pytest.raises(SchedulerError):
            WallClock(seconds_per_period=0.0)


class TestScheduler:
    def test_wraps_simulator(self):
        sim = Simulator()
        scheduler = Scheduler(sim)
        assert not scheduler.wall
        fired = []
        scheduler.schedule_after(1.0, fired.append, 1)
        scheduler.run_until(2.0)
        assert fired == [1]
        assert scheduler.now == 2.0

    def test_wraps_simclock(self):
        scheduler = Scheduler(SimClock(Simulator()))
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until(1.5)
        assert scheduler.now == 1.5

    def test_run_until_refused_on_wall(self):
        async def run():
            scheduler = Scheduler(WallClock(seconds_per_period=0.01))
            assert scheduler.wall
            with pytest.raises(SchedulerError):
                scheduler.run_until(10.0)

        asyncio.run(run())

    def test_run_for_on_wall_sleeps(self):
        async def run():
            scheduler = Scheduler(WallClock(seconds_per_period=0.005))
            fired = []
            scheduler.schedule_after(2.0, fired.append, "tick")
            await scheduler.run_for(5.0)
            return fired

        assert asyncio.run(run()) == ["tick"]

    def test_run_for_on_sim_advances(self):
        async def run():
            scheduler = Scheduler(Simulator())
            fired = []
            scheduler.schedule_after(2.0, fired.append, "tick")
            await scheduler.run_for(5.0)
            return fired, scheduler.now

        fired, now = asyncio.run(run())
        assert fired == ["tick"]
        assert now == 5.0

    def test_shared_surface_matches(self):
        # The parity contract, asserted structurally: every scheduling
        # method exists on both concrete clocks with matching names.
        for name in ("schedule", "schedule_after", "post", "post_after"):
            assert callable(getattr(SimClock, name))
            assert callable(getattr(WallClock, name))
