"""Tests for seed replication."""

import dataclasses

import pytest

from repro.errors import ExperimentError
from repro.experiments.replication import (
    ReplicatedValue,
    replicate,
    replicate_records,
)


@dataclasses.dataclass(frozen=True)
class _Point:
    alpha: float
    disconnected: float
    label: str = "x"


class TestReplicate:
    def test_aggregates(self):
        value = replicate(lambda seed: float(seed), seeds=(1, 2, 3))
        assert value.mean == pytest.approx(2.0)
        assert value.count == 3
        assert value.std == pytest.approx(0.8165, abs=1e-3)

    def test_stderr(self):
        value = ReplicatedValue(mean=1.0, std=2.0, count=4)
        assert value.stderr == pytest.approx(1.0)
        assert ReplicatedValue(1.0, 2.0, 1).stderr == 0.0

    def test_str(self):
        assert "±" in str(ReplicatedValue(1.0, 0.5, 3))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            replicate(lambda seed: 1.0, seeds=())

    def test_non_numeric_rejected(self):
        with pytest.raises(ExperimentError):
            replicate(lambda seed: "oops", seeds=(1,))


class TestReplicateRecords:
    def test_aggregates_by_key(self):
        def experiment(seed):
            return [
                _Point(alpha=0.25, disconnected=0.1 * seed),
                _Point(alpha=0.5, disconnected=0.01 * seed),
            ]

        result = replicate_records(experiment, seeds=(1, 2, 3), key_field="alpha")
        assert set(result) == {0.25, 0.5}
        low = result[0.25]["disconnected"]
        assert low.mean == pytest.approx(0.2)
        assert low.count == 3

    def test_non_numeric_fields_skipped(self):
        result = replicate_records(
            lambda seed: [_Point(0.5, 0.1)], seeds=(1,), key_field="alpha"
        )
        assert "label" not in result[0.5]

    def test_non_dataclass_rejected(self):
        with pytest.raises(ExperimentError):
            replicate_records(lambda seed: [{"a": 1}], seeds=(1,), key_field="a")

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            replicate_records(lambda seed: [], seeds=(), key_field="alpha")

    def test_with_real_sweep(self):
        """Replicated smoke-scale sweep: std fields are populated."""
        from repro.experiments import SMOKE, availability_sweep

        def experiment(seed):
            return availability_sweep(
                SMOKE, f=0.5, seed=seed, alphas=(0.5,)
            ).points

        result = replicate_records(experiment, seeds=(1, 2), key_field="alpha")
        value = result[0.5]["overlay_disconnected"]
        assert value.count == 2
        assert 0.0 <= value.mean <= 1.0
