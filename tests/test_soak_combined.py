"""Soak test: every extension active at once, under churn.

Adaptive lifetimes + runtime growth + anti-entropy broadcast + an
observer coalition, all on one system, run for 120 shuffling periods.
Checks that the combined feature set maintains the protocol's global
invariants — the cross-feature interactions no unit test covers.
"""

import pytest

from repro import Overlay
from repro.attacks import ObserverCoalition, estimate_overlay_size
from repro.dissemination import AntiEntropyBroadcast
from repro.experiments import SMOKE, make_config, make_trust_graph
from repro.graphs import fraction_disconnected


@pytest.fixture(scope="module")
def soaked_system():
    trust = make_trust_graph(SMOKE, f=0.5, seed=8)
    config = make_config(SMOKE, alpha=0.5, f=0.5, seed=8).replace(
        adaptive_lifetime=True
    )
    overlay = Overlay.build(trust, config)
    coalition = ObserverCoalition(overlay, [0, 1])
    coalition.install()
    protocol = AntiEntropyBroadcast(overlay, period=2.0)
    protocol.install()
    overlay.start()
    overlay.run_until(20.0)

    # Mid-run growth and a broadcast.
    newcomer = overlay.add_node([0, 2])
    online = overlay.online_ids()
    record = protocol.broadcast(online[0], payload="soak")
    overlay.run_until(120.0)
    return overlay, coalition, protocol, newcomer, record


class TestSoak:
    def test_overlay_healthy(self, soaked_system):
        overlay, *_ = soaked_system
        assert fraction_disconnected(overlay.snapshot()) < 0.15

    def test_invariants_hold_everywhere(self, soaked_system):
        overlay, *_ = soaked_system
        now = overlay.sim.now
        for node in overlay.nodes:
            assert len(node.cache) <= node.cache.capacity
            if node.online:
                assert node.own is not None
                assert node.own.expires_at >= now
            for pseudonym in node.links.pseudonym_links():
                owner = overlay.owner_of_value(pseudonym.value)
                assert owner is not None and owner != node.node_id

    def test_newcomer_integrated(self, soaked_system):
        overlay, _, _, newcomer, _ = soaked_system
        node = overlay.nodes[newcomer]
        assert node.counters.pseudonyms_created >= 1
        # It participates: messages flowed through it at some point.
        assert node.counters.messages_sent > 0

    def test_broadcast_spread_widely(self, soaked_system):
        overlay, _, protocol, _, record = soaked_system
        assert record.deliveries() > 0.8 * len(overlay.nodes)

    def test_adaptive_lifetimes_learned(self, soaked_system):
        overlay, *_ = soaked_system
        from repro.core import AdaptiveLifetime

        observed = [
            node._lifetime_policy.observations
            for node in overlay.nodes
            if isinstance(node._lifetime_policy, AdaptiveLifetime)
        ]
        assert sum(1 for count in observed if count > 0) > len(observed) // 2

    def test_coalition_estimate_sane(self, soaked_system):
        overlay, coalition, *_ = soaked_system
        estimate = estimate_overlay_size(overlay, coalition, window=60.0)
        assert estimate.live_value_estimate > 0
        assert estimate.relative_error < 0.8
