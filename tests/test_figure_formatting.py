"""Unit tests for figure result dataclasses and their table rendering
(no simulations — synthetic data only)."""

import math

import pytest

from repro.experiments.figures import (
    AvailabilityPoint,
    AvailabilitySweep,
    ConvergenceResult,
    DegreeDistributions,
    LifetimeSweep,
    MessageOverheadResult,
    ReplacementResult,
)
from repro.metrics import NodeOverhead
from repro.metrics.series import TimeSeries


def _point(alpha, trust=0.5, overlay=0.1, random=0.05):
    return AvailabilityPoint(
        alpha=alpha,
        trust_disconnected=trust,
        overlay_disconnected=overlay,
        random_disconnected=random,
        trust_path_length=10.0,
        overlay_path_length=4.0,
        random_path_length=3.5,
    )


class TestAvailabilitySweepFormatting:
    def test_disconnected_table(self):
        sweep = AvailabilitySweep(
            f=0.5, scale_name="test", points=[_point(0.25), _point(0.5)], trust_edges=100
        )
        table = sweep.format_table("disconnected")
        assert "Figure 3" in table
        assert "0.2500" in table and "0.5000" in table

    def test_path_table(self):
        sweep = AvailabilitySweep(
            f=1.0, scale_name="test", points=[_point(0.5)], trust_edges=100
        )
        table = sweep.format_table("path")
        assert "Figure 4" in table
        assert "10.0000" in table


class TestDegreeDistributionsFormatting:
    def test_bucketing(self):
        dist = DegreeDistributions(
            f=0.5,
            alpha=0.5,
            trust_histogram={3: 10, 7: 5},
            overlay_histogram={25: 8, 31: 2},
            random_histogram={24: 9},
        )
        table = dist.format_table(bucket=10)
        assert "0-9" in table
        assert "20-29" in table
        assert "30-39" in table

    def test_mean_degrees(self):
        dist = DegreeDistributions(
            f=0.5,
            alpha=0.5,
            trust_histogram={2: 2},  # mean 2
            overlay_histogram={10: 1, 20: 1},  # mean 15
            random_histogram={},
        )
        trust_mean, overlay_mean, random_mean = dist.mean_degrees()
        assert trust_mean == pytest.approx(2.0)
        assert overlay_mean == pytest.approx(15.0)
        assert random_mean == 0.0


class TestMessageOverheadFormatting:
    def test_row_sampling(self):
        overheads = [
            NodeOverhead(
                node_id=index,
                trust_degree=100 - index,
                messages_per_period=2.0,
                max_out_degree=30,
            )
            for index in range(100)
        ]
        result = MessageOverheadResult(
            f=0.5, alpha=0.5, overheads=overheads, system_mean=2.0
        )
        table = result.format_table(max_rows=10)
        assert "Figure 6" in table
        # Sampled down to roughly max_rows rows (+ header lines).
        assert len(table.splitlines()) < 20


class TestLifetimeSweepFormatting:
    def test_infinite_ratio_label(self):
        sweep = LifetimeSweep(
            f=0.5,
            scale_name="test",
            alphas=[0.25, 0.5],
            trust_curve=[0.5, 0.2],
            random_curve=[0.05, 0.01],
            overlay_curves={1.0: [0.3, 0.1], math.inf: [0.05, 0.0]},
        )
        table = sweep.format_table()
        assert "r=Infinite" in table
        assert "r=1" in table


class TestConvergenceFormatting:
    def test_table_includes_convergence_times(self):
        trust = TimeSeries()
        overlay = TimeSeries()
        for index in range(10):
            trust.append(float(index), 0.5)
            overlay.append(float(index), max(0.0, 0.5 - 0.1 * index))
        result = ConvergenceResult(
            alpha=0.25,
            trust_series=trust,
            overlay_series={3.0: overlay},
            convergence_times={3.0: 5.0},
        )
        table = result.format_table()
        assert "Figure 8" in table
        assert "r=3 -> 5 sp" in table

    def test_never_converged_label(self):
        series = TimeSeries()
        series.append(0.0, 0.9)
        result = ConvergenceResult(
            alpha=0.25,
            trust_series=series,
            overlay_series={3.0: series},
            convergence_times={3.0: None},
        )
        assert "never" in result.format_table()


class TestReplacementFormatting:
    def test_stable_rates_in_title(self):
        series = {}
        for ratio in (3.0, math.inf):
            ts = TimeSeries()
            for index in range(8):
                ts.append(float(index), 1.0 if ratio == 3.0 else 0.0)
            series[ratio] = ts
        result = ReplacementResult(
            alpha=0.25,
            series=series,
            stable_rates={3.0: 1.0, math.inf: 0.0},
        )
        table = result.format_table()
        assert "Figure 9" in table
        assert "r=Infinite: 0.00/sp" in table
