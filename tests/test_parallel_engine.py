"""Tests for the fault-tolerant parallel task engine."""

import os
import time

import pytest

from repro.errors import ParallelError
from repro.parallel import (
    PoolOptions,
    TaskSpec,
    derive_task_seed,
    fork_available,
    outcome_digest,
    parallel_map,
    run_tasks,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _square(payload):
    return payload * payload


def _specs(payloads):
    return [
        TaskSpec(index=i, key=f"task-{i}", payload=payload)
        for i, payload in enumerate(payloads)
    ]


def _always_raises(payload):
    raise ValueError(f"bad payload {payload}")


class TestTaskModel:
    def test_derive_task_seed_deterministic(self):
        assert derive_task_seed(1, "point-a") == derive_task_seed(1, "point-a")
        assert derive_task_seed(1, "point-a") != derive_task_seed(1, "point-b")
        assert derive_task_seed(1, "point-a") != derive_task_seed(2, "point-a")

    def test_outcome_digest_stable(self):
        a = {"x": 1.5, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1.5}
        assert outcome_digest(a) == outcome_digest(b)
        assert outcome_digest(a) != outcome_digest({"x": 1.5, "y": [2, 1]})


class TestSerialPath:
    def test_ordered_results(self):
        records = run_tasks(_square, _specs([3, 1, 4, 1, 5]))
        assert [r.spec.index for r in records] == [0, 1, 2, 3, 4]
        assert [r.outcome for r in records] == [9, 1, 16, 1, 25]
        assert all(r.ok and r.status == "done" and r.attempts == 1 for r in records)

    def test_no_clock_means_no_durations(self):
        records = run_tasks(_square, _specs([2]))
        assert records[0].duration_s is None

    def test_injected_clock_measures_durations(self):
        records = run_tasks(
            _square, _specs([2]), PoolOptions(clock=time.perf_counter)
        )
        assert records[0].duration_s is not None
        assert records[0].duration_s >= 0.0

    def test_retry_to_bound_yields_structured_failure(self):
        sleeps = []
        records = run_tasks(
            _always_raises,
            _specs([7]),
            PoolOptions(max_attempts=3, backoff_base=0.01, sleep=sleeps.append),
        )
        (record,) = records
        assert not record.ok
        assert record.status == "failed"
        assert record.attempts == 3
        assert record.failure is not None
        assert record.failure.kind == "exception"
        assert record.failure.exception_type == "ValueError"
        assert "bad payload 7" in record.failure.message
        assert "ValueError" in (record.failure.traceback or "")
        # Exponential backoff between the three attempts.
        assert sleeps == [0.01, 0.02]

    def test_flaky_task_recovers_within_bound(self, tmp_path):
        marker = tmp_path / "attempted"

        def flaky(payload):
            if not marker.exists():
                marker.write_text("1")
                raise RuntimeError("first attempt fails")
            return payload + 1

        records = run_tasks(
            flaky,
            _specs([10]),
            PoolOptions(max_attempts=2, backoff_base=0.0, sleep=lambda _: None),
        )
        (record,) = records
        assert record.ok
        assert record.outcome == 11
        assert record.attempts == 2

    def test_on_record_hook_fires_per_task(self):
        seen = []
        run_tasks(_square, _specs([1, 2, 3]), on_record=seen.append)
        assert sorted(r.spec.index for r in seen) == [0, 1, 2]

    def test_duplicate_indices_rejected(self):
        specs = [
            TaskSpec(index=0, key="a", payload=1),
            TaskSpec(index=0, key="b", payload=2),
        ]
        with pytest.raises(ParallelError):
            run_tasks(_square, specs)

    def test_empty_specs(self):
        assert run_tasks(_square, []) == []


class TestPoolOptions:
    def test_bad_workers(self):
        with pytest.raises(ParallelError):
            PoolOptions(workers=0).validate()

    def test_bad_attempts(self):
        with pytest.raises(ParallelError):
            PoolOptions(max_attempts=0).validate()

    def test_timeout_requires_clock(self):
        with pytest.raises(ParallelError):
            PoolOptions(timeout=1.0).validate()
        PoolOptions(timeout=1.0, clock=time.perf_counter).validate()

    def test_negative_timeout(self):
        with pytest.raises(ParallelError):
            PoolOptions(timeout=-1.0, clock=time.perf_counter).validate()


@needs_fork
class TestParallelPool:
    def test_ordered_results_across_workers(self):
        records = run_tasks(
            _square, _specs(list(range(10))), PoolOptions(workers=3)
        )
        assert [r.outcome for r in records] == [n * n for n in range(10)]
        assert all(r.ok for r in records)

    def test_matches_serial_records(self):
        payloads = [5, 3, 8, 1]
        serial = run_tasks(_square, _specs(payloads))
        parallel = run_tasks(_square, _specs(payloads), PoolOptions(workers=4))
        assert [(r.spec, r.outcome, r.digest) for r in serial] == [
            (r.spec, r.outcome, r.digest) for r in parallel
        ]

    def test_worker_exception_retried_to_bound(self):
        records = run_tasks(
            _always_raises,
            _specs([1, 2]),
            PoolOptions(workers=2, max_attempts=2, sleep=lambda _: None),
        )
        assert all(not r.ok for r in records)
        assert all(r.attempts == 2 for r in records)
        assert all(r.failure.kind == "exception" for r in records)

    def test_crash_isolation_and_retry(self, tmp_path):
        """A worker dying via os._exit fails only its own task, and the
        replacement worker completes the retry."""
        marker = tmp_path / "crashed-once"

        def crash_once(payload):
            if payload == "boom" and not marker.exists():
                marker.write_text("1")
                os._exit(13)
            return f"ok:{payload}"

        records = run_tasks(
            crash_once,
            _specs(["a", "boom", "b"]),
            PoolOptions(workers=2, max_attempts=2, sleep=lambda _: None),
        )
        assert [r.outcome for r in records] == ["ok:a", "ok:boom", "ok:b"]
        crashed = records[1]
        assert crashed.attempts == 2

    def test_crash_exhausting_attempts_is_structured(self):
        def always_crash(payload):
            os._exit(7)

        records = run_tasks(
            always_crash,
            _specs(["x"]),
            PoolOptions(workers=2, max_attempts=2, sleep=lambda _: None),
        )
        (record,) = records
        assert not record.ok
        assert record.failure.kind == "crash"
        assert "exit code" in record.failure.message

    def test_timeout_kills_worker_and_retries(self, tmp_path):
        marker = tmp_path / "timed-out-once"

        def slow_once(payload):
            if not marker.exists():
                marker.write_text("1")
                time.sleep(60.0)
            return payload * 2

        records = run_tasks(
            slow_once,
            _specs([21]),
            PoolOptions(
                workers=2,
                timeout=0.5,
                max_attempts=2,
                clock=time.perf_counter,
                sleep=lambda _: None,
            ),
        )
        (record,) = records
        assert record.ok
        assert record.outcome == 42
        assert record.attempts == 2

    def test_timeout_exhausting_attempts_is_structured(self):
        def always_slow(payload):
            time.sleep(60.0)

        records = run_tasks(
            always_slow,
            _specs([1]),
            PoolOptions(
                workers=1 + 1,  # force the multiprocess path
                timeout=0.3,
                max_attempts=2,
                clock=time.perf_counter,
                sleep=lambda _: None,
            ),
        )
        (record,) = records
        assert not record.ok
        assert record.failure.kind == "timeout"
        assert record.attempts == 2

    def test_unpicklable_outcome_reported_not_fatal(self):
        def returns_lambda(payload):
            return lambda: payload

        records = run_tasks(
            returns_lambda,
            _specs([1]),
            PoolOptions(workers=2, max_attempts=1),
        )
        (record,) = records
        assert not record.ok
        assert "picklable" in record.failure.message


class TestParallelMap:
    def test_serial_map(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    @needs_fork
    def test_parallel_map_ordered(self):
        assert parallel_map(_square, [4, 3, 2, 1], workers=3) == [16, 9, 4, 1]

    def test_failure_raises_with_details(self):
        with pytest.raises(ParallelError, match="item 0"):
            parallel_map(_always_raises, [1], workers=1)
