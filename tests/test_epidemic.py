"""Tests for epidemic push gossip."""

import pytest

from repro import Overlay
from repro.dissemination import EpidemicBroadcast, coverage_report
from repro.errors import DisseminationError


def _converged_overlay(graph, config, warmup=15.0):
    overlay = Overlay.build(graph, config, with_churn=False)
    overlay.start()
    overlay.run_until(warmup)
    return overlay


class TestEpidemicBroadcast:
    def test_high_fanout_reaches_most_nodes(self, small_trust_graph, small_config):
        overlay = _converged_overlay(small_trust_graph, small_config)
        epidemic = EpidemicBroadcast(overlay, fanout=6, ttl=12)
        epidemic.install()
        record = epidemic.broadcast(0, payload="x")
        overlay.run_until(overlay.sim.now + 5.0)
        report = coverage_report(record, overlay.online_ids())
        assert report.coverage >= 0.85

    def test_fanout_one_reaches_few(self, small_trust_graph, small_config):
        overlay = _converged_overlay(small_trust_graph, small_config)
        epidemic = EpidemicBroadcast(overlay, fanout=1, ttl=3)
        epidemic.install()
        record = epidemic.broadcast(0, payload="x")
        overlay.run_until(overlay.sim.now + 5.0)
        # At most 1 + 1 + 1 + 1 nodes along a fanout-1, ttl-3 chain.
        assert record.deliveries() <= 4

    def test_infect_forever_reaches_at_least_as_many(
        self, small_trust_graph, small_config
    ):
        results = {}
        for forever in (False, True):
            overlay = _converged_overlay(small_trust_graph, small_config)
            epidemic = EpidemicBroadcast(
                overlay, fanout=2, ttl=8, infect_forever=forever
            )
            epidemic.install()
            record = epidemic.broadcast(0, payload="x")
            overlay.run_until(overlay.sim.now + 5.0)
            results[forever] = (record.deliveries(), record.forwards)
        assert results[True][0] >= results[False][0]
        assert results[True][1] > results[False][1]

    def test_fewer_forwards_than_flooding(self, small_trust_graph, small_config):
        from repro.dissemination import FloodBroadcast

        overlay = _converged_overlay(small_trust_graph, small_config)
        flood = FloodBroadcast(overlay, ttl=8)
        flood.install()
        flood_record = flood.broadcast(0, payload="x")
        overlay.run_until(overlay.sim.now + 5.0)

        overlay2 = _converged_overlay(small_trust_graph, small_config)
        epidemic = EpidemicBroadcast(overlay2, fanout=3, ttl=8)
        epidemic.install()
        epidemic_record = epidemic.broadcast(0, payload="x")
        overlay2.run_until(overlay2.sim.now + 5.0)

        assert epidemic_record.forwards < flood_record.forwards

    @pytest.mark.parametrize("kwargs", [{"fanout": 0}, {"ttl": 0}])
    def test_invalid_parameters(self, small_trust_graph, small_config, kwargs):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(DisseminationError):
            EpidemicBroadcast(overlay, **kwargs)

    def test_offline_origin_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        epidemic = EpidemicBroadcast(overlay)
        epidemic.install()
        with pytest.raises(DisseminationError):
            epidemic.broadcast(0, payload="x")
