"""Tests for the struct-of-arrays node plane (``repro.core.arena``).

Three layers of pinning, matching the parity-pair registry:

* **View parity** — :class:`ArenaSlots` / :class:`ArenaCache` /
  :class:`ArenaLinkSet` must behave exactly like the legacy per-node
  classes on identical operation streams (same results, same rng draw
  order, same iteration order).
* **Batch-kernel parity** — ``NodeArena.batch_offer`` /
  ``batch_cache_merge`` / ``batch_links_from_slots`` / ``batch_expire``
  must produce the same final state as per-node object loops over the
  same traffic (a miniature of the ``node_plane`` benchmark).
* **Whole-overlay differential** — a smoke-scale overlay run on the
  arena plane must be byte-identical to the ``objects`` plane (the
  golden-hash suite separately pins the arena-default run to the
  pre-arena output).

Plus the arena-specific edge cases: interning/refcount bookkeeping,
growth past the preallocated chunk, and free-list id reuse under
long churned runs.
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core import (
    ArenaCache,
    ArenaLinkSet,
    ArenaSlots,
    BatchOverlay,
    LinkSet,
    NodeArena,
    Pseudonym,
    PseudonymArena,
    PseudonymCache,
    SamplerSlots,
    get_node_plane,
    resolve_node_plane,
    set_node_plane,
)
from repro.churn import BatchChurnModel
from repro.core.batch import ring_lattice_csr
from repro.errors import ChurnError, ProtocolError
from repro.privlink import Address
from repro.rng import RandomStreams

SEED = 11


def _p(value, expires=100.0):
    """A deterministic test pseudonym."""
    return Pseudonym(value=value, address=Address(value + 1), expires_at=expires)


def _batch(rng, count, now=0.0, life=(1.0, 9.0)):
    """A batch of random pseudonyms with expiries in ``now + life``."""
    values = rng.integers(1, 1 << 62, size=count)
    spans = rng.uniform(*life, size=count)
    return [
        _p(int(values[i]), now + float(spans[i])) for i in range(count)
    ]


@pytest.fixture(autouse=True)
def _restore_plane():
    """Never leak a plane override into other tests."""
    yield
    set_node_plane(None)


class TestPlaneKnob:
    def test_default_is_arena(self, monkeypatch):
        monkeypatch.delenv("REPRO_NODE_PLANE", raising=False)
        set_node_plane(None)
        assert get_node_plane() == "arena"

    def test_env_var_selects_plane(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODE_PLANE", "objects")
        set_node_plane(None)
        assert get_node_plane() == "objects"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODE_PLANE", "objects")
        set_node_plane("arena")
        assert get_node_plane() == "arena"

    def test_resolve_prefers_explicit_override(self):
        set_node_plane("objects")
        assert resolve_node_plane("arena") == "arena"
        assert resolve_node_plane() == "objects"

    def test_unknown_plane_rejected(self):
        with pytest.raises(ProtocolError, match="unknown node plane"):
            set_node_plane("linked-lists")
        with pytest.raises(ProtocolError, match="unknown node plane"):
            resolve_node_plane("nope")


class TestPseudonymArena:
    def test_intern_dedups_and_refcounts(self):
        table = PseudonymArena(chunk=8)
        p = _p(42)
        pid = table.intern(p)
        assert table.intern(p) == pid
        assert table.refcounts[pid] == 2
        assert table.matches(pid, p)
        assert table.view(pid) is p
        assert table.live == 1

    def test_release_returns_id_to_free_list(self):
        table = PseudonymArena(chunk=8)
        pid = table.intern(_p(1))
        table.release(pid)
        assert table.live == 0
        # The freed id is reused by the next intern.
        assert table.intern(_p(2)) == pid

    def test_growth_past_preallocated_chunk(self):
        table = PseudonymArena(chunk=4)
        ids = [table.intern(_p(v)) for v in range(1, 11)]
        assert len(set(ids)) == 10
        assert table.grows >= 2
        assert table.capacity >= 10
        # Every interned pseudonym survived the growth copies.
        for value, pid in zip(range(1, 11), ids):
            assert int(table.values[pid]) == value

    def test_mint_batch_sets_owner_column(self):
        table = PseudonymArena(chunk=4)
        pids = table.mint_batch(
            np.array([5, 6], dtype=np.int64),
            np.array([50.0, 60.0]),
            np.array([0, 1], dtype=np.int64),
        )
        assert list(table.owners[pids]) == [0, 1]
        assert list(table.refcounts[pids]) == [1, 1]
        view = table.view(int(pids[0]))
        assert view.value == 5 and view.expires_at == 50.0

    def test_release_batch_counts_duplicates(self):
        table = PseudonymArena(chunk=8)
        p = _p(9)
        pid = table.intern(p)
        table.intern(p)
        table.intern(p)
        table.release_batch(np.array([pid, pid], dtype=np.int64))
        assert table.refcounts[pid] == 1
        assert table.live == 1


class TestNodeArenaRows:
    def test_register_must_be_sequential(self):
        arena = NodeArena(node_chunk=2)
        arena.register_node(0, 4, 4)
        with pytest.raises(ProtocolError, match="sequential"):
            arena.register_node(2, 4, 4)

    def test_row_growth_past_node_chunk(self):
        arena = NodeArena(node_chunk=2)
        for node_id in range(7):
            arena.register_node(node_id, 4, 4)
        assert arena.num_nodes == 7
        assert arena.row_capacity >= 7
        assert arena.slot_n[6] == 4

    def test_column_growth_preserves_state(self):
        """A later node with wider slots/cache must not corrupt row 0."""
        arena = NodeArena(node_chunk=2)
        arena.register_node(0, 2, 2)
        rng = RandomStreams(SEED).substream("refs", 0)
        slots = ArenaSlots(arena, 0, 2, rng)
        cache = ArenaCache(arena, 0, 2)
        offered = [_p(10, 50.0), _p(20, 60.0)]
        slots.offer_batch(offered)
        cache.merge(offered, now=0.0)
        before_slots = [slots.entry(i) for i in range(2)]
        before_cache = sorted(p.value for p in cache.pseudonyms())
        # Registering a wider node widens every column family.
        arena.register_node(1, 16, 32)
        assert arena.slot_cols >= 16 and arena.cache_cols >= 32
        assert [slots.entry(i) for i in range(2)] == before_slots
        assert sorted(p.value for p in cache.pseudonyms()) == before_cache


class TestViewParity:
    """Arena views against the legacy classes on identical streams."""

    def test_slots_match_legacy_exactly(self):
        data = RandomStreams(SEED).substream("slots", "data")
        legacy = SamplerSlots(12, RandomStreams(SEED).substream("slots", "refs"))
        arena = NodeArena(node_chunk=1)
        arena.register_node(0, 12, 4)
        view = ArenaSlots(
            arena, 0, 12, RandomStreams(SEED).substream("slots", "refs")
        )
        assert list(view.references) == list(legacy.references)
        for round_index in range(8):
            now = float(round_index)
            assert legacy.expire(now) == view.expire(now)
            batch = _batch(data, 20, now)
            assert legacy.offer_batch(batch) == view.offer_batch(batch)
            assert [p.value for p in legacy.sample()] == [
                p.value for p in view.sample()
            ]
        assert legacy.filled() == view.filled()
        for i in range(12):
            assert legacy.entry(i) == view.entry(i)
        assert view.holds(legacy.sample())

    def test_cache_matches_legacy_exactly(self):
        data = RandomStreams(SEED).substream("cache", "data")
        legacy = PseudonymCache(16)
        arena = NodeArena(node_chunk=1)
        arena.register_node(0, 0, 16)
        view = ArenaCache(arena, 0, 16)
        own = 77
        previous = []
        for round_index in range(10):
            now = float(round_index)
            batch = _batch(data, 12, now)
            if round_index % 3 == 0:
                batch[0] = _p(own, now + 5.0)  # own value is never cached
            just_sent = previous[:4] if round_index % 2 else None
            assert legacy.merge(
                batch, now, just_sent=just_sent, own_value=own
            ) == view.merge(batch, now, just_sent=just_sent, own_value=own)
            assert len(legacy) == len(view)
            assert [p.value for p in legacy.pseudonyms()] == [
                p.value for p in view.pseudonyms()
            ]
            previous = batch
        now = 10.0
        assert legacy.remove_expired(now) == view.remove_expired(now)
        assert legacy.newest(5, now) == view.newest(5, now)
        picks_a = legacy.select_for_shuffle(
            RandomStreams(SEED).substream("cache", "pick"), 6, now
        )
        picks_b = view.select_for_shuffle(
            RandomStreams(SEED).substream("cache", "pick"), 6, now
        )
        assert picks_a == picks_b
        victim = legacy.pseudonyms()[0]
        assert legacy.remove(victim) == view.remove(victim)
        assert victim not in legacy and victim not in view

    def test_links_match_legacy_exactly(self):
        data = RandomStreams(SEED).substream("links", "data")
        legacy = LinkSet([3, 1, 2])
        arena = NodeArena(node_chunk=1)
        arena.register_node(0, 8, 4)
        view = ArenaLinkSet(arena, 0, [3, 1, 2])
        assert legacy.trusted == view.trusted
        pool = _batch(data, 30, 0.0, life=(50.0, 90.0))
        for round_index in range(12):
            count = int(data.integers(0, 9))
            picks = [pool[int(i)] for i in data.integers(0, len(pool), count)]
            sample = list({p.value: p for p in picks}.values())
            assert legacy.update_from_sample(sample) == view.update_from_sample(
                sample
            )
            assert [p.value for p in legacy.pseudonym_links()] == [
                p.value for p in view.pseudonym_links()
            ]
        assert legacy.out_degree() == view.out_degree()
        assert legacy.pseudonym_degree() == view.pseudonym_degree()
        assert legacy.additions_total == view.additions_total
        assert legacy.replacements_total == view.replacements_total
        target_a = legacy.pick_random_target(
            RandomStreams(SEED).substream("links", "pick")
        )
        target_b = view.pick_random_target(
            RandomStreams(SEED).substream("links", "pick")
        )
        assert (target_a.node_id, target_a.pseudonym) == (
            target_b.node_id,
            target_b.pseudonym,
        )
        assert legacy.add_trusted(9) == view.add_trusted(9)
        assert legacy.trusted == view.trusted
        assert [t.is_trusted for t in legacy.all_targets()] == [
            t.is_trusted for t in view.all_targets()
        ]


class TestBatchKernelParity:
    """The vectorized kernels against per-node object loops."""

    def test_kernels_match_object_loops(self):
        num_nodes, rounds, k = 40, 8, 10
        slot_count, capacity = 8, 12
        data = RandomStreams(SEED).substream("kernels", "data")
        own_values = [int(v) for v in data.integers(1, 1 << 62, size=num_nodes)]
        owns = [_p(own_values[n], float(rounds + 5)) for n in range(num_nodes)]
        traffic = [
            [_batch(data, k, float(r), life=(0.5, 4.0)) for _ in range(num_nodes)]
            for r in range(rounds)
        ]
        for r in range(rounds):
            for n in range(num_nodes):
                if (n + r) % 5 == 0:
                    traffic[r][n][0] = owns[n]

        refs = RandomStreams(SEED).substream("kernels", "refs")
        slots = [SamplerSlots(slot_count, refs) for _ in range(num_nodes)]
        caches = [PseudonymCache(capacity) for _ in range(num_nodes)]
        links = [LinkSet(()) for _ in range(num_nodes)]
        for r in range(rounds):
            now = float(r)
            for n in range(num_nodes):
                slots[n].expire(now)
                caches[n].remove_expired(now)
                caches[n].merge(traffic[r][n], now, own_value=own_values[n])
                slots[n].offer_batch(traffic[r][n])
                links[n].update_from_sample(slots[n].sample())

        arena = NodeArena(
            PseudonymArena(chunk=64), node_chunk=8, track_insert_times=False
        )
        arena.register_batch(num_nodes, slot_count, capacity)
        refs = RandomStreams(SEED).substream("kernels", "refs")
        for n in range(num_nodes):
            arena.slot_refs[n, :slot_count] = SamplerSlots(
                slot_count, refs
            ).references
        table = arena.pseudonyms
        own_ids = np.array([table.intern(p) for p in owns], dtype=np.int64)
        rows = np.arange(num_nodes, dtype=np.int64)
        for r in range(rounds):
            now = float(r)
            cand_ids = np.array(
                [[table.intern(p) for p in traffic[r][n]] for n in range(num_nodes)],
                dtype=np.int64,
            )
            arena.batch_expire(now)
            arena.batch_cache_merge(rows, cand_ids, now, own_ids)
            arena.batch_offer(rows, cand_ids)
            arena.batch_links_from_slots(rows)

        for n in range(num_nodes):
            assert [
                None if e is None else (e.value, e.expires_at)
                for e in (slots[n].entry(i) for i in range(slot_count))
            ] == [
                None
                if pid < 0
                else (int(table.values[pid]), float(table.expires_at[pid]))
                for pid in arena.slot_ids[n, :slot_count]
            ], f"slot row {n} diverged"
            assert [p.value for p in caches[n].pseudonyms()] == [
                int(table.values[pid])
                for pid in arena.cache_ids[n, : arena.cache_len[n]]
            ], f"cache row {n} diverged"
            assert [p.value for p in links[n].pseudonym_links()] == [
                int(table.values[pid])
                for pid in arena.link_ids[n, : arena.link_len[n]]
            ], f"link row {n} diverged"

    def test_sample_cache_is_uniform_without_replacement(self):
        arena = NodeArena(track_insert_times=False)
        arena.register_batch(2, 0, 8)
        table = arena.pseudonyms
        for n in range(2):
            ids = np.array(
                [[table.intern(_p(10 * (n + 1) + j)) for j in range(6)]],
                dtype=np.int64,
            )
            arena.batch_cache_merge(np.array([n]), ids, 0.0)
        keys = RandomStreams(SEED).substream("sample").random((2, arena.cache_cols))
        picks = arena.sample_cache(np.arange(2), 3, keys)
        for n in range(2):
            chosen = picks[n][picks[n] >= 0]
            assert len(chosen) == 3
            assert len(set(chosen.tolist())) == 3
            row = set(arena.cache_ids[n, : arena.cache_len[n]].tolist())
            assert set(chosen.tolist()) <= row


class TestOverlayPlaneDifferential:
    """Both planes must produce byte-identical overlay runs."""

    def _run(self, plane):
        from repro.experiments import SMOKE, make_config, make_trust_graph
        from repro.experiments.runner import run_overlay_experiment

        set_node_plane(plane)
        try:
            trust = make_trust_graph(SMOKE, f=0.5, seed=SEED)
            config = make_config(SMOKE, alpha=0.5, f=0.5, seed=SEED)
            result = run_overlay_experiment(
                trust_graph=trust,
                config=config,
                horizon=20.0,
                measure_window=10.0,
                collector_interval=2.0,
                path_length_every=0,
            )
        finally:
            set_node_plane(None)
        series = result.collector.disconnected
        return (
            list(series.times),
            list(series.values),
            result.full_edge_count,
            round(result.disconnected, 15),
        )

    def test_arena_run_is_byte_identical_to_objects_run(self):
        assert self._run("arena") == self._run("objects")


class TestBatchChurnModel:
    def test_validation(self):
        rng = RandomStreams(SEED).substream("churn")
        with pytest.raises(ChurnError, match="num_nodes"):
            BatchChurnModel(0, 0.5, 8.0, rng)
        with pytest.raises(ChurnError, match="availability"):
            BatchChurnModel(10, 0.0, 8.0, rng)
        with pytest.raises(ChurnError, match="availability"):
            BatchChurnModel(10, 1.5, 8.0, rng)
        with pytest.raises(ChurnError, match="mean_offline_time"):
            BatchChurnModel(10, 0.5, 0.0, rng)

    def test_full_availability_never_leaves(self):
        model = BatchChurnModel(
            50, 1.0, 8.0, RandomStreams(SEED).substream("churn")
        )
        for _ in range(5):
            joined, left = model.step()
            assert len(left) == 0
        assert model.online_count() == 50

    def test_stationary_fraction_tracks_availability(self):
        model = BatchChurnModel(
            20_000, 0.6, 8.0, RandomStreams(SEED).substream("churn")
        )
        fractions = []
        for _ in range(40):
            model.step()
            fractions.append(model.online_fraction())
        assert abs(np.mean(fractions) - 0.6) < 0.02

    def test_step_masks_are_consistent(self):
        model = BatchChurnModel(
            200, 0.5, 4.0, RandomStreams(SEED).substream("churn")
        )
        before = model.online.copy()
        joined, left = model.step()
        assert not np.intersect1d(joined, left).size
        assert not before[joined].any()
        assert before[left].all()
        expected = before.copy()
        expected[joined] = True
        expected[left] = False
        assert (model.online == expected).all()

    def test_same_seed_same_trajectory(self):
        runs = []
        for _ in range(2):
            model = BatchChurnModel(
                100, 0.5, 6.0, RandomStreams(SEED).substream("churn")
            )
            masks = [model.online.copy()]
            for _ in range(10):
                model.step()
                masks.append(model.online.copy())
            runs.append(np.array(masks))
        assert (runs[0] == runs[1]).all()


class TestRingLatticeCsr:
    def test_symmetric_simple_graph(self):
        indptr, indices = ring_lattice_csr(
            200, 3, RandomStreams(SEED).substream("graph")
        )
        assert len(indptr) == 201
        degrees = np.diff(indptr)
        assert degrees.min() >= 2  # the ring alone provides two
        for node in (0, 57, 199):
            neighbors = indices[indptr[node] : indptr[node + 1]].tolist()
            assert node not in neighbors
            assert len(set(neighbors)) == len(neighbors)
            assert sorted(neighbors) == neighbors
            for other in neighbors:
                back = indices[indptr[other] : indptr[other + 1]]
                assert node in back

    def test_deterministic(self):
        a = ring_lattice_csr(100, 4, RandomStreams(SEED).substream("graph"))
        b = ring_lattice_csr(100, 4, RandomStreams(SEED).substream("graph"))
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()


def _batch_config(num_nodes, **overrides):
    defaults = dict(
        num_nodes=num_nodes,
        cache_size=12,
        shuffle_length=6,
        target_degree=12,
        min_pseudonym_links=6,
        availability=0.6,
        mean_offline_time=8.0,
        seed=SEED,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestBatchOverlay:
    def test_same_config_same_digest(self):
        digests = []
        for _ in range(2):
            overlay = BatchOverlay.build(_batch_config(400))
            overlay.run(12)
            digests.append(overlay.state_digest())
        assert digests[0] == digests[1]

    def test_slot_references_are_seeded(self):
        overlay = BatchOverlay.build(_batch_config(100))
        refs = overlay.arena.slot_refs[:100, : overlay.slot_count]
        # Distinct random 63-bit references, not a shared constant.
        assert len(np.unique(refs)) > 90
        assert (refs >= 0).all()

    def test_converges_toward_target_degree(self):
        overlay = BatchOverlay.build(_batch_config(1000))
        overlay.run(25)
        analysis = overlay.analysis()
        assert overlay.mean_out_degree() > 8.0
        assert 0.0 <= analysis.fraction_disconnected() < 0.1
        stats = overlay.stats()
        assert stats["exchanges"] > 0
        assert stats["pseudonyms_created"] >= stats["online_nodes"] > 0
        assert overlay.memory_bytes() > 0

    def test_expiry_reuses_interned_ids(self):
        """Long churned runs must recycle ids through the free list."""
        overlay = BatchOverlay.build(
            _batch_config(300, mean_offline_time=2.0)
        )
        overlay.run(150)
        table = overlay.arena.pseudonyms
        assert table.grows == 0
        assert table.total_interned > table.capacity
        assert table.live <= table.capacity

    def test_mismatched_csr_rejected(self):
        indptr, indices = ring_lattice_csr(
            50, 2, RandomStreams(SEED).substream("graph")
        )
        from repro.errors import GraphError

        with pytest.raises(GraphError, match="trusted_indptr"):
            BatchOverlay(_batch_config(60), indptr, indices)

    def test_offline_nodes_do_not_exchange(self):
        overlay = BatchOverlay.build(_batch_config(300, availability=0.4))
        overlay.run(10)
        online = overlay.churn.online
        # Offline rows may hold state (links survive going offline) but
        # the round loop only ever mints for online rows.
        own = overlay.own_ids
        table = overlay.arena.pseudonyms
        held = own >= 0
        assert held.any()
        owners = table.owners[own[held]]
        assert (owners == np.flatnonzero(held)).all()
        assert online.sum() < 300
