"""Tests for the simulated mix network."""

import numpy as np
import pytest

from repro.errors import MixnetError
from repro.privlink import TrafficLog, make_mixnet_link_layer
from repro.privlink.mixnet import MixNetwork
from repro.privlink.link import NodeDirectory
from repro.sim import Simulator


class _FakeNode:
    def __init__(self):
        self.inbox = []
        self.online = True

    def receive(self, payload):
        self.inbox.append(payload)


def _mixnet_layer(num_relays=8, circuit_length=3, traffic=None):
    sim = Simulator()
    layer = make_mixnet_link_layer(
        sim,
        np.random.default_rng(0),
        num_relays=num_relays,
        circuit_length=circuit_length,
        traffic=traffic,
    )
    return sim, layer


class TestMixnetDelivery:
    def test_anonymity_service_delivers(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "secret")
        sim.run_until(1.0)
        assert node.inbox == ["secret"]

    def test_offline_destination_drops(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        node.online = False
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "secret")
        sim.run_until(1.0)
        assert node.inbox == []
        assert layer.network.dropped_offline == 1

    def test_rendezvous_endpoint_delivers(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(2, node.receive, lambda: node.online)
        address = layer.create_endpoint(2)
        layer.send_to_endpoint(0, address, "anon")
        sim.run_until(2.0)
        assert node.inbox == ["anon"]

    def test_closed_rendezvous_drops(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(2, node.receive, lambda: node.online)
        address = layer.create_endpoint(2)
        layer.close_endpoint(address)
        layer.send_to_endpoint(0, address, "anon")
        sim.run_until(2.0)
        assert node.inbox == []

    def test_endpoint_active_query(self):
        _, layer = _mixnet_layer()
        address = layer.create_endpoint(5)
        assert layer.pseudonym.is_active(address)
        layer.close_endpoint(address)
        assert not layer.pseudonym.is_active(address)


class TestMixnetPrivacyMechanics:
    def test_multi_hop_traffic_no_direct_channel(self):
        """An external observer never sees a sender-to-receiver channel."""
        traffic = TrafficLog(enabled=True)
        sim, layer = _mixnet_layer(traffic=traffic)
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "secret")
        sim.run_until(1.0)
        assert node.inbox == ["secret"]
        channels = traffic.channels()
        assert ("node:0", "node:1") not in channels
        # The sender only ever talks to a relay.
        sender_channels = [dst for src, dst in channels if src == "node:0"]
        assert sender_channels and all(
            dst.startswith("relay:") for dst in sender_channels
        )
        # The receiver only ever hears from a relay.
        receiver_sources = [src for src, dst in channels if dst == "node:1"]
        assert receiver_sources and all(
            src.startswith("relay:") for src in receiver_sources
        )

    def test_circuit_hop_count(self):
        traffic = TrafficLog(enabled=True)
        sim, layer = _mixnet_layer(circuit_length=4, traffic=traffic)
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "m")
        sim.run_until(1.0)
        # node->r1, r1->r2, r2->r3, r3->r4, r4->node = circuit_length + 1.
        assert len(traffic) == 5

    def test_replay_dropped_at_relay(self):
        sim, layer = _mixnet_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        circuit = network.build_circuit()
        onion = network.wrap_for_node(circuit, 1, "replay-me")
        network.inject("node:0", circuit[0], onion)
        sim.run_until(1.0)
        network.inject("node:0", circuit[0], onion)  # replay the same onion
        sim.run_until(2.0)
        assert node.inbox == ["replay-me"]
        assert circuit[0].replays_dropped == 1

    def test_replay_cache_flush(self):
        sim, layer = _mixnet_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        circuit = network.build_circuit()
        onion = network.wrap_for_node(circuit, 1, "again")
        network.inject("node:0", circuit[0], onion)
        sim.run_until(1.0)
        for relay in network.relays:
            relay.flush_replay_cache()
            assert relay.replay_cache_size() == 0
        network.inject("node:0", circuit[0], onion)
        sim.run_until(2.0)
        assert node.inbox == ["again", "again"]


class TestRelayAvailability:
    def test_lossy_relays_drop_some_messages(self):
        sim = Simulator()
        directory = NodeDirectory()
        network = MixNetwork(
            sim,
            directory,
            np.random.default_rng(0),
            num_relays=8,
            relay_availability=0.5,
        )
        node = _FakeNode()
        directory.register(1, node.receive, lambda: node.online)
        for index in range(100):
            circuit = network.build_circuit()
            onion = network.wrap_for_node(circuit, 1, f"msg-{index}")
            network.inject("node:0", circuit[0], onion)
        sim.run_until(5.0)
        # With availability 0.5 over 4 hops, most messages die en route
        # and every loss is accounted for.
        assert network.dropped_relay_down > 0
        assert len(node.inbox) < 100
        assert len(node.inbox) + network.dropped_relay_down == 100

    def test_full_availability_never_drops(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for index in range(20):
            layer.send_to_node(0, 1, index)
        sim.run_until(5.0)
        assert layer.network.dropped_relay_down == 0
        assert len(node.inbox) == 20

    def test_invalid_availability(self):
        with pytest.raises(MixnetError):
            MixNetwork(
                Simulator(),
                NodeDirectory(),
                np.random.default_rng(0),
                relay_availability=0.0,
            )


class TestMixNetworkConstruction:
    def test_distinct_relays_per_circuit(self):
        sim = Simulator()
        network = MixNetwork(
            sim, NodeDirectory(), np.random.default_rng(0), num_relays=10
        )
        for _ in range(20):
            circuit = network.build_circuit()
            ids = [relay.relay_id for relay in circuit]
            assert len(set(ids)) == len(ids)

    def test_too_few_relays_rejected(self):
        with pytest.raises(MixnetError):
            MixNetwork(
                Simulator(),
                NodeDirectory(),
                np.random.default_rng(0),
                num_relays=2,
                circuit_length=3,
            )

    def test_invalid_circuit_length(self):
        with pytest.raises(MixnetError):
            MixNetwork(
                Simulator(),
                NodeDirectory(),
                np.random.default_rng(0),
                num_relays=5,
                circuit_length=0,
            )


def _fast_layer(**kwargs):
    """A mixnet layer with the fast-path knobs exposed for tests."""
    sim = Simulator()
    layer = make_mixnet_link_layer(
        sim,
        np.random.default_rng(0),
        num_relays=kwargs.pop("num_relays", 8),
        **kwargs,
    )
    return sim, layer


class TestCircuitCache:
    def test_repeat_sends_hit_the_cache(self):
        sim, layer = _fast_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        # Distinct payloads: identical payloads on a cached circuit are
        # identical onions, which replay protection rightly drops.
        for index in range(5):
            layer.send_to_node(0, 1, f"m{index}")
        sim.run_until(1.0)
        assert sorted(node.inbox) == [f"m{index}" for index in range(5)]
        assert network.circuit_cache_misses == 1
        assert network.circuit_cache_hits == 4
        assert network.circuit_cache_size() == 1

    def test_distinct_flows_get_distinct_entries(self):
        sim, layer = _fast_layer()
        network = layer.network
        nodes = {}
        for node_id in (1, 2):
            nodes[node_id] = _FakeNode()
            layer.register_node(node_id, nodes[node_id].receive, lambda: True)
        layer.send_to_node(0, 1, "m")
        layer.send_to_node(0, 2, "m")
        layer.send_to_node(3, 1, "m")
        sim.run_until(1.0)
        assert network.circuit_cache_misses == 3
        assert network.circuit_cache_hits == 0
        assert network.circuit_cache_size() == 3

    def test_closing_endpoint_evicts_its_circuits(self):
        sim, layer = _fast_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(2, node.receive, lambda: node.online)
        address = layer.create_endpoint(2)
        layer.send_to_endpoint(0, address, "a")
        layer.send_to_endpoint(1, address, "b")
        sim.run_until(1.0)
        assert network.circuit_cache_size() == 2
        layer.close_endpoint(address)
        assert network.circuit_cache_size() == 0
        assert network.circuit_cache_evictions == 2
        # A send to the closed address is silently dropped, not rebuilt.
        layer.send_to_endpoint(0, address, "late")
        sim.run_until(2.0)
        assert network.circuit_cache_size() == 0
        assert node.inbox == ["a", "b"]

    def test_invalidate_circuits_drops_everything(self):
        sim, layer = _fast_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "m")
        sim.run_until(1.0)
        assert network.circuit_cache_size() == 1
        network.invalidate_circuits()
        assert network.circuit_cache_size() == 0
        assert network.circuit_cache_evictions == 1
        layer.send_to_node(0, 1, "m")
        sim.run_until(2.0)
        assert network.circuit_cache_misses == 2

    def test_cache_limit_triggers_wholesale_flush(self):
        sim, layer = _fast_layer(circuit_cache_limit=2)
        network = layer.network
        for node_id in (1, 2, 3):
            node = _FakeNode()
            layer.register_node(node_id, node.receive, lambda: True)
        layer.send_to_node(0, 1, "m")
        layer.send_to_node(0, 2, "m")
        layer.send_to_node(0, 3, "m")  # overflows the 2-entry cache
        sim.run_until(1.0)
        assert network.circuit_cache_evictions == 2
        assert network.circuit_cache_size() == 1

    def test_disabled_cache_keeps_legacy_behavior(self):
        sim, layer = _fast_layer(circuit_cache=False)
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for _ in range(3):
            layer.send_to_node(0, 1, "m")
        sim.run_until(1.0)
        assert node.inbox == ["m"] * 3
        assert network.circuit_cache_hits == 0
        assert network.circuit_cache_misses == 0
        assert network.circuit_cache_size() == 0


class TestCompactReplayCache:
    def test_epoch_flush_bounds_cache_size(self):
        sim, layer = _fast_layer(replay_cache_limit=10)
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for index in range(40):
            layer.send_to_node(0, 1, f"m{index}")
        sim.run_until(1.0)
        assert sorted(node.inbox, key=lambda m: int(m[1:])) == [
            f"m{index}" for index in range(40)
        ]
        assert network.total_replay_flushes() > 0
        assert all(relay.replay_cache_size() <= 10 for relay in network.relays)

    def test_unbounded_cache_never_flushes(self):
        sim, layer = _fast_layer(replay_cache_limit=None)
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for index in range(50):
            layer.send_to_node(0, 1, f"m{index}")
        sim.run_until(1.0)
        assert network.total_replay_flushes() == 0
        assert network.total_replay_cache_entries() > 0

    def test_compact_digests_are_ints_legacy_are_bytes(self):
        for compact in (True, False):
            sim, layer = _fast_layer(compact_replay=compact)
            network = layer.network
            node = _FakeNode()
            layer.register_node(1, node.receive, lambda: node.online)
            layer.send_to_node(0, 1, "m")
            sim.run_until(1.0)
            expected_type = int if compact else bytes
            cached = {
                digest
                for relay in network.relays
                for digest in relay._replay_cache
            }
            assert cached
            assert all(isinstance(digest, expected_type) for digest in cached)

    def test_expected_collisions_tiny_but_nonzero(self):
        sim, layer = _fast_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for index in range(20):
            layer.send_to_node(0, 1, f"m{index}")
        sim.run_until(1.0)
        busy = [r for r in network.relays if r.replay_cache_size() >= 2]
        assert busy
        for relay in busy:
            assert 0.0 < relay.expected_replay_collisions() < 1e-12

    def test_expected_collisions_zero_in_legacy_mode(self):
        sim, layer = _fast_layer(compact_replay=False)
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "m")
        sim.run_until(1.0)
        assert all(
            relay.expected_replay_collisions() == 0.0 for relay in network.relays
        )

    def test_replay_still_dropped_with_compact_digests(self):
        sim, layer = _fast_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        circuit = network.build_circuit()
        onion = network.wrap_for_node(circuit, 1, "once")
        network.inject("node:0", circuit[0], onion)
        sim.run_until(1.0)
        network.inject("node:0", circuit[0], onion)
        sim.run_until(2.0)
        assert node.inbox == ["once"]
        assert network.total_replays_dropped() == 1
