"""Tests for the simulated mix network."""

import numpy as np
import pytest

from repro.errors import MixnetError
from repro.privlink import TrafficLog, make_mixnet_link_layer
from repro.privlink.mixnet import MixNetwork
from repro.privlink.link import NodeDirectory
from repro.sim import Simulator


class _FakeNode:
    def __init__(self):
        self.inbox = []
        self.online = True

    def receive(self, payload):
        self.inbox.append(payload)


def _mixnet_layer(num_relays=8, circuit_length=3, traffic=None):
    sim = Simulator()
    layer = make_mixnet_link_layer(
        sim,
        np.random.default_rng(0),
        num_relays=num_relays,
        circuit_length=circuit_length,
        traffic=traffic,
    )
    return sim, layer


class TestMixnetDelivery:
    def test_anonymity_service_delivers(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "secret")
        sim.run_until(1.0)
        assert node.inbox == ["secret"]

    def test_offline_destination_drops(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        node.online = False
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "secret")
        sim.run_until(1.0)
        assert node.inbox == []
        assert layer.network.dropped_offline == 1

    def test_rendezvous_endpoint_delivers(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(2, node.receive, lambda: node.online)
        address = layer.create_endpoint(2)
        layer.send_to_endpoint(0, address, "anon")
        sim.run_until(2.0)
        assert node.inbox == ["anon"]

    def test_closed_rendezvous_drops(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(2, node.receive, lambda: node.online)
        address = layer.create_endpoint(2)
        layer.close_endpoint(address)
        layer.send_to_endpoint(0, address, "anon")
        sim.run_until(2.0)
        assert node.inbox == []

    def test_endpoint_active_query(self):
        _, layer = _mixnet_layer()
        address = layer.create_endpoint(5)
        assert layer.pseudonym.is_active(address)
        layer.close_endpoint(address)
        assert not layer.pseudonym.is_active(address)


class TestMixnetPrivacyMechanics:
    def test_multi_hop_traffic_no_direct_channel(self):
        """An external observer never sees a sender-to-receiver channel."""
        traffic = TrafficLog(enabled=True)
        sim, layer = _mixnet_layer(traffic=traffic)
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "secret")
        sim.run_until(1.0)
        assert node.inbox == ["secret"]
        channels = traffic.channels()
        assert ("node:0", "node:1") not in channels
        # The sender only ever talks to a relay.
        sender_channels = [dst for src, dst in channels if src == "node:0"]
        assert sender_channels and all(
            dst.startswith("relay:") for dst in sender_channels
        )
        # The receiver only ever hears from a relay.
        receiver_sources = [src for src, dst in channels if dst == "node:1"]
        assert receiver_sources and all(
            src.startswith("relay:") for src in receiver_sources
        )

    def test_circuit_hop_count(self):
        traffic = TrafficLog(enabled=True)
        sim, layer = _mixnet_layer(circuit_length=4, traffic=traffic)
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        layer.send_to_node(0, 1, "m")
        sim.run_until(1.0)
        # node->r1, r1->r2, r2->r3, r3->r4, r4->node = circuit_length + 1.
        assert len(traffic) == 5

    def test_replay_dropped_at_relay(self):
        sim, layer = _mixnet_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        circuit = network.build_circuit()
        onion = network.wrap_for_node(circuit, 1, "replay-me")
        network.inject("node:0", circuit[0], onion)
        sim.run_until(1.0)
        network.inject("node:0", circuit[0], onion)  # replay the same onion
        sim.run_until(2.0)
        assert node.inbox == ["replay-me"]
        assert circuit[0].replays_dropped == 1

    def test_replay_cache_flush(self):
        sim, layer = _mixnet_layer()
        network = layer.network
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        circuit = network.build_circuit()
        onion = network.wrap_for_node(circuit, 1, "again")
        network.inject("node:0", circuit[0], onion)
        sim.run_until(1.0)
        for relay in network.relays:
            relay.flush_replay_cache()
            assert relay.replay_cache_size() == 0
        network.inject("node:0", circuit[0], onion)
        sim.run_until(2.0)
        assert node.inbox == ["again", "again"]


class TestRelayAvailability:
    def test_lossy_relays_drop_some_messages(self):
        sim = Simulator()
        directory = NodeDirectory()
        network = MixNetwork(
            sim,
            directory,
            np.random.default_rng(0),
            num_relays=8,
            relay_availability=0.5,
        )
        node = _FakeNode()
        directory.register(1, node.receive, lambda: node.online)
        for index in range(100):
            circuit = network.build_circuit()
            onion = network.wrap_for_node(circuit, 1, f"msg-{index}")
            network.inject("node:0", circuit[0], onion)
        sim.run_until(5.0)
        # With availability 0.5 over 4 hops, most messages die en route
        # and every loss is accounted for.
        assert network.dropped_relay_down > 0
        assert len(node.inbox) < 100
        assert len(node.inbox) + network.dropped_relay_down == 100

    def test_full_availability_never_drops(self):
        sim, layer = _mixnet_layer()
        node = _FakeNode()
        layer.register_node(1, node.receive, lambda: node.online)
        for index in range(20):
            layer.send_to_node(0, 1, index)
        sim.run_until(5.0)
        assert layer.network.dropped_relay_down == 0
        assert len(node.inbox) == 20

    def test_invalid_availability(self):
        with pytest.raises(MixnetError):
            MixNetwork(
                Simulator(),
                NodeDirectory(),
                np.random.default_rng(0),
                relay_availability=0.0,
            )


class TestMixNetworkConstruction:
    def test_distinct_relays_per_circuit(self):
        sim = Simulator()
        network = MixNetwork(
            sim, NodeDirectory(), np.random.default_rng(0), num_relays=10
        )
        for _ in range(20):
            circuit = network.build_circuit()
            ids = [relay.relay_id for relay in circuit]
            assert len(set(ids)) == len(ids)

    def test_too_few_relays_rejected(self):
        with pytest.raises(MixnetError):
            MixNetwork(
                Simulator(),
                NodeDirectory(),
                np.random.default_rng(0),
                num_relays=2,
                circuit_length=3,
            )

    def test_invalid_circuit_length(self):
        with pytest.raises(MixnetError):
            MixNetwork(
                Simulator(),
                NodeDirectory(),
                np.random.default_rng(0),
                num_relays=5,
                circuit_length=0,
            )
