"""CLI tests: exit codes, output formats, and repro-CLI dispatch."""

import json
import textwrap

from repro.cli import main as repro_main
from repro.lint import JSON_SCHEMA_VERSION, rule_codes
from repro.lint.cli import main as lint_main


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


CLEAN = "x = 1\n"
DIRTY = """
import numpy as np

rng = np.random.default_rng()
"""


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", CLEAN)
        assert lint_main([str(tmp_path)]) == 0
        assert "1 files clean" in capsys.readouterr().out

    def test_findings_exit_one_with_location(self, tmp_path, capsys):
        bad = _write(tmp_path, "bad.py", DIRTY)
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:4:" in out
        assert "DET001" in out

    def test_json_format_schema(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", DIRTY)
        assert lint_main([str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["checked_files"] == 1
        assert document["counts"] == {"DET001": 1}
        (finding,) = document["findings"]
        assert set(finding) == {"path", "line", "column", "rule", "message"}
        assert finding["rule"] == "DET001"
        assert finding["line"] == 4

    def test_json_clean_document(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", CLEAN)
        assert lint_main([str(tmp_path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["findings"] == []
        assert document["counts"] == {}

    def test_rules_filter(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", DIRTY)
        assert lint_main([str(tmp_path), "--rules", "HYG002"]) == 0
        assert lint_main([str(tmp_path), "--rules", "det001"]) == 1

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", CLEAN)
        assert lint_main([str(tmp_path), "--rules", "BOGUS"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["definitely/not/here"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in rule_codes():
            assert code in out


class TestReproCliDispatch:
    def test_lint_subcommand_through_repro_cli(self, tmp_path, capsys):
        _write(tmp_path, "bad.py", DIRTY)
        assert repro_main(["lint", str(tmp_path)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_lint_subcommand_clean(self, tmp_path, capsys):
        _write(tmp_path, "ok.py", CLEAN)
        assert repro_main(["lint", str(tmp_path)]) == 0

    def test_figure_commands_still_parse(self, capsys):
        # The lint dispatch must not break the original figure grammar.
        code = repro_main(["fig9", "--scale", "smoke"])
        assert code == 0
        assert "Figure 9" in capsys.readouterr().out
