"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SchedulerError
from repro.sim import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "first")
        sim.schedule(1.0, fired.append, "second")
        sim.run_until(2.0)
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [2.5]

    def test_run_until_sets_clock_to_horizon(self):
        sim = Simulator()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_event_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, True)
        sim.run_until(5.0)
        assert fired == [True]

    def test_event_after_horizon_does_not_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.1, fired.append, True)
        sim.run_until(5.0)
        assert fired == []
        sim.run_until(6.0)
        assert fired == [True]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulerError):
            sim.schedule(4.0, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        sim.run_until(2.0)
        fired = []
        sim.schedule_after(1.5, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [3.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_horizon_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulerError):
            sim.run_until(4.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, True)
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_counts_live_events_only(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending == 4
        handles[0].cancel()
        assert sim.pending == 3
        assert handles[0].cancelled

    def test_queue_size_reports_raw_heap_length(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        handles[0].cancel()
        handles[1].cancel()
        # Two tombstones out of five entries: below the half-full
        # compaction trigger, so the raw heap keeps both.
        assert sim.pending == 3
        assert sim.queue_size == 5

    def test_tombstone_majority_triggers_compaction(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
        for handle in handles[:5]:
            handle.cancel()
        # 5 of 8 cancelled: tombstones exceed half the heap, so the
        # queue compacts down to the live events.
        assert sim.pending == 3
        assert sim.queue_size == 3

    def test_events_survive_compaction_in_order(self):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(float(i + 1), fired.append, i) for i in range(10)
        ]
        for handle in handles[1::2]:
            handle.cancel()
        for handle in handles[0:4:2]:
            handle.cancel()
        sim.run_until(20.0)
        assert fired == [4, 6, 8]

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, True)
        sim.run_until(2.0)
        assert fired == [True]
        handle.cancel()
        assert handle.cancelled
        assert sim.pending == 0
        assert sim.queue_size == 0


class TestPost:
    """Fast-path scheduling without an EventHandle."""

    def test_post_fires_at_time(self):
        sim = Simulator()
        fired = []
        sim.post(2.0, fired.append, "x")
        sim.run_until(5.0)
        assert fired == ["x"]

    def test_post_after_fires_relative_to_now(self):
        sim = Simulator()
        sim.run_until(3.0)
        fired = []
        sim.post_after(1.5, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [4.5]

    def test_post_returns_nothing(self):
        sim = Simulator()
        assert sim.post(1.0, lambda: None) is None
        assert sim.post_after(1.0, lambda: None) is None

    def test_post_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulerError):
            sim.post(4.0, lambda: None)

    def test_post_after_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Simulator().post_after(-0.5, lambda: None)

    def test_post_interleaves_with_schedule_in_seq_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.post(1.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "c")
        sim.run_until(2.0)
        assert fired == ["a", "b", "c"]


class TestBatchedDrain:
    """Same-timestamp events drain in one batch, in schedule order."""

    def test_large_same_time_batch_preserves_order(self):
        sim = Simulator()
        fired = []
        for index in range(50):
            sim.post(1.0, fired.append, index)
        sim.run_until(1.0)
        assert fired == list(range(50))

    def test_batch_callback_scheduling_same_time_still_fires(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.post(sim.now, lambda: fired.append("nested"))

        sim.post(1.0, first)
        sim.post(1.0, fired.append, "second")
        sim.run_until(2.0)
        assert fired == ["first", "second", "nested"]

    def test_cancelled_events_skipped_inside_batch(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, fired.append, "a")
        handle = sim.schedule(1.0, fired.append, "b")
        sim.post(1.0, fired.append, "c")
        handle.cancel()
        sim.run_until(2.0)
        assert fired == ["a", "c"]
        assert sim.pending == 0


class TestNestedScheduling:
    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth > 0:
                sim.schedule_after(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run_until(10.0)
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_events_processed_counter(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(float(index), lambda: None)
        sim.run_until(10.0)
        assert sim.events_processed == 5

    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2]
        assert sim.pending == 0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False
