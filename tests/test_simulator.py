"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SchedulerError
from repro.sim import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "first")
        sim.schedule(1.0, fired.append, "second")
        sim.run_until(2.0)
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [2.5]

    def test_run_until_sets_clock_to_horizon(self):
        sim = Simulator()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_event_at_horizon_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, True)
        sim.run_until(5.0)
        assert fired == [True]

    def test_event_after_horizon_does_not_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.1, fired.append, True)
        sim.run_until(5.0)
        assert fired == []
        sim.run_until(6.0)
        assert fired == [True]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulerError):
            sim.schedule(4.0, lambda: None)

    def test_schedule_after(self):
        sim = Simulator()
        sim.run_until(2.0)
        fired = []
        sim.schedule_after(1.5, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [3.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulerError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_horizon_in_past_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulerError):
            sim.run_until(4.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, True)
        handle.cancel()
        sim.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled


class TestNestedScheduling:
    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth > 0:
                sim.schedule_after(1.0, chain, depth - 1)

        sim.schedule(0.0, chain, 3)
        sim.run_until(10.0)
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_events_processed_counter(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(float(index), lambda: None)
        sim.run_until(10.0)
        assert sim.events_processed == 5

    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1, 2]
        assert sim.pending == 0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False
