"""Tests for availability math and static online sampling."""

import networkx as nx
import numpy as np
import pytest

from repro.churn import (
    availability,
    mean_online_for,
    online_subgraph,
    stationary_online_mask,
)
from repro.errors import ChurnError


class TestAvailabilityMath:
    def test_basic_formula(self):
        assert availability(10.0, 30.0) == pytest.approx(0.25)

    def test_roundtrip(self):
        ton = mean_online_for(0.4, 30.0)
        assert availability(ton, 30.0) == pytest.approx(0.4)

    def test_invalid_durations(self):
        with pytest.raises(ChurnError):
            availability(0.0, 1.0)
        with pytest.raises(ChurnError):
            availability(1.0, -1.0)

    @pytest.mark.parametrize("alpha", [0.0, 1.0])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ChurnError):
            mean_online_for(alpha, 30.0)


class TestStationaryMask:
    def test_fraction(self, rng):
        mask = stationary_online_mask(10000, 0.3, rng)
        assert mask.mean() == pytest.approx(0.3, abs=0.02)

    def test_alpha_one_all_online(self, rng):
        mask = stationary_online_mask(100, 1.0, rng)
        assert mask.all()

    def test_invalid_alpha(self, rng):
        with pytest.raises(ChurnError):
            stationary_online_mask(10, 0.0, rng)


class TestOnlineSubgraph:
    def test_induced(self):
        graph = nx.path_graph(5)
        mask = np.array([True, True, False, True, True])
        induced = online_subgraph(graph, mask)
        assert set(induced.nodes()) == {0, 1, 3, 4}
        assert set(induced.edges()) == {(0, 1), (3, 4)}

    def test_mask_length_checked(self):
        with pytest.raises(ChurnError):
            online_subgraph(nx.path_graph(3), np.array([True, False]))

    def test_all_offline(self):
        graph = nx.path_graph(3)
        induced = online_subgraph(graph, np.zeros(3, dtype=bool))
        assert induced.number_of_nodes() == 0
