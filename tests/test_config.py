"""Tests for repro.config.SystemConfig."""

import math

import pytest

from repro.config import INFINITE_LIFETIME, SystemConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_table1_defaults(self):
        config = SystemConfig()
        assert config.num_nodes == 1000
        assert config.sampling_f == 0.5
        assert config.mean_offline_time == 30.0
        assert config.lifetime_ratio == 3.0
        assert config.cache_size == 400
        assert config.shuffle_length == 40
        assert config.target_degree == 50

    def test_pseudonym_lifetime_is_ratio_times_toff(self):
        config = SystemConfig()
        assert config.pseudonym_lifetime == pytest.approx(90.0)

    def test_infinite_lifetime(self):
        config = SystemConfig(lifetime_ratio=INFINITE_LIFETIME)
        assert math.isinf(config.pseudonym_lifetime)

    def test_mean_online_time_from_availability(self):
        config = SystemConfig(availability=0.5, mean_offline_time=30.0)
        assert config.mean_online_time == pytest.approx(30.0)
        config = SystemConfig(availability=0.25, mean_offline_time=30.0)
        assert config.mean_online_time == pytest.approx(10.0)

    def test_availability_identity(self):
        config = SystemConfig(availability=0.37)
        ton = config.mean_online_time
        toff = config.mean_offline_time
        assert ton / (ton + toff) == pytest.approx(0.37)

    def test_paper_defaults_helper(self):
        config = SystemConfig.paper_defaults(availability=0.25)
        assert config.availability == 0.25
        assert config.num_nodes == 1000

    def test_replace_returns_modified_copy(self):
        config = SystemConfig()
        other = config.replace(num_nodes=100)
        assert other.num_nodes == 100
        assert config.num_nodes == 1000


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"sampling_f": -0.1},
            {"sampling_f": 1.1},
            {"mean_offline_time": 0},
            {"lifetime_ratio": 0},
            {"cache_size": 0},
            {"shuffle_length": 0},
            {"target_degree": 0},
            {"min_pseudonym_links": -1},
            {"availability": 0.0},
            {"availability": 1.0},
            {"message_latency": -0.1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SystemConfig(**kwargs)

    def test_frozen(self):
        config = SystemConfig()
        with pytest.raises(Exception):
            config.num_nodes = 5  # type: ignore[misc]
