"""Wire codec: seeded round-trip properties and hostile-input rejection.

The decode contract under test: ``decode_frame`` NEVER raises — every
malformed datagram (truncated frame, oversize length prefix, unknown
version, flipped bytes, random garbage) comes back as a typed
:class:`CodecError` value.
"""

import struct

import numpy as np
import pytest

from repro.errors import NetError
from repro.net.codec import (
    HEADER,
    MAGIC,
    MAX_FRAME,
    WIRE_VERSION,
    AppPayload,
    CodecError,
    Goodbye,
    Heartbeat,
    Hello,
    HelloAck,
    Lookup,
    LookupReply,
    PeerInfo,
    Register,
    ShuffleOffer,
    ShuffleReply,
    WireEntry,
    decode_frame,
    encode_frame,
)

def _rng():
    return np.random.default_rng(20260808)


def _random_entry(rng) -> WireEntry:
    return WireEntry(
        value=int(rng.integers(0, 2**63)),
        token=int(rng.integers(1, 2**63)),
        ttl=float(rng.uniform(-5.0, 100.0)),
        host="127.0.0.1" if rng.random() < 0.5 else "",
        port=int(rng.integers(0, 65536)),
    )


def _random_message(rng):
    kind = int(rng.integers(0, 10))
    if kind == 0:
        return Hello(
            node_id=int(rng.integers(0, 2**32, dtype=np.uint32)),
            host="10.0.0.%d" % rng.integers(1, 255),
            port=int(rng.integers(1, 65536)),
        )
    if kind == 1:
        return HelloAck(
            node_id=int(rng.integers(0, 2**32, dtype=np.uint32)),
            peers=tuple(
                PeerInfo(
                    node_id=int(rng.integers(0, 2**32, dtype=np.uint32)),
                    host="h%d.example" % i,
                    port=int(rng.integers(1, 65536)),
                )
                for i in range(int(rng.integers(0, 6)))
            ),
        )
    if kind == 2:
        return Heartbeat(
            node_id=int(rng.integers(0, 2**32, dtype=np.uint32)),
            seq=int(rng.integers(0, 2**32, dtype=np.uint32)),
            reply_wanted=bool(rng.random() < 0.5),
        )
    if kind == 3:
        entries = tuple(
            _random_entry(rng) for _ in range(int(rng.integers(1, 9)))
        )
        if rng.random() < 0.5:
            return ShuffleOffer(
                entries=entries, reply_node=int(rng.integers(0, 2**32, dtype=np.uint32))
            )
        return ShuffleOffer(
            entries=entries,
            reply_token=int(rng.integers(1, 2**63)),
            reply_host="127.0.0.1",
            reply_port=int(rng.integers(1, 65536)),
        )
    if kind == 4:
        return ShuffleReply(
            entries=tuple(
                _random_entry(rng) for _ in range(int(rng.integers(1, 9)))
            )
        )
    if kind == 5:
        return Register(
            node_id=int(rng.integers(0, 2**32, dtype=np.uint32)),
            token=int(rng.integers(1, 2**63)),
            host="127.0.0.1",
            port=int(rng.integers(1, 65536)),
            active=bool(rng.random() < 0.5),
        )
    if kind == 6:
        return Lookup(token=int(rng.integers(1, 2**63)))
    if kind == 7:
        return LookupReply(
            token=int(rng.integers(1, 2**63)),
            found=bool(rng.random() < 0.5),
            host="127.0.0.1",
            port=int(rng.integers(0, 65536)),
        )
    if kind == 8:
        return AppPayload(
            kind="json",
            body=bytes(rng.integers(0, 256, size=int(rng.integers(0, 64)),
                                    dtype=np.uint8)),
        )
    return Goodbye(node_id=int(rng.integers(0, 2**32, dtype=np.uint32)))


class TestRoundTrip:
    def test_seeded_property_round_trip(self):
        # 300 random messages across all ten wire types survive
        # encode -> decode bit-exactly.
        rng = _rng()
        seen_types = set()
        for _ in range(300):
            message = _random_message(rng)
            seen_types.add(type(message).__name__)
            frame = encode_frame(message)
            decoded = decode_frame(frame)
            assert decoded == message, (message, decoded)
        assert len(seen_types) == 10  # every wire type exercised

    def test_infinite_ttl_survives(self):
        offer = ShuffleReply(
            entries=(WireEntry(value=1, token=2, ttl=float("inf")),)
        )
        decoded = decode_frame(encode_frame(offer))
        assert decoded.entries[0].ttl == float("inf")

    def test_empty_app_payload(self):
        message = AppPayload(kind="json", body=b"")
        assert decode_frame(encode_frame(message)) == message


class TestEncodeRejection:
    def test_oversize_frame_refused(self):
        big = AppPayload(kind="blob", body=b"x" * (MAX_FRAME + 1))
        with pytest.raises(NetError):
            encode_frame(big)

    def test_string_too_long_refused(self):
        with pytest.raises(NetError):
            encode_frame(Hello(node_id=1, host="h" * 600, port=1))

    def test_field_out_of_range_refused(self):
        with pytest.raises(NetError):
            encode_frame(Hello(node_id=2**32, host="h", port=1))
        with pytest.raises(NetError):
            encode_frame(Hello(node_id=1, host="h", port=70000))

    def test_shuffle_offer_needs_exactly_one_reply_channel(self):
        entries = (WireEntry(value=1, token=2, ttl=3.0),)
        with pytest.raises(NetError):
            encode_frame(ShuffleOffer(entries=entries))
        with pytest.raises(NetError):
            encode_frame(
                ShuffleOffer(entries=entries, reply_node=1, reply_token=2)
            )

    def test_empty_shuffle_refused(self):
        with pytest.raises(NetError):
            encode_frame(ShuffleReply(entries=()))

    def test_unknown_message_type_refused(self):
        with pytest.raises(NetError):
            encode_frame("not a message")


class TestDecodeRejection:
    """No input may raise; every failure is a typed CodecError."""

    def test_short_header(self):
        for size in range(HEADER.size):
            result = decode_frame(b"\x00" * size)
            assert isinstance(result, CodecError)
            assert result.code == "truncated"

    def test_bad_magic(self):
        frame = bytearray(encode_frame(Goodbye(node_id=7)))
        frame[0:2] = b"XX"
        result = decode_frame(bytes(frame))
        assert isinstance(result, CodecError)
        assert result.code == "bad-magic"

    def test_unknown_version(self):
        frame = bytearray(encode_frame(Goodbye(node_id=7)))
        frame[2] = WIRE_VERSION + 1
        result = decode_frame(bytes(frame))
        assert isinstance(result, CodecError)
        assert result.code == "unknown-version"

    def test_unknown_type(self):
        body = b""
        frame = HEADER.pack(MAGIC, WIRE_VERSION, 200, len(body)) + body
        result = decode_frame(frame)
        assert isinstance(result, CodecError)
        assert result.code == "unknown-type"

    def test_oversize_length_prefix(self):
        # Declared length beyond MAX_FRAME is rejected before any body
        # allocation logic runs.
        frame = HEADER.pack(MAGIC, WIRE_VERSION, 10, MAX_FRAME + 1)
        result = decode_frame(frame)
        assert isinstance(result, CodecError)
        assert result.code == "oversize"

    def test_length_prefix_disagrees_with_payload(self):
        good = encode_frame(Goodbye(node_id=7))
        truncated = good[:-1]
        result = decode_frame(truncated)
        assert isinstance(result, CodecError)
        assert result.code == "length-mismatch"
        padded = good + b"\x00"
        result = decode_frame(padded)
        assert isinstance(result, CodecError)
        assert result.code == "length-mismatch"

    def test_truncated_body_every_prefix(self):
        # Cut a real multi-field frame at every possible byte boundary:
        # none may raise, all must reject.
        rng = _rng()
        frame = encode_frame(
            ShuffleOffer(
                entries=tuple(_random_entry(rng) for _ in range(3)),
                reply_token=12345,
                reply_host="127.0.0.1",
                reply_port=4000,
            )
        )
        for cut in range(HEADER.size, len(frame)):
            body = frame[HEADER.size:cut]
            refraned = (
                HEADER.pack(MAGIC, WIRE_VERSION, 4, len(body)) + body
            )
            result = decode_frame(refraned)
            assert isinstance(result, CodecError), cut

    def test_zero_entry_shuffle_rejected(self):
        body = bytearray()
        body.append(1)                      # trusted reply channel
        body += struct.pack(">I", 9)        # reply_node
        body.append(0)                      # zero entries
        frame = HEADER.pack(MAGIC, WIRE_VERSION, 4, len(body)) + bytes(body)
        result = decode_frame(frame)
        assert isinstance(result, CodecError)
        assert result.code == "malformed"

    def test_bad_reply_channel_flag(self):
        body = bytearray()
        body.append(7)                      # neither 0 nor 1
        frame = HEADER.pack(MAGIC, WIRE_VERSION, 4, len(body)) + bytes(body)
        result = decode_frame(frame)
        assert isinstance(result, CodecError)

    def test_nan_ttl_rejected(self):
        frame = bytearray(
            encode_frame(
                ShuffleReply(
                    entries=(WireEntry(value=1, token=2, ttl=1.0),)
                )
            )
        )
        # body layout: count u8 | value u64 | token u64 | ttl f64 ...
        ttl_offset = HEADER.size + 1 + 8 + 8
        frame[ttl_offset:ttl_offset + 8] = struct.pack(">d", float("nan"))
        result = decode_frame(bytes(frame))
        assert isinstance(result, CodecError)
        assert result.code == "malformed"

    def test_invalid_utf8_string(self):
        body = bytearray()
        body += struct.pack(">I", 1)        # node_id
        body += struct.pack(">H", 2)        # host length
        body += b"\xff\xfe"                 # invalid UTF-8
        body += struct.pack(">H", 80)       # port
        frame = HEADER.pack(MAGIC, WIRE_VERSION, 1, len(body)) + bytes(body)
        result = decode_frame(frame)
        assert isinstance(result, CodecError)
        assert result.code == "malformed"

    def test_trailing_bytes_rejected(self):
        good = encode_frame(Goodbye(node_id=7))
        body = good[HEADER.size:] + b"\x00\x00"
        frame = HEADER.pack(MAGIC, WIRE_VERSION, 10, len(body)) + body
        result = decode_frame(frame)
        assert isinstance(result, CodecError)
        assert result.code == "malformed"

    def test_random_garbage_never_raises(self):
        # 2000 random buffers, some wearing a valid header; the decoder
        # must return a value for every one of them.
        rng = _rng()
        for _ in range(2000):
            size = int(rng.integers(0, 128))
            data = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
            if rng.random() < 0.5 and size >= HEADER.size:
                # Graft a plausible header onto the garbage.
                data = (
                    HEADER.pack(
                        MAGIC,
                        WIRE_VERSION,
                        int(rng.integers(0, 16)),
                        size - HEADER.size,
                    )
                    + data[HEADER.size:]
                )
            result = decode_frame(data)
            assert result is not None

    def test_mutated_valid_frames_never_raise(self):
        # Flip every byte of valid frames one at a time; decode must
        # return (message or error), never raise.
        rng = _rng()
        for _ in range(20):
            frame = bytearray(encode_frame(_random_message(rng)))
            for position in range(len(frame)):
                mutated = bytearray(frame)
                mutated[position] ^= 0xFF
                result = decode_frame(bytes(mutated))
                assert result is not None
