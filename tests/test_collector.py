"""Tests for the metrics collector."""

import pytest

from repro import Overlay
from repro.errors import ExperimentError
from repro.metrics import MetricsCollector, mean_messages_per_period


class TestCollector:
    def _run(self, graph, config, horizon=20.0, **kwargs):
        overlay = Overlay.build(graph, config, with_churn=False)
        collector = MetricsCollector(overlay, **kwargs)
        overlay.start()
        collector.start()
        overlay.run_until(horizon)
        return overlay, collector

    def test_samples_on_grid(self, small_trust_graph, small_config):
        _, collector = self._run(small_trust_graph, small_config, horizon=10.0)
        times = collector.disconnected.times
        assert len(times) == 10
        assert times[0] == pytest.approx(1.0)
        assert times[-1] == pytest.approx(10.0)

    def test_disconnected_goes_to_zero_without_churn(
        self, small_trust_graph, small_config
    ):
        _, collector = self._run(small_trust_graph, small_config, horizon=20.0)
        assert collector.disconnected.values[-1] == 0.0
        assert collector.stable_disconnected() < 0.05

    def test_online_count_without_churn(self, small_trust_graph, small_config):
        _, collector = self._run(small_trust_graph, small_config, horizon=5.0)
        assert all(
            value == small_config.num_nodes for value in collector.online_count.values
        )

    def test_path_length_sampling(self, small_trust_graph, small_config):
        _, collector = self._run(
            small_trust_graph,
            small_config,
            horizon=12.0,
            path_length_every=4,
        )
        assert len(collector.path_length) == 3
        assert all(value > 0 for value in collector.path_length.values)

    def test_path_length_disabled_by_default(self, small_trust_graph, small_config):
        _, collector = self._run(small_trust_graph, small_config, horizon=8.0)
        assert len(collector.path_length) == 0

    def test_messages_rate_positive(self, small_trust_graph, small_config):
        _, collector = self._run(small_trust_graph, small_config, horizon=10.0)
        # Every online node initiates one shuffle per period; with
        # responses the system-wide rate should be near 2.
        tail = collector.messages_per_node.tail_mean(0.5)
        assert 1.0 < tail < 3.0

    def test_replacement_rate_series(self, small_trust_graph, small_config):
        _, collector = self._run(small_trust_graph, small_config, horizon=10.0)
        assert len(collector.replacements_per_node) == 10
        assert all(value >= 0 for value in collector.replacements_per_node.values)

    def test_max_out_degree_tracked(self, small_trust_graph, small_config):
        overlay, collector = self._run(small_trust_graph, small_config, horizon=15.0)
        degrees = collector.max_out_degrees()
        assert len(degrees) == small_config.num_nodes
        for node, max_degree in zip(overlay.nodes, degrees):
            assert max_degree >= node.links.trusted_degree

    def test_convergence_time(self, small_trust_graph, small_config):
        _, collector = self._run(small_trust_graph, small_config, horizon=20.0)
        convergence = collector.convergence_time(threshold=0.05)
        assert convergence is not None
        assert convergence <= 20.0

    def test_double_start_rejected(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        collector = MetricsCollector(overlay)
        overlay.start()
        collector.start()
        with pytest.raises(ExperimentError):
            collector.start()

    def test_invalid_interval(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config)
        with pytest.raises(ExperimentError):
            MetricsCollector(overlay, interval=0.0)


class TestOverheadHelpers:
    def test_mean_messages_close_to_two(self, small_trust_graph, small_config):
        overlay = Overlay.build(small_trust_graph, small_config, with_churn=False)
        overlay.start()
        overlay.run_until(30.0)
        mean = mean_messages_per_period(overlay)
        assert mean == pytest.approx(2.0, abs=0.4)
