"""Tests for the ``repro bench`` microbenchmark harness.

Covers the report schema, the deterministic projection, the baseline
comparison gate (including the exit code on a deliberately slowed
baseline — the CI failure path), and the CLI dispatch.
"""

import copy
import json

import pytest

from repro.bench import (
    SCHEMA,
    SUITE,
    compare_reports,
    format_comparison,
    format_report,
    load_report,
    run_suite,
    strip_nondeterministic,
    workload_names,
    write_json,
)
from repro.bench.cli import main as bench_main
from repro.cli import main as repro_main

#: Fast subset for tests that only exercise harness plumbing.
FAST = ["event_loop_churn", "brahms_sampler", "churn_sessions"]


@pytest.fixture(scope="module")
def quick_report():
    """One quick-mode report over the fast subset, shared per module."""
    return run_suite(mode="quick", seed=1, repeats=1, only=FAST)


class TestSuiteDefinition:
    def test_suite_names_are_unique(self):
        names = workload_names()
        assert len(names) == len(set(names))

    def test_every_workload_has_description(self):
        assert all(workload.description for workload in SUITE)

    def test_suite_covers_required_hot_paths(self):
        names = set(workload_names())
        assert {
            "event_loop_churn",
            "shuffle_round",
            "brahms_sampler",
            "churn_sessions",
            "availability_sweep",
            "parallel_sweep",
        } <= names


class TestRunSuite:
    def test_report_schema_and_structure(self, quick_report):
        assert quick_report["schema"] == SCHEMA
        assert quick_report["mode"] == "quick"
        assert quick_report["seed"] == 1
        assert set(quick_report["benchmarks"]) == set(FAST)
        for entry in quick_report["benchmarks"].values():
            assert entry["operations"] > 0
            timing = entry["timing"]
            assert timing["median_s"] > 0
            assert timing["p90_s"] >= timing["min_s"]
            assert timing["ops_per_sec"] > 0
            assert len(timing["per_repeat_s"]) == 1

    def test_report_is_json_serializable(self, quick_report):
        parsed = json.loads(json.dumps(quick_report))
        assert parsed["schema"] == SCHEMA

    def test_strip_nondeterministic_removes_timing(self, quick_report):
        stripped = strip_nondeterministic(quick_report)
        assert "environment" not in stripped
        for entry in stripped["benchmarks"].values():
            assert "timing" not in entry
            assert "peak_rss_kb" not in entry
            assert "rss_delta_kb" not in entry
            assert "operations" in entry

    def test_rss_delta_recorded_per_workload(self, quick_report):
        """Every entry carries the workload-attributable RSS delta."""
        for entry in quick_report["benchmarks"].values():
            assert "rss_delta_kb" in entry
            delta = entry["rss_delta_kb"]
            if delta is not None:  # None only where resource is absent
                assert delta >= 0
                assert delta <= entry["peak_rss_kb"]

    def test_parallel_sweep_workload_checks_digests(self):
        """The workload runs both paths and strips its wall_ facts."""
        report = run_suite(
            mode="quick", seed=1, repeats=1, only=["parallel_sweep"]
        )
        facts = report["benchmarks"]["parallel_sweep"]["workload"]
        assert facts["digests_match"] is True
        assert facts["workers"] >= 2
        assert facts["wall_serial_s"] > 0
        stripped = strip_nondeterministic(report)
        stripped_facts = stripped["benchmarks"]["parallel_sweep"]["workload"]
        assert not any(key.startswith("wall_") for key in stripped_facts)
        assert stripped_facts["digest"] == facts["digest"]

    def test_net_codec_workload_round_trips_and_rejects(self):
        """Every clean frame decodes; every corrupt frame is classified."""
        report = run_suite(mode="quick", seed=1, repeats=1, only=["net_codec"])
        facts = report["benchmarks"]["net_codec"]["workload"]
        assert facts["decoded_ok"] == facts["messages"]
        assert facts["corrupt_frames"] > 0
        assert facts["wire_bytes"] > 0
        assert len(facts["frames_digest"]) == 16

    def test_only_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_suite(mode="quick", seed=1, repeats=1, only=["nope"])

    def test_skip_excludes_named_workloads(self):
        report = run_suite(
            mode="quick", seed=1, repeats=1, only=FAST, skip=[FAST[0]]
        )
        assert set(report["benchmarks"]) == set(FAST[1:])

    def test_skip_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_suite(mode="quick", seed=1, repeats=1, only=FAST, skip=["nope"])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_suite(mode="fast", seed=1, repeats=1)

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_suite(mode="quick", seed=1, repeats=0)


class TestInterrupt:
    """SIGINT/SIGTERM mid-suite: keep finished results, exit 130."""

    @pytest.fixture()
    def tiny_suite(self, monkeypatch):
        from repro.bench import harness as harness_module
        from repro.bench.workloads import Workload

        def fast(mode, seed):
            return lambda: {"operations": 1}

        def boom(mode, seed):
            def run():
                raise KeyboardInterrupt

            return run

        suite = (
            Workload("alpha", "finishes", fast),
            Workload("beta", "interrupted mid-measure", boom),
            Workload("gamma", "never reached", fast),
        )
        monkeypatch.setattr(harness_module, "SUITE", suite)
        return suite

    def test_run_suite_keeps_completed_workloads(self, tiny_suite):
        report = run_suite(mode="quick", seed=1, repeats=1)
        assert report["interrupted"] is True
        assert set(report["benchmarks"]) == {"alpha"}

    def test_complete_runs_have_no_interrupted_key(self, quick_report):
        assert "interrupted" not in quick_report

    def test_cli_flushes_partial_report_and_exits_130(
        self, tiny_suite, tmp_path, capsys
    ):
        path = tmp_path / "partial.json"
        code = bench_main(["--quick", "--repeats", "1", "--json", str(path)])
        assert code == 130
        report = load_report(str(path))
        assert report["interrupted"] is True
        assert set(report["benchmarks"]) == {"alpha"}
        assert "interrupted" in capsys.readouterr().err

    def test_format_report_lists_every_benchmark(self, quick_report):
        table = format_report(quick_report)
        for name in FAST:
            assert name in table


class TestWriteAndLoad:
    def test_round_trip(self, quick_report, tmp_path):
        path = tmp_path / "BENCH_micro.json"
        write_json(quick_report, str(path))
        loaded = load_report(str(path))
        assert loaded == json.loads(json.dumps(quick_report))

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError, match="not a repro bench report"):
            load_report(str(path))

    def test_load_rejects_missing_benchmarks(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": SCHEMA}))
        with pytest.raises(ValueError, match="benchmarks"):
            load_report(str(path))


class TestCompareGate:
    def test_identical_reports_pass(self, quick_report):
        comparison = compare_reports(quick_report, quick_report, threshold=0.2)
        assert comparison.ok
        assert not comparison.regressions
        assert "PASS" in format_comparison(comparison)

    def test_slowed_baseline_fails(self, quick_report):
        """A baseline that claims to be much faster must trip the gate."""
        slowed = copy.deepcopy(quick_report)
        for entry in slowed["benchmarks"].values():
            entry["timing"]["min_s"] *= 0.1
        comparison = compare_reports(slowed, quick_report, threshold=0.25)
        assert not comparison.ok
        assert set(comparison.regressions) == set(FAST)
        assert "FAIL" in format_comparison(comparison)

    def test_within_threshold_passes(self, quick_report):
        near = copy.deepcopy(quick_report)
        for entry in near["benchmarks"].values():
            entry["timing"]["min_s"] /= 1.1
        assert compare_reports(near, quick_report, threshold=0.25).ok

    def test_workload_missing_from_baseline_fails(self, quick_report):
        """A new workload the baseline has never seen must trip the gate.

        Otherwise a PR adding a benchmark would merge with that
        benchmark silently ungated; the failure message names the
        baseline file to refresh.
        """
        partial = copy.deepcopy(quick_report)
        removed = FAST[0]
        del partial["benchmarks"][removed]
        forward = compare_reports(partial, quick_report, threshold=0.2)
        assert not forward.ok
        assert forward.missing_in_baseline == [removed]
        rendered = format_comparison(forward)
        assert "FAIL" in rendered
        assert f"{removed} (missing from baseline)" in rendered
        assert "BENCH_baseline.json" in rendered

    def test_subset_run_warns_but_passes(self, quick_report):
        """``--only``/``--skip`` subset runs never fail on coverage."""
        partial = copy.deepcopy(quick_report)
        removed = FAST[0]
        del partial["benchmarks"][removed]
        backward = compare_reports(quick_report, partial, threshold=0.2)
        assert backward.ok
        assert backward.missing_in_current == [removed]
        assert "warning" in format_comparison(backward)

    def test_negative_threshold_rejected(self, quick_report):
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(quick_report, quick_report, threshold=-0.1)

    def test_improvements_are_labeled(self, quick_report):
        slower_baseline = copy.deepcopy(quick_report)
        for entry in slower_baseline["benchmarks"].values():
            entry["timing"]["min_s"] *= 10.0
        comparison = compare_reports(slower_baseline, quick_report, threshold=0.2)
        assert comparison.ok
        assert set(comparison.improvements) == set(FAST)


class TestMemoryGate:
    """The memory half of the --compare gate.

    When both sides record ``rss_delta_kb`` the gate compares the
    per-workload deltas (with a fixed floor added to both sides);
    baselines that only have ``peak_rss_kb`` are gated on that instead.
    """

    def test_identical_rss_passes(self, quick_report):
        comparison = compare_reports(quick_report, quick_report)
        assert comparison.ok
        assert not comparison.mem_regressions
        assert set(comparison.mem_rows) == set(FAST)
        # Both sides carry rss_delta_kb, so that metric wins.
        assert all(
            row["metric"] == "rss_delta_kb"
            for row in comparison.mem_rows.values()
        )

    def test_delta_blowup_fails(self, quick_report):
        """A run whose RSS delta dwarfs the baseline's must trip the gate."""
        bloated = copy.deepcopy(quick_report)
        for entry in bloated["benchmarks"].values():
            entry["rss_delta_kb"] = 10_000_000
        comparison = compare_reports(quick_report, bloated, mem_threshold=2.0)
        assert not comparison.ok
        assert set(comparison.mem_regressions) == set(FAST)
        rendered = format_comparison(comparison)
        assert "MEM REGRESSION" in rendered
        assert "(memory)" in rendered
        assert "FAIL" in rendered

    def test_floor_absorbs_small_deltas(self, quick_report):
        """Sub-floor wiggle around zero-delta entries never regresses:
        (2000 + floor) / (0 + floor) stays under any sane threshold."""
        zeroed = copy.deepcopy(quick_report)
        for entry in zeroed["benchmarks"].values():
            entry["rss_delta_kb"] = 0
        wiggled = copy.deepcopy(quick_report)
        for entry in wiggled["benchmarks"].values():
            entry["rss_delta_kb"] = 2000
        comparison = compare_reports(zeroed, wiggled, mem_threshold=2.0)
        assert comparison.ok
        assert not comparison.mem_regressions

    def test_legacy_baseline_gates_on_peak(self, quick_report):
        """Baselines predating rss_delta_kb fall back to peak_rss_kb, so
        a 4x peak still trips the gate — no flag day on refresh."""
        legacy_baseline = copy.deepcopy(quick_report)
        for entry in legacy_baseline["benchmarks"].values():
            del entry["rss_delta_kb"]
            entry["peak_rss_kb"] = max(1, entry["peak_rss_kb"] // 4)
        comparison = compare_reports(
            legacy_baseline, quick_report, mem_threshold=2.0
        )
        assert not comparison.ok
        assert set(comparison.mem_regressions) == set(FAST)
        assert all(
            row["metric"] == "peak_rss_kb"
            for row in comparison.mem_rows.values()
        )

    def test_peak_shrink_ignored_when_deltas_present(self, quick_report):
        """With deltas on both sides, peak_rss_kb no longer gates — the
        suite-order contamination it measures is exactly what the delta
        metric exists to avoid."""
        lean_baseline = copy.deepcopy(quick_report)
        for entry in lean_baseline["benchmarks"].values():
            entry["peak_rss_kb"] = max(1, entry["peak_rss_kb"] // 10)
        assert compare_reports(lean_baseline, quick_report).ok

    def test_memory_failure_is_independent_of_timing(self, quick_report):
        """A mem-only regression fails even with all timings identical."""
        bloated = copy.deepcopy(quick_report)
        for entry in bloated["benchmarks"].values():
            entry["rss_delta_kb"] = 10_000_000
        comparison = compare_reports(quick_report, bloated)
        assert not comparison.regressions
        assert comparison.mem_regressions
        assert not comparison.ok

    def test_baseline_without_rss_skips_gate(self, quick_report):
        """Baselines lacking both memory fields must not fail the gate."""
        old_baseline = copy.deepcopy(quick_report)
        for entry in old_baseline["benchmarks"].values():
            del entry["peak_rss_kb"]
            del entry["rss_delta_kb"]
        comparison = compare_reports(old_baseline, quick_report)
        assert comparison.ok
        assert not comparison.mem_rows

    def test_negative_mem_threshold_rejected(self, quick_report):
        with pytest.raises(ValueError, match="mem_threshold"):
            compare_reports(quick_report, quick_report, mem_threshold=-0.5)


class TestCli:
    def test_bench_writes_json_and_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "BENCH_micro.json"
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST, "--json", str(path)]
        )
        assert code == 0
        report = load_report(str(path))
        assert set(report["benchmarks"]) == set(FAST)
        assert "repro bench" in capsys.readouterr().out

    def test_compare_exit_codes(self, tmp_path, capsys):
        """Exit 0 against an honest baseline, 1 against a slowed one."""
        baseline_path = tmp_path / "baseline.json"
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST,
             "--json", str(baseline_path)]
        )
        assert code == 0
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST,
             "--compare", str(baseline_path), "--threshold", "1000"]
        )
        assert code == 0

        baseline = load_report(str(baseline_path))
        for entry in baseline["benchmarks"].values():
            entry["timing"]["min_s"] *= 1e-6
        slowed_path = tmp_path / "slowed.json"
        write_json(baseline, str(slowed_path))
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST,
             "--compare", str(slowed_path), "--threshold", "0.25"]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_mem_gate_exit_code(self, tmp_path, capsys):
        """A baseline claiming a fraction of the RSS must exit 1."""
        baseline_path = tmp_path / "baseline.json"
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST,
             "--json", str(baseline_path)]
        )
        assert code == 0
        baseline = load_report(str(baseline_path))
        for entry in baseline["benchmarks"].values():
            # A legacy-shaped baseline: peak only, claimed implausibly
            # lean, so the peak fallback path is what must trip.
            del entry["rss_delta_kb"]
            entry["peak_rss_kb"] = max(1, entry["peak_rss_kb"] // 100)
        lean_path = tmp_path / "lean.json"
        write_json(baseline, str(lean_path))
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST,
             "--compare", str(lean_path),
             "--threshold", "1000", "--mem-threshold", "2.0"]
        )
        assert code == 1
        assert "MEM REGRESSION" in capsys.readouterr().out

    def test_skip_flag_excludes_workload(self, tmp_path, capsys):
        path = tmp_path / "BENCH_micro.json"
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST,
             "--skip", FAST[-1], "--json", str(path)]
        )
        assert code == 0
        assert set(load_report(str(path))["benchmarks"]) == set(FAST[:-1])

    def test_ungated_workload_exit_code(self, tmp_path, capsys):
        """Comparing against a baseline missing a workload must exit 1."""
        baseline_path = tmp_path / "baseline.json"
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST[1:],
             "--json", str(baseline_path)]
        )
        assert code == 0
        code = bench_main(
            ["--quick", "--repeats", "1", "--only", *FAST,
             "--compare", str(baseline_path), "--threshold", "1000"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "missing from baseline" in out
        assert "BENCH_baseline.json" in out

    def test_unknown_only_name_exits_2_with_known_list(self, capsys):
        """A typo in --only lists every known workload, exit 2."""
        assert bench_main(["--quick", "--only", "event_loop_chrun"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark name(s) for --only: event_loop_chrun" in err
        for name in workload_names():
            assert name in err

    def test_unknown_skip_name_exits_2_with_known_list(self, capsys):
        assert bench_main(
            ["--quick", "--skip", "nope", "sharded_churn", "wat"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark name(s) for --skip: nope, wat" in err
        assert "known benchmarks:" in err

    def test_negative_threshold_exit_code(self, capsys):
        assert bench_main(["--quick", "--threshold", "-1"]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_negative_mem_threshold_exit_code(self, capsys):
        assert bench_main(["--quick", "--mem-threshold", "-1"]) == 2
        assert "non-negative" in capsys.readouterr().err

    def test_repro_cli_dispatches_bench(self, tmp_path, capsys):
        path = tmp_path / "BENCH_micro.json"
        code = repro_main(
            ["bench", "--quick", "--repeats", "1",
             "--only", "brahms_sampler", "--json", str(path)]
        )
        assert code == 0
        assert load_report(str(path))["benchmarks"]["brahms_sampler"]
