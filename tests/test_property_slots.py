"""Property-based tests for the Brahms-style sampler slots."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Pseudonym, SamplerSlots
from repro.privlink import Address
from repro.rng import PSEUDONYM_BITS

_VALUE = st.integers(min_value=0, max_value=(1 << PSEUDONYM_BITS) - 1)
_EXPIRY = st.one_of(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    st.just(math.inf),
)


@st.composite
def pseudonyms(draw):
    value = draw(_VALUE)
    expiry = draw(_EXPIRY)
    return Pseudonym(value=value, address=Address(draw(st.integers(1, 10**6))), expires_at=expiry)


@st.composite
def pseudonym_batches(draw):
    return draw(st.lists(pseudonyms(), min_size=0, max_size=30))


class TestSlotInvariants:
    @given(batch=pseudonym_batches(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_each_slot_holds_nearest_value(self, batch, seed):
        """After any batch, each slot holds a pseudonym whose distance to
        the slot reference is minimal among everything offered."""
        slots = SamplerSlots(6, np.random.default_rng(seed))
        slots.offer_batch(batch)
        if not batch:
            assert slots.filled() == 0
            return
        values = np.array([p.value for p in batch], dtype=np.int64)
        for index in range(slots.size):
            entry = slots.entry(index)
            assert entry is not None
            ref = int(slots.references[index])
            best = np.abs(values - ref).min()
            assert abs(entry.value - ref) == best

    @given(batch=pseudonym_batches(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_sequential(self, batch, seed):
        batched = SamplerSlots(5, np.random.default_rng(seed))
        sequential = SamplerSlots(5, np.random.default_rng(seed))
        batched.offer_batch(batch)
        for pseudonym in batch:
            sequential.offer(pseudonym)
        for index in range(5):
            assert batched.entry(index) == sequential.entry(index)

    @given(
        batch=pseudonym_batches(),
        seed=st.integers(0, 1000),
        now=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_expire_removes_exactly_expired(self, batch, seed, now):
        slots = SamplerSlots(5, np.random.default_rng(seed))
        slots.offer_batch(batch)
        slots.expire(now)
        for index in range(slots.size):
            entry = slots.entry(index)
            if entry is not None:
                assert not entry.is_expired(now)

    @given(batch=pseudonym_batches(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_idempotent_reoffer(self, batch, seed):
        """Re-offering the same batch never changes any slot."""
        slots = SamplerSlots(5, np.random.default_rng(seed))
        slots.offer_batch(batch)
        before = [slots.entry(index) for index in range(slots.size)]
        changed = slots.offer_batch(batch)
        after = [slots.entry(index) for index in range(slots.size)]
        assert changed == 0
        assert before == after

    @given(
        first=pseudonym_batches(),
        second=pseudonym_batches(),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_order_independence_of_final_distance(self, first, second, seed):
        """The final distance per slot is the min over all offers,
        regardless of batch boundaries or ordering."""
        one = SamplerSlots(4, np.random.default_rng(seed))
        two = SamplerSlots(4, np.random.default_rng(seed))
        one.offer_batch(first)
        one.offer_batch(second)
        two.offer_batch(second)
        two.offer_batch(first)
        for index in range(4):
            a, b = one.entry(index), two.entry(index)
            if a is None or b is None:
                assert a is None and b is None
                continue
            ref = int(one.references[index])
            assert abs(a.value - ref) == abs(b.value - ref)
