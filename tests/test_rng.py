"""Tests for repro.rng: deterministic substreams and random bits."""

import numpy as np
import pytest

from repro.rng import PSEUDONYM_BITS, RandomStreams, random_bits


class TestRandomStreams:
    def test_same_seed_same_substream(self):
        a = RandomStreams(7).substream("churn")
        b = RandomStreams(7).substream("churn")
        assert a.random() == b.random()

    def test_different_keys_differ(self):
        streams = RandomStreams(7)
        a = streams.substream("churn")
        b = streams.substream("node", 0)
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        a = RandomStreams(1).substream("x")
        b = RandomStreams(2).substream("x")
        assert a.random() != b.random()

    def test_substream_independent_of_creation_order(self):
        first = RandomStreams(3)
        _ = first.substream("a").random()
        value_after = first.substream("b").random()
        second = RandomStreams(3)
        value_direct = second.substream("b").random()
        assert value_after == value_direct

    def test_multipart_keys(self):
        streams = RandomStreams(5)
        a = streams.substream("node", 1)
        b = streams.substream("node", 2)
        assert a.random() != b.random()

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(1).substream()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    def test_spawn_derives_new_factory(self):
        parent = RandomStreams(9)
        child = parent.spawn("worker")
        assert isinstance(child, RandomStreams)
        assert child.seed != parent.seed
        # Deterministic derivation.
        assert parent.spawn("worker").seed == child.seed

    def test_seed_property(self):
        assert RandomStreams(42).seed == 42


class TestRandomBits:
    def test_range(self, rng):
        for _ in range(200):
            value = random_bits(rng)
            assert 0 <= value < (1 << PSEUDONYM_BITS)

    def test_small_widths(self, rng):
        for bits in (1, 8, 31, 32, 33, 64):
            value = random_bits(rng, bits)
            assert 0 <= value < (1 << bits)

    def test_invalid_bits(self, rng):
        with pytest.raises(ValueError):
            random_bits(rng, 0)

    def test_uniformity_rough(self):
        rng = np.random.default_rng(0)
        values = [random_bits(rng, 8) for _ in range(4000)]
        mean = np.mean(values)
        assert 110 < mean < 145  # expected 127.5

    def test_determinism(self):
        a = [random_bits(np.random.default_rng(4), 63)]
        b = [random_bits(np.random.default_rng(4), 63)]
        assert a == b
