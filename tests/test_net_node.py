"""NetEndpoint behavior: bootstrap backoff, liveness, pseudonym service."""

import numpy as np
import pytest

from repro.errors import NetError
from repro.net.codec import Goodbye, Heartbeat, decode_frame, encode_frame
from repro.net.endpoint import ADDRESS_KIND, NetEndpoint
from repro.net.peers import PeerTable
from repro.net.transport import FaultPlan, LoopbackNetwork
from repro.privlink import Address
from repro.sim import Simulator


def _endpoint(sim, network, node_id, bootstrap=(), **kwargs):
    transport = network.transport()
    return NetEndpoint(
        node_id=node_id,
        clock=sim,
        transport=transport,
        rng=np.random.default_rng(1000 + node_id),
        bootstrap=bootstrap,
        **kwargs,
    )


def _pair(sim, seed=5, faults=None, **kwargs):
    """A seed endpoint plus one node bootstrapping to it."""
    network = LoopbackNetwork(sim, np.random.default_rng(seed), faults=faults)
    seed_ep = _endpoint(sim, network, 0)
    joiner = _endpoint(
        sim, network, 1, bootstrap=(seed_ep.local_address,), **kwargs
    )
    return network, seed_ep, joiner


class TestPeerTable:
    def test_two_level_detection(self):
        table = PeerTable(suspect_after=3.0, dead_after=9.0)
        table.note_heard(1, ("h", 1), now=0.0)
        assert table.check(2.0) == ([], [])
        newly_suspect, dead = table.check(4.0)
        assert [r.node_id for r in newly_suspect] == [1]
        assert dead == []
        # Already suspect: not reported twice.
        assert table.check(5.0) == ([], [])
        # Traffic clears suspicion.
        table.note_heard(1, ("h", 1), now=5.0)
        assert not table._peers[1].suspect
        # Full silence kills.
        _, dead = table.check(15.0)
        assert [r.node_id for r in dead] == [1]
        assert 1 not in table
        assert table.suspected_total == 1
        assert table.declared_dead_total == 1

    def test_invalid_timeouts(self):
        with pytest.raises(NetError):
            PeerTable(suspect_after=5.0, dead_after=5.0)
        with pytest.raises(NetError):
            PeerTable(suspect_after=0.0, dead_after=5.0)


class TestBootstrap:
    def test_seed_starts_bootstrapped(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(1))
        seed_ep = _endpoint(sim, network, 0)
        assert seed_ep.bootstrapped

    def test_join_via_seed(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        assert not joiner.bootstrapped
        sim.run_until(2.0)
        assert joiner.bootstrapped
        assert joiner.counters["bootstrap_attempts"] == 1
        assert 1 in seed_ep.table and 0 in joiner.table

    def test_backoff_retries_until_seed_appears(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(5))
        # Reserve the seed's address but install the seed only later.
        seed_transport = network.transport()
        joiner = _endpoint(
            sim, network, 1, bootstrap=(seed_transport.local_address,),
            backoff_base=0.25, backoff_factor=2.0, backoff_max=4.0,
        )
        joiner.start()
        sim.run_until(3.0)
        attempts_before = joiner.counters["bootstrap_attempts"]
        assert attempts_before > 1  # kept retrying
        assert not joiner.bootstrapped
        # The seed comes up on the reserved address: next retry succeeds.
        seed_ep = NetEndpoint(
            node_id=0, clock=sim, transport=seed_transport,
            rng=np.random.default_rng(1000),
        )
        seed_ep.start()
        sim.run_until(10.0)
        assert joiner.bootstrapped

    def test_gives_up_after_max_attempts(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(5))
        joiner = _endpoint(
            sim, network, 1, bootstrap=(("127.0.0.1", 1),),
            bootstrap_attempts=3, backoff_base=0.1, backoff_max=0.2,
        )
        joiner.start()
        sim.run_until(20.0)
        assert joiner.counters["bootstrap_attempts"] == 3
        assert joiner.counters["bootstrap_failures"] == 1
        assert not joiner.bootstrapped

    def test_backoff_delays_grow_exponentially_to_cap(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(5))
        joiner = _endpoint(
            sim, network, 1, bootstrap=(("127.0.0.1", 1),),
            backoff_base=0.25, backoff_factor=2.0, backoff_max=1.0,
            bootstrap_attempts=5,
        )
        joiner.start()
        sim.run_until(20.0)
        delays = [
            float(line.rsplit("retry in ", 1)[1])
            for line in joiner.log
            if "retry in" in line
        ]
        assert delays == [0.25, 0.5, 1.0, 1.0, 1.0]

    def test_invalid_schedule_refused(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(1))
        with pytest.raises(NetError):
            _endpoint(sim, network, 1, bootstrap_attempts=0)
        with pytest.raises(NetError):
            _endpoint(sim, network, 1, backoff_base=-1.0)


class TestLiveness:
    def test_heartbeats_keep_peers_alive(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        sim.run_until(30.0)
        assert 1 in seed_ep.table
        assert seed_ep.counters["peers_declared_dead"] == 0
        assert joiner.counters["peers_declared_dead"] == 0

    def test_silent_peer_probed_then_declared_dead(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(
            sim, suspect_after=3.0, dead_after=9.0
        )
        seed_ep.start()
        joiner.start()
        sim.run_until(2.0)
        assert 1 in seed_ep.table
        # The joiner crashes: timers die and the socket closes, but —
        # unlike shutdown() — no goodbye goes out.
        joiner._heartbeat.stop()
        joiner._liveness.stop()
        joiner._transport.close()
        sim.run_until(6.0)
        assert seed_ep.counters["probes_sent"] >= 1
        assert 1 in seed_ep.table  # still suspect, not dead
        sim.run_until(15.0)
        assert 1 not in seed_ep.table
        assert seed_ep.counters["peers_declared_dead"] == 1

    def test_goodbye_removes_immediately(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        sim.run_until(2.0)
        joiner.shutdown()  # polite: sends Goodbye
        sim.run_until(3.0)
        assert 1 not in seed_ep.table
        assert seed_ep.counters["peers_declared_dead"] == 0
        assert any("goodbye" in line for line in seed_ep.log)


class TestPseudonymService:
    def test_create_registers_with_seed(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        sim.run_until(2.0)
        address = joiner.create_endpoint()
        assert address.kind == ADDRESS_KIND
        assert address.token != 0
        sim.run_until(3.0)
        # The seed's directory now resolves the token.
        assert seed_ep._directory[address.token] == joiner.local_address

    def test_lookup_flushes_pending_payloads(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        other = _endpoint(
            sim, network, 2, bootstrap=(seed_ep.local_address,)
        )
        seed_ep.start()
        joiner.start()
        other.start()
        sim.run_until(2.0)
        address = joiner.create_endpoint()
        sim.run_until(3.0)
        received = []
        joiner.attach(received.append, lambda: True)
        # 'other' has no route for the token: the payload parks behind a
        # lookup to the seed, then flushes when the reply lands.
        other.send_to_endpoint(address, {"msg": "hi"})
        assert received == []
        sim.run_until(5.0)
        assert received == [{"msg": "hi"}]

    def test_unknown_token_drops_when_not_found(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        sim.run_until(2.0)
        joiner.send_to_endpoint(
            Address(token=999, kind=ADDRESS_KIND), {"msg": "lost"}
        )
        sim.run_until(4.0)
        assert joiner.counters["unknown_endpoint_drops"] == 1

    def test_close_endpoint_unregisters(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        sim.run_until(2.0)
        address = joiner.create_endpoint()
        sim.run_until(3.0)
        joiner.close_endpoint(address)
        sim.run_until(4.0)
        assert address.token not in seed_ep._directory


class TestReceivePath:
    def test_garbage_frame_counted_not_raised(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        raw = network.transport()
        raw.send(seed_ep.local_address, b"\xde\xad\xbe\xef")
        sim.run_until(1.0)
        assert seed_ep.counters["codec_rejects"] == 1

    def test_probe_answered(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.start()
        joiner.start()
        sim.run_until(2.0)
        inbox = []
        raw = network.transport()
        raw.set_receiver(lambda data, source: inbox.append(decode_frame(data)))
        raw.send(
            seed_ep.local_address,
            encode_frame(Heartbeat(node_id=1, seq=1, reply_wanted=True)),
        )
        sim.run_until(3.0)
        beats = [m for m in inbox if isinstance(m, Heartbeat)]
        assert beats and beats[0].node_id == 0

    def test_offline_node_drops_delivery(self):
        sim = Simulator()
        network, seed_ep, joiner = _pair(sim)
        seed_ep.attach(lambda payload: None, lambda: False)  # offline
        seed_ep.start()
        joiner.start()
        sim.run_until(2.0)
        joiner.send_to_node(0, {"app": 1})
        sim.run_until(3.0)
        assert seed_ep.counters["offline_drops"] == 1

    def test_double_start_refused(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(1))
        endpoint = _endpoint(sim, network, 0)
        endpoint.start()
        with pytest.raises(NetError):
            endpoint.start()

    def test_shutdown_idempotent(self):
        sim = Simulator()
        network = LoopbackNetwork(sim, np.random.default_rng(1))
        endpoint = _endpoint(sim, network, 0)
        endpoint.start()
        endpoint.shutdown()
        endpoint.shutdown()  # no error
        assert any("shutdown" in line for line in endpoint.log)
