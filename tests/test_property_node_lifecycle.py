"""Stateful property test: the OverlayNode lifecycle under arbitrary
interleavings of churn transitions and time advancement.

A hypothesis rule-based state machine drives two trusted nodes through
random come_online / go_offline / run sequences and checks the
protocol's safety invariants after every step.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core import OverlayNode
from repro.privlink import make_ideal_link_layer
from repro.sim import Simulator

LIFETIME = 12.0


class NodeLifecycleMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.layer = make_ideal_link_layer(
            self.sim, np.random.default_rng(7), max_latency=0.01
        )
        self.nodes = [
            OverlayNode(
                node_id=index,
                trusted_neighbors=[1 - index],
                slot_count=4,
                cache_size=12,
                shuffle_length=5,
                pseudonym_lifetime=LIFETIME,
                sim=self.sim,
                link_layer=self.layer,
                rng=np.random.default_rng(100 + index),
            )
            for index in range(2)
        ]
        self.created = [0, 0]

    @rule(index=st.integers(0, 1))
    def come_online(self, index):
        self.nodes[index].come_online()

    @rule(index=st.integers(0, 1))
    def go_offline(self, index):
        self.nodes[index].go_offline()

    @rule(delta=st.floats(min_value=0.1, max_value=8.0))
    def advance(self, delta):
        self.sim.run_until(self.sim.now + delta)

    @invariant()
    def online_nodes_have_valid_pseudonyms(self):
        now = self.sim.now
        for node in self.nodes:
            if node.online:
                assert node.own is not None
                # Valid, except exactly at the expiry instant before the
                # renewal event runs (events at t == now may be pending).
                assert node.own.expires_at >= now

    @invariant()
    def cache_bounded_and_never_self(self):
        for node in self.nodes:
            assert len(node.cache) <= node.cache.capacity
            if node.own is not None:
                values = {p.value for p in node.cache.pseudonyms()}
                assert node.own.value not in values

    @invariant()
    def counters_consistent(self):
        for node in self.nodes:
            counters = node.counters
            assert counters.messages_sent >= (
                counters.shuffles_initiated + counters.responses_sent
            ) - 1  # equality; slack for no reason other than clarity
            assert counters.online_time >= 0.0
            assert counters.pseudonyms_created >= (1 if node.own else 0)

    @invariant()
    def link_counts_consistent(self):
        for node in self.nodes:
            assert node.links.trusted_degree == 1
            assert node.links.pseudonym_degree() <= max(4, 1)

    @invariant()
    def offline_nodes_do_not_tick(self):
        for node in self.nodes:
            if not node.online:
                assert not node._shuffler.running


NodeLifecycleMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestNodeLifecycle = NodeLifecycleMachine.TestCase
