"""Microbenchmark harness: seeded workloads, JSON reports, CI gate.

``repro bench`` runs a suite of seeded microbenchmarks over the
simulator and protocol hot paths (event loop under churn, shuffle
rounds, the Brahms sampler fold, churn trace generation, a miniature
availability sweep), emits a machine-readable ``BENCH_micro.json``
(median/p90 over N repeats, ops/sec, peak RSS) next to a human table,
and can gate CI by comparing against a committed baseline
(``--compare BASELINE.json --threshold 0.25`` exits non-zero on
regression).  See ``docs/benchmarking.md``.
"""

from .compare import BenchComparison, compare_reports, format_comparison, load_report
from .harness import (
    SCHEMA,
    format_report,
    run_suite,
    strip_nondeterministic,
    write_json,
)
from .workloads import SUITE, Workload, workload_names

__all__ = [
    "SCHEMA",
    "SUITE",
    "Workload",
    "BenchComparison",
    "compare_reports",
    "format_comparison",
    "load_report",
    "format_report",
    "run_suite",
    "strip_nondeterministic",
    "write_json",
    "workload_names",
]
