"""Benchmark runner: repeats, statistics, JSON report, human table.

The harness runs each :class:`~repro.bench.workloads.Workload` for N
repeats, recording wall-clock time per repeat and the deterministic
workload facts the timed callable returns.  Everything nondeterministic
(wall times, derived throughput, peak RSS, environment) lives under
keys a determinism check can strip — see :func:`strip_nondeterministic`
— so two same-seed runs compare equal on the rest.

Host-clock reads are the point of a benchmark harness; they never feed
simulation results, hence the explicit DET003 suppressions.
"""

from __future__ import annotations

import json
import math
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from .workloads import SUITE, Workload

__all__ = [
    "SCHEMA",
    "run_suite",
    "strip_nondeterministic",
    "format_report",
    "write_json",
]

#: Schema identifier stamped into every report.
SCHEMA = "repro-bench/1"

#: Report keys that may differ between identical-seed runs.
NONDETERMINISTIC_KEYS = (
    "timing",
    "peak_rss_kb",
    "rss_delta_kb",
    "environment",
    "generated_by",
)


def _peak_rss_kb() -> Optional[int]:
    """Process peak RSS in KiB, or None where unavailable (Windows)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(usage // 1024)
    return int(usage)


def _reset_peak_rss() -> bool:
    """Reset the kernel's RSS high-water mark down to the current RSS.

    Linux-only (writing ``5`` to ``/proc/self/clear_refs``).  Doing this
    before each workload makes its ``rss_delta_kb`` an order-independent
    measurement of the workload's own footprint: without the reset the
    high-water mark is monotone for the life of the process, so a
    workload running after a bigger one reads a delta of zero while the
    same workload run ``--only``-solo reads its full working set — and
    the memory gate would flag the difference as a regression.  Returns
    ``False`` where the proc interface is unavailable, in which case
    deltas degrade to differences of the monotone peak.
    """
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
    except OSError:  # pragma: no cover - non-Linux / restricted proc
        return False
    return True


def _percentile(sorted_times: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    rank = max(1, int(math.ceil(fraction * len(sorted_times))))
    return sorted_times[rank - 1]


def run_suite(
    mode: str = "quick",
    seed: int = 1,
    repeats: int = 3,
    only: Optional[Sequence[str]] = None,
    skip: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the benchmark suite and return the report dict.

    Parameters
    ----------
    mode:
        ``"quick"`` (CI-sized) or ``"full"``.
    seed:
        Root seed for every workload's inputs.
    repeats:
        Timed repetitions per benchmark (fresh setup each repeat).
    only:
        Optional subset of workload names to run.
    skip:
        Optional workload names to leave out (applied after ``only``);
        how the CI bench-smoke job keeps the scale workload off its
        plate while ``scale-smoke`` runs it alone.
    progress:
        Optional callable fed one line per benchmark as it finishes.
    """
    if mode not in ("quick", "full"):
        raise ValueError(f"mode must be 'quick' or 'full', got {mode!r}")
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    names = {workload.name for workload in SUITE}
    selected: List[Workload] = list(SUITE)
    if only:
        unknown = set(only) - names
        if unknown:
            raise ValueError(f"unknown benchmark(s): {sorted(unknown)}")
        selected = [workload for workload in SUITE if workload.name in set(only)]
    if skip:
        unknown = set(skip) - names
        if unknown:
            raise ValueError(f"unknown benchmark(s): {sorted(unknown)}")
        selected = [
            workload for workload in selected if workload.name not in set(skip)
        ]

    benchmarks: Dict[str, Any] = {}
    interrupted = False
    overall_peak_kb: Optional[int] = None
    for workload in selected:
        times: List[float] = []
        facts: Dict[str, Any] = {}
        # Resetting the high-water mark (Linux) also resets ru_maxrss,
        # so peak_rss_kb keeps its process-wide meaning via the running
        # maximum below.
        _reset_peak_rss()
        rss_before = _peak_rss_kb()
        try:
            for _ in range(repeats):
                run_once = workload.prepare(mode, seed)
                started = time.perf_counter()
                facts = run_once()
                elapsed = time.perf_counter() - started
                times.append(elapsed)
        except KeyboardInterrupt:
            # Drop the half-measured workload; keep what finished so the
            # caller can still flush a partial report.
            interrupted = True
            break
        ordered = sorted(times)
        median_s = _percentile(ordered, 0.5)
        operations = int(facts.get("operations", 0))
        workload_facts = {
            key: value for key, value in facts.items() if key != "operations"
        }
        rss_after = _peak_rss_kb()
        # How much this workload raised the RSS high-water mark above
        # the RSS it started from.  With the per-workload reset above
        # this is the workload's own footprint, independent of where in
        # the suite (or how `--only`-restricted a run) it executed — it
        # is what the memory gate prefers when the baseline has it (see
        # bench.compare).  Without the reset (non-Linux) the delta
        # degrades to a difference of the monotone peak, where zero
        # means the workload fit inside already-chartered pages.
        if rss_before is None or rss_after is None:
            rss_delta = None
        else:
            rss_delta = max(0, rss_after - rss_before)
        if rss_after is not None:
            overall_peak_kb = max(overall_peak_kb or 0, rss_after)
        benchmarks[workload.name] = {
            "description": workload.description,
            "operations": operations,
            "workload": workload_facts,
            "timing": {
                "median_s": median_s,
                "p90_s": _percentile(ordered, 0.9),
                "min_s": ordered[0],
                "per_repeat_s": times,
                "ops_per_sec": (operations / median_s) if median_s > 0 else 0.0,
            },
            "peak_rss_kb": overall_peak_kb if rss_after is not None else None,
            "rss_delta_kb": rss_delta,
        }
        if progress is not None:
            entry = benchmarks[workload.name]
            progress(
                f"{workload.name}: median {median_s * 1e3:.1f} ms, "
                f"{entry['timing']['ops_per_sec']:,.0f} ops/sec "
                f"({operations} ops x {repeats} repeats)"
            )

    report = {
        "schema": SCHEMA,
        "mode": mode,
        "seed": seed,
        "repeats": repeats,
        "benchmarks": benchmarks,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": sys.platform,
        },
    }
    if interrupted:
        # Only present on interrupted runs, so complete reports keep
        # their schema (and the determinism pins) unchanged.
        report["interrupted"] = True
    return report


def strip_nondeterministic(report: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic projection of a report.

    Two same-seed, same-mode runs must compare equal after this strip;
    ``tests/test_determinism.py`` pins that property.  Workload facts
    whose keys start with ``wall_`` are wall-clock measurements by
    convention (e.g. the parallel-sweep scaling facts) and are stripped
    along with the harness timing blocks.
    """

    def strip_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
        out = {
            key: value
            for key, value in entry.items()
            if key not in NONDETERMINISTIC_KEYS
        }
        workload = out.get("workload")
        if isinstance(workload, dict):
            out["workload"] = {
                key: value
                for key, value in workload.items()
                if not key.startswith("wall_")
            }
        return out

    out = {
        key: value
        for key, value in report.items()
        if key not in NONDETERMINISTIC_KEYS
    }
    out["benchmarks"] = {
        name: strip_entry(entry)
        for name, entry in report.get("benchmarks", {}).items()
    }
    return out


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable table of one report."""
    header = (
        f"repro bench — mode={report['mode']} seed={report['seed']} "
        f"repeats={report['repeats']}"
    )
    lines = [header, "=" * len(header)]
    name_width = max(
        [len(name) for name in report["benchmarks"]] + [len("benchmark")]
    )
    lines.append(
        f"{'benchmark':<{name_width}}  {'median':>10}  {'p90':>10}  "
        f"{'ops':>9}  {'ops/sec':>12}  {'rss_kb':>8}"
    )
    for name, entry in report["benchmarks"].items():
        timing = entry["timing"]
        rss = entry.get("peak_rss_kb")
        lines.append(
            f"{name:<{name_width}}  "
            f"{timing['median_s'] * 1e3:>8.1f}ms  "
            f"{timing['p90_s'] * 1e3:>8.1f}ms  "
            f"{entry['operations']:>9}  "
            f"{timing['ops_per_sec']:>12,.0f}  "
            f"{rss if rss is not None else '-':>8}"
        )
    return "\n".join(lines)


def write_json(report: Dict[str, Any], path: str) -> None:
    """Write a report as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
