"""``python -m repro.bench`` — same as ``repro bench``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
