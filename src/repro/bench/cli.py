"""``repro bench`` — run the microbenchmark suite, emit JSON, gate CI.

Usage::

    repro bench                         # full sizes, human table
    repro bench --quick --json BENCH_micro.json
    repro bench --quick --compare benchmarks/results/BENCH_baseline.json \
        --threshold 0.25                # exit 1 on regression
    repro bench --only event_loop_churn shuffle_round --repeats 5
    repro bench --quick --skip million_node_churn   # everything but the scale run
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..shutdown import EXIT_INTERRUPTED, graceful_shutdown
from .compare import compare_reports, format_comparison, load_report
from .harness import format_report, run_suite, write_json
from .workloads import workload_names

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Seeded microbenchmarks of the simulator and protocol "
        "hot paths, with JSON output and a baseline regression gate.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workloads (default: full sizes)",
    )
    parser.add_argument("--seed", type=int, default=1, help="root seed (default 1)")
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per benchmark (default 3)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="run only these benchmarks",
    )
    parser.add_argument(
        "--skip",
        nargs="+",
        metavar="NAME",
        help="run everything except these benchmarks (applied after --only)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the machine-readable report here (e.g. BENCH_micro.json)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="compare against a baseline report; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed median slowdown fraction for --compare (default 0.2)",
    )
    parser.add_argument(
        "--mem-threshold",
        type=float,
        default=2.0,
        help="allowed peak-RSS growth fraction for --compare; lenient by "
        "default because RSS is coarse and allocator-dependent (default 2.0)",
    )
    return parser


def _validate_names(option: str, names: Optional[List[str]]) -> Optional[str]:
    """An error message for unknown workload names, or None if all known.

    Explicit (rather than argparse ``choices=``) so a typo gets the
    full known-name list on stderr instead of a truncated usage line.
    """
    if not names:
        return None
    known = workload_names()
    unknown = sorted(set(names) - set(known))
    if not unknown:
        return None
    return (
        f"error: unknown benchmark name(s) for {option}: "
        f"{', '.join(unknown)}\nknown benchmarks: {', '.join(known)}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.threshold < 0:
        print("error: --threshold must be non-negative", file=sys.stderr)
        return 2
    if args.mem_threshold < 0:
        print("error: --mem-threshold must be non-negative", file=sys.stderr)
        return 2
    for option, names in (("--only", args.only), ("--skip", args.skip)):
        message = _validate_names(option, names)
        if message is not None:
            print(message, file=sys.stderr)
            return 2

    mode = "quick" if args.quick else "full"
    try:
        with graceful_shutdown():
            report = run_suite(
                mode=mode,
                seed=args.seed,
                repeats=args.repeats,
                only=args.only,
                skip=args.skip,
                progress=print,
            )
    except KeyboardInterrupt:
        # The signal landed outside run_suite's workload loop: nothing
        # measured yet, nothing to flush.
        print("\ninterrupted before any benchmark completed", file=sys.stderr)
        return EXIT_INTERRUPTED
    print()
    print(format_report(report))
    if args.json:
        write_json(report, args.json)
        print(f"\nreport written to {args.json}")

    if report.get("interrupted"):
        # Partial run: the report (if any) is flushed above, but it
        # covers only the workloads that finished — never gate on it.
        print(
            f"\ninterrupted: {len(report['benchmarks'])} benchmark(s) "
            "completed before the signal; comparison skipped",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED

    if args.compare:
        baseline = load_report(args.compare)
        comparison = compare_reports(
            baseline,
            report,
            threshold=args.threshold,
            mem_threshold=args.mem_threshold,
        )
        print()
        print(format_comparison(comparison))
        if not comparison.ok:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
