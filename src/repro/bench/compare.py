"""Baseline comparison: the CI perf-regression gate.

``repro bench --compare BASELINE.json --threshold 0.2`` reruns the
suite (or takes a just-produced report) and compares per-benchmark
best-of-repeats wall time against the baseline.  A benchmark regresses
when

    current_min > baseline_min * (1 + threshold)

The minimum over repeats is the gate statistic because timing noise on
shared runners is purely additive (scheduler interference only ever
slows a repeat down), so the fastest repeat is the least-contaminated
estimate of the true cost; medians of small repeat counts wobble enough
to trip a coarse threshold on their own.

Any regression makes the comparison fail (process exit code 1), which
is what stops a PR from silently doubling simulation time.  Benchmarks
present on only one side are reported but never fail the gate — that
keeps adding/renaming benchmarks a one-PR change.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

__all__ = ["BenchComparison", "compare_reports", "load_report", "format_comparison"]


@dataclasses.dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing one report against a baseline."""

    threshold: float
    #: name -> (baseline_min_s, current_min_s, ratio)
    rows: Dict[str, Any]
    regressions: List[str]
    improvements: List[str]
    missing_in_current: List[str]
    missing_in_baseline: List[str]

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no benchmark regressed)."""
        return not self.regressions


def load_report(path: str) -> Dict[str, Any]:
    """Load a benchmark report, validating its schema marker."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if not isinstance(schema, str) or not schema.startswith("repro-bench/"):
        raise ValueError(f"{path} is not a repro bench report (schema={schema!r})")
    if "benchmarks" not in report:
        raise ValueError(f"{path} has no 'benchmarks' section")
    return report


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = 0.2,
    improvement_margin: Optional[float] = None,
) -> BenchComparison:
    """Compare two reports; see module docstring for the gate rule.

    ``improvement_margin`` (default: the threshold) only labels wins in
    the summary; it never affects the pass/fail outcome.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if improvement_margin is None:
        improvement_margin = threshold
    base_benchmarks = baseline["benchmarks"]
    cur_benchmarks = current["benchmarks"]
    rows: Dict[str, Any] = {}
    regressions: List[str] = []
    improvements: List[str] = []
    for name in base_benchmarks:
        if name not in cur_benchmarks:
            continue
        base_min = float(base_benchmarks[name]["timing"]["min_s"])
        cur_min = float(cur_benchmarks[name]["timing"]["min_s"])
        ratio = (cur_min / base_min) if base_min > 0 else float("inf")
        rows[name] = {
            "baseline_min_s": base_min,
            "current_min_s": cur_min,
            "ratio": ratio,
        }
        if ratio > 1.0 + threshold:
            regressions.append(name)
        elif ratio < 1.0 - improvement_margin:
            improvements.append(name)
    return BenchComparison(
        threshold=threshold,
        rows=rows,
        regressions=sorted(regressions),
        improvements=sorted(improvements),
        missing_in_current=sorted(set(base_benchmarks) - set(cur_benchmarks)),
        missing_in_baseline=sorted(set(cur_benchmarks) - set(base_benchmarks)),
    )


def format_comparison(comparison: BenchComparison) -> str:
    """Human-readable comparison table plus verdict line."""
    lines = [
        "benchmark comparison on best-of-repeats time "
        f"(fail when ratio > {1.0 + comparison.threshold:.2f})",
    ]
    if comparison.rows:
        name_width = max(len(name) for name in comparison.rows)
        lines.append(
            f"{'benchmark':<{name_width}}  {'baseline':>10}  {'current':>10}  "
            f"{'ratio':>6}  verdict"
        )
        for name, row in comparison.rows.items():
            if name in comparison.regressions:
                verdict = "REGRESSION"
            elif name in comparison.improvements:
                verdict = "improved"
            else:
                verdict = "ok"
            lines.append(
                f"{name:<{name_width}}  "
                f"{row['baseline_min_s'] * 1e3:>8.1f}ms  "
                f"{row['current_min_s'] * 1e3:>8.1f}ms  "
                f"{row['ratio']:>6.2f}  {verdict}"
            )
    for name in comparison.missing_in_current:
        lines.append(f"warning: {name} present in baseline only (not compared)")
    for name in comparison.missing_in_baseline:
        lines.append(f"warning: {name} present in current run only (not compared)")
    if comparison.ok:
        lines.append("PASS: no benchmark regressed beyond the threshold")
    else:
        lines.append(
            "FAIL: regressed benchmark(s): " + ", ".join(comparison.regressions)
        )
    return "\n".join(lines)
