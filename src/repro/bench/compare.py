"""Baseline comparison: the CI perf-regression gate.

``repro bench --compare BASELINE.json --threshold 0.2`` reruns the
suite (or takes a just-produced report) and compares per-benchmark
best-of-repeats wall time against the baseline.  A benchmark regresses
when

    current_min > baseline_min * (1 + threshold)

The minimum over repeats is the gate statistic because timing noise on
shared runners is purely additive (scheduler interference only ever
slows a repeat down), so the fastest repeat is the least-contaminated
estimate of the true cost; medians of small repeat counts wobble enough
to trip a coarse threshold on their own.

Memory is gated per benchmark with its own — deliberately lenient —
``mem_threshold``.  When the *baseline* records ``rss_delta_kb`` (the
amount the workload raised the process high-water mark — attributable
to the workload regardless of suite order), the gate compares deltas,
with a small fixed floor added to both sides so the frequent
delta-of-zero entries (the workload fit in already-chartered pages)
cannot produce infinite or hair-trigger ratios.  Older baselines that
only have ``peak_rss_kb`` (the process-wide high-water mark) are gated
on that instead — whichever field the baseline has wins, so refreshing
the baseline upgrades the gate without a flag day.  RSS only ever grows
within a process, it is reported in coarse kernel units, and the
allocator may or may not return freed pages, so only a large sustained
jump (default 2x) is meaningful.  A memory regression fails the gate
exactly like a time regression; reports lacking both fields on either
side skip the memory gate for that benchmark.

Any regression makes the comparison fail (process exit code 1), which
is what stops a PR from silently doubling simulation time or memory.
Benchmarks present only in the *baseline* are reported as warnings but
never fail the gate — that keeps ``--only``/``--skip`` subset runs
(the CI ``scale-smoke`` job compares one workload against the full
baseline) and benchmark removals painless.  A benchmark present in the
*current* run but absent from the baseline, however, is a hard failure
with an explicit remedy: a new workload is ungated until the baseline
knows about it, so the PR adding it must refresh
``benchmarks/results/BENCH_baseline.json`` in the same change.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

__all__ = ["BenchComparison", "compare_reports", "load_report", "format_comparison"]

#: KiB added to both sides of an ``rss_delta_kb`` ratio.  Deltas of a
#: monotone high-water mark are frequently zero; the floor keeps those
#: entries gateable (ratio 1.0) instead of infinite or undefined, and
#: makes the gate insensitive to sub-4MiB wiggle.
RSS_DELTA_FLOOR_KB = 4096.0


@dataclasses.dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing one report against a baseline."""

    threshold: float
    #: name -> (baseline_min_s, current_min_s, ratio)
    rows: Dict[str, Any]
    regressions: List[str]
    improvements: List[str]
    missing_in_current: List[str]
    missing_in_baseline: List[str]
    #: Peak-RSS gate (defaults keep older callers working).
    mem_threshold: float = 2.0
    #: name -> (baseline_kb, current_kb, ratio) where both sides report it
    mem_rows: Dict[str, Any] = dataclasses.field(default_factory=dict)
    mem_regressions: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the gate passes.

        Fails on any time or memory regression, and on a benchmark the
        baseline has never seen (an ungated workload is a silent hole
        in the regression gate — refresh the baseline to close it).
        """
        return (
            not self.regressions
            and not self.mem_regressions
            and not self.missing_in_baseline
        )


def load_report(path: str) -> Dict[str, Any]:
    """Load a benchmark report, validating its schema marker."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    schema = report.get("schema")
    if not isinstance(schema, str) or not schema.startswith("repro-bench/"):
        raise ValueError(f"{path} is not a repro bench report (schema={schema!r})")
    if "benchmarks" not in report:
        raise ValueError(f"{path} has no 'benchmarks' section")
    return report


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = 0.2,
    improvement_margin: Optional[float] = None,
    mem_threshold: float = 2.0,
) -> BenchComparison:
    """Compare two reports; see module docstring for the gate rule.

    ``improvement_margin`` (default: the threshold) only labels wins in
    the summary; it never affects the pass/fail outcome.
    ``mem_threshold`` gates ``peak_rss_kb`` the same way ``threshold``
    gates time, and is deliberately lenient by default (see module
    docstring for why RSS needs more headroom than wall time).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if mem_threshold < 0:
        raise ValueError("mem_threshold must be non-negative")
    if improvement_margin is None:
        improvement_margin = threshold
    base_benchmarks = baseline["benchmarks"]
    cur_benchmarks = current["benchmarks"]
    rows: Dict[str, Any] = {}
    regressions: List[str] = []
    improvements: List[str] = []
    mem_rows: Dict[str, Any] = {}
    mem_regressions: List[str] = []
    for name in base_benchmarks:
        if name not in cur_benchmarks:
            continue
        base_min = float(base_benchmarks[name]["timing"]["min_s"])
        cur_min = float(cur_benchmarks[name]["timing"]["min_s"])
        ratio = (cur_min / base_min) if base_min > 0 else float("inf")
        rows[name] = {
            "baseline_min_s": base_min,
            "current_min_s": cur_min,
            "ratio": ratio,
        }
        if ratio > 1.0 + threshold:
            regressions.append(name)
        elif ratio < 1.0 - improvement_margin:
            improvements.append(name)
        # The baseline picks the memory metric: per-workload RSS delta
        # when it records one, the legacy process-wide peak otherwise.
        base_delta = base_benchmarks[name].get("rss_delta_kb")
        cur_delta = cur_benchmarks[name].get("rss_delta_kb")
        if base_delta is not None and cur_delta is not None:
            base_rss = float(base_delta) + RSS_DELTA_FLOOR_KB
            cur_rss = float(cur_delta) + RSS_DELTA_FLOOR_KB
            metric = "rss_delta_kb"
        else:
            base_peak = base_benchmarks[name].get("peak_rss_kb")
            cur_peak = cur_benchmarks[name].get("peak_rss_kb")
            if base_peak is None or cur_peak is None:
                # Neither metric available on both sides; skip, never fail.
                continue
            base_rss = float(base_peak)
            cur_rss = float(cur_peak)
            metric = "peak_rss_kb"
        mem_ratio = (cur_rss / base_rss) if base_rss > 0 else float("inf")
        mem_rows[name] = {
            "baseline_kb": base_rss,
            "current_kb": cur_rss,
            "ratio": mem_ratio,
            "metric": metric,
        }
        if mem_ratio > 1.0 + mem_threshold:
            mem_regressions.append(name)
    return BenchComparison(
        threshold=threshold,
        rows=rows,
        regressions=sorted(regressions),
        improvements=sorted(improvements),
        missing_in_current=sorted(set(base_benchmarks) - set(cur_benchmarks)),
        missing_in_baseline=sorted(set(cur_benchmarks) - set(base_benchmarks)),
        mem_threshold=mem_threshold,
        mem_rows=mem_rows,
        mem_regressions=sorted(mem_regressions),
    )


def format_comparison(comparison: BenchComparison) -> str:
    """Human-readable comparison table plus verdict line."""
    lines = [
        "benchmark comparison on best-of-repeats time "
        f"(fail when ratio > {1.0 + comparison.threshold:.2f})",
    ]
    if comparison.rows:
        name_width = max(len(name) for name in comparison.rows)
        lines.append(
            f"{'benchmark':<{name_width}}  {'baseline':>10}  {'current':>10}  "
            f"{'ratio':>6}  verdict"
        )
        for name, row in comparison.rows.items():
            if name in comparison.regressions:
                verdict = "REGRESSION"
            elif name in comparison.improvements:
                verdict = "improved"
            else:
                verdict = "ok"
            lines.append(
                f"{name:<{name_width}}  "
                f"{row['baseline_min_s'] * 1e3:>8.1f}ms  "
                f"{row['current_min_s'] * 1e3:>8.1f}ms  "
                f"{row['ratio']:>6.2f}  {verdict}"
            )
    if comparison.mem_rows:
        lines.append(
            "peak RSS comparison "
            f"(fail when ratio > {1.0 + comparison.mem_threshold:.2f})"
        )
        name_width = max(len(name) for name in comparison.mem_rows)
        lines.append(
            f"{'benchmark':<{name_width}}  {'baseline':>10}  {'current':>10}  "
            f"{'ratio':>6}  verdict"
        )
        for name, row in comparison.mem_rows.items():
            verdict = "MEM REGRESSION" if name in comparison.mem_regressions else "ok"
            lines.append(
                f"{name:<{name_width}}  "
                f"{row['baseline_kb'] / 1024:>8.1f}MB  "
                f"{row['current_kb'] / 1024:>8.1f}MB  "
                f"{row['ratio']:>6.2f}  {verdict}"
            )
    for name in comparison.missing_in_current:
        lines.append(f"warning: {name} present in baseline only (not compared)")
    for name in comparison.missing_in_baseline:
        lines.append(
            f"error: {name} is not in the baseline, so it runs ungated — "
            "regenerate benchmarks/results/BENCH_baseline.json with "
            "`repro bench --quick --repeats 5 --json "
            "benchmarks/results/BENCH_baseline.json` and commit it"
        )
    if comparison.ok:
        lines.append("PASS: no benchmark regressed beyond the threshold")
    else:
        failed = list(comparison.regressions)
        failed.extend(
            f"{name} (memory)"
            for name in comparison.mem_regressions
            if name not in comparison.regressions
        )
        failed.extend(
            f"{name} (missing from baseline)"
            for name in comparison.missing_in_baseline
        )
        lines.append("FAIL: regressed benchmark(s): " + ", ".join(failed))
    return "\n".join(lines)
