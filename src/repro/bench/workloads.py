"""Seeded microbenchmark workloads for the ``repro bench`` harness.

Each workload is a :class:`Workload`: a named, seeded recipe whose
:meth:`~Workload.prepare` builds all inputs (untimed) and returns a
zero-argument callable that executes one timed iteration and returns a
dict of *deterministic* facts about what it did (operation counts,
digests of results).  The harness times the callable and merges the
facts into the JSON report, so two runs with the same seed must return
identical dicts — that property is pinned by a regression test.

The suite covers the hot paths the ROADMAP cares about: raw event-loop
throughput under churn-heavy cancel/reschedule traffic, a full shuffle
round, the Brahms sampler's batch fold, churn session generation, and a
small availability sweep exercising everything end to end.
"""

from __future__ import annotations

import dataclasses
import gc
import hashlib
import os
import time
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..churn import generate_trace, homogeneous_specs, stationary_online_mask
from ..config import SystemConfig
from ..core import (
    BatchOverlay,
    LinkSet,
    NodeArena,
    Pseudonym,
    PseudonymArena,
    PseudonymCache,
    SamplerSlots,
)
from ..errors import ExperimentError, ParallelError
from ..experiments import (
    SMOKE,
    availability_sweep,
    grid_sweep,
    make_config,
    make_trust_graph,
)
from ..experiments.runner import run_overlay_experiment
from ..parallel import (
    OverlayPointExperiment,
    ShardOptions,
    ShardedOverlay,
    outcome_digest,
    parallel_grid_sweep,
)
from ..privlink import (
    Address,
    LegacyTrafficLog,
    TrafficLog,
    make_mixnet_link_layer,
)
from ..rng import PSEUDONYM_BITS, RandomStreams, random_bits
from ..sim import Simulator

__all__ = ["Workload", "SUITE", "workload_names"]

#: Index mask for the precomputed random-delay tables; keeping the
#: tables power-of-two sized makes the per-event lookup a cheap AND.
_MASK = 8191


@dataclasses.dataclass(frozen=True)
class Workload:
    """One named benchmark: seeded setup plus a timed iteration."""

    name: str
    description: str
    #: ``prepare(mode, seed) -> run`` where ``run()`` executes one timed
    #: iteration and returns deterministic workload facts including an
    #: ``"operations"`` count (the events/sec denominator).
    prepare: Callable[[str, int], Callable[[], Dict[str, Any]]]


def _digest(*parts: Any) -> str:
    """Stable short digest of deterministic workload outputs."""
    text = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# event loop
# ----------------------------------------------------------------------


def _prepare_event_loop_churn(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """Scheduler-bound churn traffic: schedule, cancel, reschedule.

    Models the paper's churn runs at the event-queue level: hundreds of
    timers that constantly cancel and re-arm each other, leaving
    tombstones in the heap.  All randomness is precomputed so the timed
    region measures the simulator, not numpy.
    """
    num_timers, horizon = (300, 150.0) if mode == "quick" else (400, 400.0)
    rng = RandomStreams(seed).substream("bench", "event-loop")
    delays = [float(x) for x in rng.uniform(0.5, 1.5, size=_MASK + 1)]
    targets = [int(x) for x in rng.integers(0, num_timers, size=_MASK + 1)]

    def run() -> Dict[str, Any]:
        sim = Simulator()
        handles: List[Any] = [None] * num_timers
        state = [0]

        def tick(i: int) -> None:
            k = state[0]
            state[0] = k + 1
            j = targets[k & _MASK]
            h = handles[j]
            if j != i and h is not None and not h.cancelled:
                h.cancel()
                handles[j] = sim.schedule(sim.now + delays[(k + 7) & _MASK], tick, j)
            handles[i] = sim.schedule(sim.now + delays[k & _MASK], tick, i)

        for i in range(num_timers):
            handles[i] = sim.schedule(delays[i & _MASK] - 0.5, tick, i)
        sim.run_until(horizon)
        return {
            "operations": sim.events_processed,
            "events_processed": sim.events_processed,
            "final_pending": sim.pending,
            "final_queue_size": sim.queue_size,
            "timers": num_timers,
            "horizon": horizon,
        }

    return run


# ----------------------------------------------------------------------
# shuffle round
# ----------------------------------------------------------------------


def _prepare_shuffle_round(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """A no-churn overlay gossiping for a stretch of shuffling periods."""
    horizon = 10.0 if mode == "quick" else 30.0
    trust_graph = make_trust_graph(SMOKE, f=0.5, seed=seed)
    config = make_config(SMOKE, alpha=0.5, f=0.5, seed=seed)

    def run() -> Dict[str, Any]:
        from ..core import Overlay

        overlay = Overlay.build(trust_graph, config, with_churn=False)
        overlay.start()
        overlay.run_until(horizon)
        stats = overlay.stats()
        return {
            "operations": overlay.sim.events_processed,
            "events_processed": overlay.sim.events_processed,
            "messages_sent": stats.messages_sent,
            "link_replacements": stats.link_replacements,
            "pseudonyms_created": stats.pseudonyms_created,
            "nodes": config.num_nodes,
            "horizon": horizon,
        }

    return run


# ----------------------------------------------------------------------
# Brahms sampler step
# ----------------------------------------------------------------------


def _prepare_brahms_sampler(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """Fold many received batches into one node's sampler slots."""
    batches, batch_size, slots_size = (
        (300, 40, 50) if mode == "quick" else (1500, 40, 50)
    )
    data_rng = RandomStreams(seed).substream("bench", "sampler-data")
    values = data_rng.integers(0, 1 << 62, size=batches * batch_size)
    expiries = data_rng.uniform(10.0, 1000.0, size=batches * batch_size)
    all_batches: List[List[Pseudonym]] = []
    for b in range(batches):
        start = b * batch_size
        all_batches.append(
            [
                Pseudonym(
                    value=int(values[i]),
                    address=Address(int(values[i]) + 1),
                    expires_at=float(expiries[i]),
                )
                for i in range(start, start + batch_size)
            ]
        )

    def run() -> Dict[str, Any]:
        slots = SamplerSlots(slots_size, RandomStreams(seed).substream("bench", "refs"))
        changed = 0
        for batch in all_batches:
            changed += slots.offer_batch(batch)
        sample = slots.sample()
        return {
            "operations": batches * batch_size,
            "slots_changed": changed,
            "final_filled": slots.filled(),
            "sample_digest": _digest(sorted(p.value for p in sample)),
            "batches": batches,
            "batch_size": batch_size,
        }

    return run


# ----------------------------------------------------------------------
# churn session generation
# ----------------------------------------------------------------------


def _prepare_churn_sessions(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """Pre-generate availability traces for a large population."""
    num_nodes, horizon = (1500, 150.0) if mode == "quick" else (5000, 300.0)
    specs = homogeneous_specs(num_nodes, availability=0.4, mean_offline_time=30.0)

    def run() -> Dict[str, Any]:
        rng = RandomStreams(seed).substream("bench", "churn-trace")
        trace = generate_trace(specs, horizon, rng)
        transitions = len(trace)
        return {
            "operations": transitions,
            "transitions": transitions,
            "initial_online": sum(trace.initial_online),
            "trace_horizon": trace.horizon,
            "nodes": num_nodes,
        }

    return run


# ----------------------------------------------------------------------
# availability sweep (end to end)
# ----------------------------------------------------------------------


def _prepare_availability_sweep(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """A miniature Figure-3 sweep: the full stack at smoke scale."""
    alphas: Tuple[float, ...] = (0.5,) if mode == "quick" else (0.25, 0.5)

    def run() -> Dict[str, Any]:
        sweep = availability_sweep(SMOKE, f=0.5, seed=seed, alphas=alphas)
        facts = [
            (
                point.alpha,
                round(point.overlay_disconnected, 12),
                round(point.trust_disconnected, 12),
                round(point.random_disconnected, 12),
            )
            for point in sweep.points
        ]
        # operations: one sweep point is the unit of work.
        return {
            "operations": len(sweep.points),
            "points": len(sweep.points),
            "trust_edges": sweep.trust_edges,
            "sweep_digest": _digest(facts),
        }

    return run


# ----------------------------------------------------------------------
# parallel sweep (serial vs worker pool, digest-checked)
# ----------------------------------------------------------------------


def _prepare_parallel_sweep(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """The same grid swept serially and on the worker pool.

    The timed iteration runs ``grid_sweep`` (workers=1) and
    ``parallel_grid_sweep`` (one worker per core, at least two so the
    multiprocess path is exercised even on single-core CI) over the
    same grid and *raises* if their outcome digests differ — the bench
    suite doubles as a continuous serial/parallel equivalence check.
    Wall-clock scaling facts live under ``wall_``-prefixed keys, which
    the determinism strip removes (timings vary; digests must not).
    """
    if mode == "quick":
        axes: Dict[str, List[Any]] = {"availability": [0.3, 0.6]}
        horizon, window = 10.0, 5.0
    else:
        axes = {"availability": [0.3, 0.6], "lifetime_ratio": [3.0, 9.0]}
        horizon, window = 20.0, 10.0
    experiment = OverlayPointExperiment(
        scale_name="smoke", f=0.5, horizon=horizon, measure_window=window
    )
    workers = max(2, os.cpu_count() or 1)
    # Memoize the trust graph before the fork so workers inherit it.
    make_trust_graph(SMOKE, f=0.5, seed=seed)

    def run() -> Dict[str, Any]:
        base = make_config(SMOKE, alpha=0.5, f=0.5, seed=seed)
        started = time.perf_counter()
        serial = grid_sweep(base, axes, experiment)
        wall_serial = time.perf_counter() - started
        started = time.perf_counter()
        parallel = parallel_grid_sweep(base, axes, experiment, workers=workers)
        wall_parallel = time.perf_counter() - started
        serial_digest = outcome_digest([point.outcome for point in serial])
        parallel_digest = outcome_digest([point.outcome for point in parallel])
        if serial_digest != parallel_digest or serial != parallel:
            raise ParallelError(
                "parallel sweep diverged from serial: "
                f"{serial_digest} != {parallel_digest}"
            )
        speedup = wall_serial / wall_parallel if wall_parallel > 0 else 0.0
        return {
            # Every grid point ran twice (once per path).
            "operations": len(serial) + len(parallel),
            "points": len(serial),
            "workers": workers,
            "digest": serial_digest,
            "digests_match": True,
            "wall_serial_s": wall_serial,
            "wall_parallel_s": wall_parallel,
            "wall_speedup": speedup,
            "wall_efficiency": speedup / workers,
        }

    return run


# ----------------------------------------------------------------------
# metric sampling kernels (fast backend vs networkx reference)
# ----------------------------------------------------------------------


def _prepare_metrics_sample(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """One collector sample's metrics on a large churned snapshot.

    Prepares a 2k-node (4k in full mode) social graph restricted to a
    stationary online set, runs the networkx reference pipeline once
    (untimed relative to the harness; its wall clock is recorded under
    a ``wall_`` fact), then times the fast-backend pipeline: CSR
    snapshot assembly, one shared component labeling, disconnected
    fraction, sampled normalized path length, and degree histogram.
    Every fast value is checked against the reference — the bench
    doubles as a continuous exactness test — and ``wall_speedup``
    reports the per-sample ratio.
    """
    from ..churn import online_subgraph
    from ..graphs import (
        degree_histogram,
        fraction_disconnected,
        generate_social_graph,
        normalized_path_length,
    )
    from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis

    num_nodes, iters = (2000, 3) if mode == "quick" else (4000, 5)
    path_sources = 64
    graph_rng = RandomStreams(seed).substream("bench", "metrics-graph")
    graph = generate_social_graph(num_nodes, rng=graph_rng)
    mask = stationary_online_mask(
        num_nodes, 0.6, RandomStreams(seed).substream("bench", "metrics-mask")
    )
    induced = online_subgraph(graph, mask)

    # Reference pass: the pre-fastgraph collector pipeline (the largest
    # component is recomputed inside each metric, as it used to be).
    started = time.perf_counter()
    ref_fraction = fraction_disconnected(induced)
    ref_path = normalized_path_length(
        induced,
        num_nodes,
        sample_sources=path_sources,
        rng=RandomStreams(seed).substream("bench", "metrics-sources"),
    )
    ref_histogram = degree_histogram(induced)
    wall_networkx = time.perf_counter() - started

    # Raw endpoint positions: what the overlay's incremental store hands
    # to snapshot assembly, so the timed region includes CSR building.
    base = FlatSnapshot.from_networkx(induced)
    node_ids = base.node_ids
    endpoint_a = base.edge_u.copy()
    endpoint_b = base.edge_v.copy()

    def run() -> Dict[str, Any]:
        started = time.perf_counter()
        for _ in range(iters):
            snapshot = FlatSnapshot.from_edge_positions(
                node_ids, endpoint_a, endpoint_b
            )
            analysis = SnapshotAnalysis(snapshot)
            fraction = analysis.fraction_disconnected()
            path = analysis.normalized_path_length(
                num_nodes,
                sample_sources=path_sources,
                rng=RandomStreams(seed).substream("bench", "metrics-sources"),
            )
            histogram = analysis.degree_histogram()
            if (
                fraction != ref_fraction
                or path != ref_path
                or histogram != ref_histogram
            ):
                raise ExperimentError(
                    "fast metrics diverged from networkx reference: "
                    f"({fraction}, {path}) != ({ref_fraction}, {ref_path})"
                )
        wall_fast = time.perf_counter() - started
        per_sample = wall_fast / iters
        return {
            "operations": iters,
            "samples": iters,
            "nodes": num_nodes,
            "online_nodes": induced.number_of_nodes(),
            "edges": induced.number_of_edges(),
            "path_sources": path_sources,
            "disconnected": round(ref_fraction, 12),
            "path_length": round(ref_path, 12),
            "histogram_digest": _digest(sorted(ref_histogram.items())),
            "values_match": True,
            "wall_networkx_s": wall_networkx,
            "wall_fast_s": per_sample,
            "wall_speedup": wall_networkx / per_sample if per_sample > 0 else 0.0,
        }

    return run


# ----------------------------------------------------------------------
# mixnet message path
# ----------------------------------------------------------------------


class _TeeTrafficLog:
    """Feeds identical ``record()`` streams to two traffic logs.

    Used by the differential phase of ``mixnet_message``: one mixnet run
    writes through the tee, then every query on the columnar log must
    equal the legacy log's answer.
    """

    __slots__ = ("columnar", "legacy")

    def __init__(self, columnar: TrafficLog, legacy: LegacyTrafficLog) -> None:
        self.columnar = columnar
        self.legacy = legacy

    def record(self, time: float, src: str, dst: str, size_hint: int = 1) -> None:
        self.columnar.record(time, src, dst, size_hint)
        self.legacy.record(time, src, dst, size_hint)


def _prepare_mixnet_message(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """End-to-end sends through the mixnet, fast path vs legacy path.

    Three phases.  The *legacy* phase (untimed by the harness; its wall
    time is captured for the ``wall_speedup`` fact) sends every message
    with the pre-optimization configuration: fresh circuit per message,
    full-bytes replay digests, per-hop event scheduling,
    list-of-dataclasses traffic log.  The *fast* phase — the one the
    harness times — sends the same message stream with the defaults:
    cached circuits with seal-time digest stamping, compact
    epoch-bounded replay digests, inline zero-latency hops, columnar
    log.  A *differential* phase re-runs a smaller stream through a tee
    feeding both log implementations and raises unless every query
    (record view, channels, by_endpoint, window, unique_endpoints)
    agrees, and a synthetic fill compares ``memory_bytes()`` at scale
    (1M records in full mode), raising if the columnar log is not at
    least 4x smaller.

    Senders message a handful of repeat destinations (gossip partners
    and held pseudonym links re-used across rounds, as the overlay
    does), which is what gives the circuit cache its hit rate.
    ``hop_latency`` is 0 so both paths skip the per-hop latency draw
    and the measurement isolates the message path itself.
    """
    if mode == "quick":
        num_messages, diff_messages, mem_records = 12_000, 1200, 150_000
    else:
        num_messages, diff_messages, mem_records = 24_000, 4000, 1_000_000
    num_nodes = 60
    num_endpoints = 12
    num_relays = 20
    horizon = 100.0

    data_rng = RandomStreams(seed).substream("bench", "mixnet-traffic")
    senders = [int(x) for x in data_rng.integers(0, num_nodes, size=num_messages)]
    # Each sender gossips with 4 repeat trust partners and 2 repeat
    # pseudonym links, re-used across rounds as the overlay does.
    dest_offsets = [int(x) for x in data_rng.integers(1, 5, size=num_messages)]
    endpoint_choice = [
        int(x) for x in data_rng.integers(0, 2, size=num_messages)
    ]
    owners = [int(x) for x in data_rng.integers(0, num_nodes, size=num_endpoints)]
    send_times = [
        float(x) for x in data_rng.uniform(0.0, horizon * 0.9, size=num_messages)
    ]
    # Batch sends into one simulator event per sim-second: the event
    # loop's per-event dispatch is identical in both phases and is not
    # what this benchmark measures — the message path is.
    buckets: Dict[float, List[int]] = {}
    for i, send_time in enumerate(send_times):
        buckets.setdefault(float(int(send_time)), []).append(i)

    def run_phase(
        traffic: Any, fast: bool, count: int
    ) -> Tuple[int, Any]:
        sim = Simulator()
        layer = make_mixnet_link_layer(
            sim,
            RandomStreams(seed).substream("bench", "mixnet-net"),
            num_relays=num_relays,
            circuit_length=3,
            hop_latency=0.0,
            traffic=traffic,
            circuit_cache=fast,
            compact_replay=fast,
            replay_cache_limit=65536 if fast else None,
            inline_hops=fast,
        )
        delivered = [0]

        def inbox(payload: Any) -> None:
            delivered[0] += 1

        for node_id in range(num_nodes):
            layer.register_node(node_id, inbox, lambda: True)
        addresses = [
            layer.create_endpoint(owners[k]) for k in range(num_endpoints)
        ]
        send_to_node = layer.send_to_node
        send_to_endpoint = layer.send_to_endpoint

        def send_bucket(indices: List[int]) -> None:
            for i in indices:
                if i % 2 == 0:
                    dest = (senders[i] + dest_offsets[i]) % num_nodes
                    send_to_node(senders[i], dest, ("m", i))
                else:
                    address = addresses[
                        (senders[i] + endpoint_choice[i]) % num_endpoints
                    ]
                    send_to_endpoint(senders[i], address, ("m", i))

        for bucket_time in sorted(buckets):
            indices = [i for i in buckets[bucket_time] if i < count]
            if indices:
                sim.post_after(bucket_time, send_bucket, indices)
        sim.run_until(horizon + 5.0)
        return delivered[0], layer.network

    # Speedup measurement: the legacy (pre-optimization) and fast
    # configurations, end to end, interleaved legacy/fast twice and
    # taking each phase's best.  Both phases are pure CPU, so they are
    # timed with ``process_time`` (scheduler preemption on a loaded
    # machine never counts against either phase); interleaving keeps
    # machine-speed drift correlated across the two, each run is
    # preceded by a collection so garbage from earlier phases/repeats
    # is not charged to its time, and the min filters the remaining
    # noise — the speedup fact should reflect the phases' floors.
    def timed_phase(log: Any, fast: bool) -> Tuple[float, int]:
        gc.collect()
        started = time.process_time()
        delivered, _ = run_phase(log, fast, num_messages)
        elapsed = time.process_time() - started
        return elapsed, delivered

    wall_legacy = float("inf")
    wall_fast = float("inf")
    legacy_delivered = 0
    for _ in range(2):
        wall, legacy_delivered = timed_phase(LegacyTrafficLog(), False)
        wall_legacy = min(wall_legacy, wall)
        wall, _ = timed_phase(TrafficLog(), True)
        wall_fast = min(wall_fast, wall)

    # Differential phase: same record stream into both implementations.
    tee = _TeeTrafficLog(TrafficLog(), LegacyTrafficLog())
    run_phase(tee, True, diff_messages)
    window = (horizon * 0.2, horizon * 0.7)
    checks = (
        len(tee.columnar) == len(tee.legacy)
        and list(tee.columnar) == list(tee.legacy)
        and tee.columnar.channels() == tee.legacy.channels()
        and tee.columnar.by_endpoint() == tee.legacy.by_endpoint()
        and tee.columnar.window(*window) == tee.legacy.window(*window)
        and tee.columnar.unique_endpoints() == tee.legacy.unique_endpoints()
    )
    if not checks:
        raise ExperimentError(
            "columnar traffic log diverged from the legacy log on an "
            "identical record stream"
        )

    # Memory phase: identical synthetic streams at scale, deterministic
    # sizeof accounting on both layouts.
    mem_names = [f"node:{i}" for i in range(64)] + [f"relay:{i}" for i in range(32)]
    mem_columnar = TrafficLog()
    mem_legacy = LegacyTrafficLog()
    for i in range(mem_records):
        src = mem_names[i % 61]
        dst = mem_names[(i * 7 + 3) % 96]
        stamp = i * 1e-3
        mem_columnar.record(stamp, src, dst, 1)
        mem_legacy.record(stamp, src, dst, 1)
    mem_columnar_bytes = mem_columnar.memory_bytes()
    mem_legacy_bytes = mem_legacy.memory_bytes()
    mem_ratio = mem_legacy_bytes / mem_columnar_bytes
    if mem_ratio < 4.0:
        raise ExperimentError(
            f"columnar traffic log is only {mem_ratio:.2f}x smaller than "
            f"the legacy layout at {mem_records} records (need >= 4x)"
        )

    def run() -> Dict[str, Any]:
        fast_log = TrafficLog()
        gc.collect()
        fast_delivered, network = run_phase(fast_log, True, num_messages)
        if fast_delivered != legacy_delivered:
            raise ExperimentError(
                f"fast path delivered {fast_delivered} messages, legacy "
                f"path delivered {legacy_delivered}"
            )
        return {
            "operations": num_messages,
            "messages": num_messages,
            "delivered": fast_delivered,
            "relays": num_relays,
            "traffic_records": len(fast_log),
            "channels_digest": _digest(sorted(fast_log.channels().items())),
            "circuit_cache_hits": network.circuit_cache_hits,
            "circuit_cache_misses": network.circuit_cache_misses,
            "replays_dropped": network.total_replays_dropped(),
            "replay_cache_entries": network.total_replay_cache_entries(),
            "replay_flushes": network.total_replay_flushes(),
            "queries_match": True,
            "mem_records": mem_records,
            "mem_legacy_bytes": mem_legacy_bytes,
            "mem_columnar_bytes": mem_columnar_bytes,
            "mem_ratio": round(mem_ratio, 3),
            "wall_legacy_s": wall_legacy,
            "wall_fast_s": wall_fast,
            "wall_speedup": wall_legacy / wall_fast if wall_fast > 0 else 0.0,
        }

    return run


# ----------------------------------------------------------------------
# convergence run (single overlay under churn)
# ----------------------------------------------------------------------


def _prepare_overlay_churn(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """One overlay under live churn — the Figure 8 inner loop."""
    horizon = 25.0 if mode == "quick" else 60.0
    trust_graph = make_trust_graph(SMOKE, f=0.5, seed=seed)
    config = make_config(SMOKE, alpha=0.5, f=0.5, seed=seed)

    def run() -> Dict[str, Any]:
        result = run_overlay_experiment(
            trust_graph,
            config,
            horizon=horizon,
            measure_window=horizon / 2,
            collector_interval=1.0,
            path_length_every=0,
        )
        return {
            "operations": result.overlay.sim.events_processed,
            "events_processed": result.overlay.sim.events_processed,
            "disconnected": round(result.disconnected, 12),
            "online_fraction": round(result.online_fraction, 12),
            "full_edge_count": result.full_edge_count,
            "horizon": horizon,
        }

    return run


# ----------------------------------------------------------------------
# node plane (arena batch kernels vs legacy per-node objects)
# ----------------------------------------------------------------------


def _prepare_node_plane(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """Shuffle/slot hot path: arena batch kernels vs per-node objects.

    The same gossip traffic — per-node candidate batches over many
    rounds, with expiry, own-pseudonym filtering, slot competition, and
    link re-derivation — is folded twice: once through the legacy
    per-node classes (one :class:`SamplerSlots` / ``PseudonymCache`` /
    ``LinkSet`` triple per node, Python loop over nodes), once through
    the :class:`NodeArena` batch kernels (``batch_expire``,
    ``batch_cache_merge``, ``batch_offer``, ``batch_links_from_slots``
    over all rows at once).  Both phases start from identical slot
    reference values and see identical candidates, and the run *raises*
    unless the final per-node slot, cache, and link state — and every
    cumulative change counter — matches exactly, so the benchmark
    doubles as a continuous differential test of the kernels.  The
    phase wall clocks feed ``wall_speedup``.
    """
    if mode == "quick":
        num_nodes, rounds = 256, 12
    else:
        num_nodes, rounds = 768, 20
    batch_size, slot_count, cache_capacity = 24, 24, 48
    data_rng = RandomStreams(seed).substream("bench", "node-plane-data")
    own_values = [
        int(x)
        for x in data_rng.integers(0, 1 << PSEUDONYM_BITS, size=num_nodes)
    ]
    own_pseudonyms = [
        Pseudonym(
            value=own_values[n],
            address=Address(n + 1),
            expires_at=float(rounds + 10),
        )
        for n in range(num_nodes)
    ]
    cand_values = data_rng.integers(
        0, 1 << PSEUDONYM_BITS, size=(rounds, num_nodes, batch_size)
    )
    cand_expires = data_rng.uniform(0.5, 8.0, size=(rounds, num_nodes, batch_size))
    batches: List[List[List[Pseudonym]]] = []
    for r in range(rounds):
        per_round: List[List[Pseudonym]] = []
        for n in range(num_nodes):
            batch = [
                Pseudonym(
                    value=int(cand_values[r, n, j]),
                    address=Address(int(cand_values[r, n, j]) + 1),
                    expires_at=float(r) + float(cand_expires[r, n, j]),
                )
                for j in range(batch_size)
            ]
            # Every seventh (node, round) receives its own pseudonym
            # back, exercising the merge's own-value filter.
            if (n + r) % 7 == 0:
                batch[0] = own_pseudonyms[n]
            per_round.append(batch)
        batches.append(per_round)

    def run() -> Dict[str, Any]:
        # Legacy phase: per-node objects, Python loop over nodes.
        ref_rng = RandomStreams(seed).substream("bench", "node-plane-refs")
        slots = [SamplerSlots(slot_count, ref_rng) for _ in range(num_nodes)]
        caches = [PseudonymCache(cache_capacity) for _ in range(num_nodes)]
        links = [LinkSet(()) for _ in range(num_nodes)]
        legacy_changed = legacy_inserted = 0
        gc.collect()
        started = time.process_time()
        for r in range(rounds):
            now = float(r)
            for n in range(num_nodes):
                slots[n].expire(now)
                caches[n].remove_expired(now)
                batch = batches[r][n]
                legacy_inserted += caches[n].merge(
                    batch, now, own_value=own_values[n]
                )
                legacy_changed += slots[n].offer_batch(batch)
                links[n].update_from_sample(slots[n].sample())
        wall_legacy = time.process_time() - started
        legacy_added = sum(link.additions_total for link in links)
        legacy_removed = sum(link.replacements_total for link in links)

        # Arena phase: the same traffic through the batch kernels.  The
        # identical reference draw order reproduces the legacy slots'
        # reference values exactly.
        arena = NodeArena(
            PseudonymArena(chunk=4096),
            node_chunk=num_nodes,
            track_insert_times=False,
        )
        arena.register_batch(num_nodes, slot_count, cache_capacity)
        ref_rng = RandomStreams(seed).substream("bench", "node-plane-refs")
        for n in range(num_nodes):
            arena.slot_refs[n, :slot_count] = [
                random_bits(ref_rng, PSEUDONYM_BITS) for _ in range(slot_count)
            ]
        table = arena.pseudonyms
        own_ids = np.array(
            [table.intern(p) for p in own_pseudonyms], dtype=np.int64
        )
        cand_ids = np.array(
            [
                [[table.intern(p) for p in batch] for batch in batches[r]]
                for r in range(rounds)
            ],
            dtype=np.int64,
        )
        rows = np.arange(num_nodes, dtype=np.int64)
        arena_changed = arena_inserted = arena_added = arena_removed = 0
        gc.collect()
        started = time.process_time()
        for r in range(rounds):
            now = float(r)
            arena.batch_expire(now)
            arena_inserted += int(
                arena.batch_cache_merge(rows, cand_ids[r], now, own_ids).sum()
            )
            arena_changed += int(arena.batch_offer(rows, cand_ids[r]).sum())
            added, removed = arena.batch_links_from_slots(rows)
            arena_added += int(added.sum())
            arena_removed += int(removed.sum())
        wall_fast = time.process_time() - started

        # Differential check: counters and exact final per-node state.
        counters_match = (
            legacy_changed == arena_changed
            and legacy_inserted == arena_inserted
            and legacy_added == arena_added
            and legacy_removed == arena_removed
        )
        if not counters_match:
            raise ExperimentError(
                "arena batch kernels diverged from the per-node classes: "
                f"changed {legacy_changed}/{arena_changed}, inserted "
                f"{legacy_inserted}/{arena_inserted}, links "
                f"{legacy_added}-{legacy_removed}/{arena_added}-{arena_removed}"
            )
        state: List[Any] = []
        for n in range(num_nodes):
            legacy_slots = [
                None if entry is None else (entry.value, entry.expires_at)
                for entry in (slots[n].entry(i) for i in range(slot_count))
            ]
            arena_slots = [
                None
                if pid < 0
                else (int(table.values[pid]), float(table.expires_at[pid]))
                for pid in arena.slot_ids[n, :slot_count]
            ]
            legacy_cache = [p.value for p in caches[n].pseudonyms()]
            arena_cache = [
                int(table.values[pid])
                for pid in arena.cache_ids[n, : arena.cache_len[n]]
            ]
            legacy_links = [p.value for p in links[n].pseudonym_links()]
            arena_links = [
                int(table.values[pid])
                for pid in arena.link_ids[n, : arena.link_len[n]]
            ]
            if (
                legacy_slots != arena_slots
                or legacy_cache != arena_cache
                or legacy_links != arena_links
            ):
                raise ExperimentError(
                    f"arena row {n} diverged from the per-node classes "
                    "(slot/cache/link state mismatch)"
                )
            state.append((legacy_slots, legacy_cache, legacy_links))
        return {
            "operations": rounds * num_nodes * batch_size,
            "nodes": num_nodes,
            "rounds": rounds,
            "batch_size": batch_size,
            "slots_changed": legacy_changed,
            "cache_inserted": legacy_inserted,
            "links_added": legacy_added,
            "links_removed": legacy_removed,
            "state_digest": _digest(state),
            "states_match": True,
            "wall_legacy_s": wall_legacy,
            "wall_fast_s": wall_fast,
            "wall_speedup": wall_legacy / wall_fast if wall_fast > 0 else 0.0,
        }

    return run


# ----------------------------------------------------------------------
# dissemination plane (batch frontier engine vs object-plane epidemic)
# ----------------------------------------------------------------------


def _prepare_heavy_broadcast(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """Epidemic broadcast: object-plane disseminator vs batch engine.

    One churned overlay is warmed up (untimed), its live bidirectional
    channels frozen into a :class:`ChannelSnapshot`, and the same
    broadcast traffic run twice.  The *object* phase drives
    :class:`EpidemicBroadcast` in counter-sampling mode — one simulator
    event and one ``app_handler`` call per message hop.  The *fast*
    phase — the speedup numerator — replays the identical origins
    through :class:`BatchBroadcastEngine`, which advances all
    broadcasts at once as vectorized frontier rounds over the shared
    snapshot.  Both phases draw their per-broadcast sampling keys from
    the same ``dissemination`` substream, so the run then *raises*
    unless every broadcast's delivery set, per-node delivery rounds,
    and forward count match exactly — the bench doubles as the
    continuous object↔batch exactness check.  Coverage and latency
    facts come from the satellite ``coverage()`` /
    ``latency_percentile()`` record helpers on both planes.
    """
    from ..core import Overlay
    from ..dissemination import (
        BatchBroadcastEngine,
        ChannelSnapshot,
        EpidemicBroadcast,
    )
    from ..privlink import make_ideal_link_layer

    if mode == "quick":
        scale, num_broadcasts, warmup = SMOKE, 40, 12.0
    else:
        from ..experiments import QUICK

        scale, num_broadcasts, warmup = QUICK, 150, 20.0
    fanout, ttl = 4, 8
    trust_graph = make_trust_graph(scale, f=0.5, seed=seed)
    config = make_config(scale, alpha=0.6, f=0.5, seed=seed)
    overlay = Overlay.build(
        trust_graph,
        config,
        with_churn=True,
        # Zero latency: a broadcast completes within one sim instant, so
        # hop rounds are exact and gossip timers never interleave.
        link_layer_factory=lambda sim, rng: make_ideal_link_layer(
            sim, rng, max_latency=0.0
        ),
    )
    overlay.start()
    overlay.run_until(warmup)
    snapshot = ChannelSnapshot.from_overlay(overlay)
    online = np.array([node.online for node in overlay.nodes], dtype=bool)
    online_ids = [node.node_id for node in overlay.nodes if node.online]
    origins = [
        online_ids[i % len(online_ids)] for i in range(num_broadcasts)
    ]

    def run() -> Dict[str, Any]:
        # Object phase: one event per hop through the live simulator.
        disseminator = EpidemicBroadcast(
            overlay, fanout=fanout, ttl=ttl, sampling="counter"
        )
        disseminator.install()
        sim = overlay.sim
        records = []
        gc.collect()
        started = time.process_time()
        for origin in origins:
            records.append(disseminator.broadcast(origin, payload=None))
            sim.run_until(sim.now)  # drain the instant broadcast
        wall_object = time.process_time() - started

        # Fast phase: the same origins, same key stream, one engine.
        engine = BatchBroadcastEngine(
            snapshot,
            fanout=fanout,
            ttl=ttl,
            rng=overlay.substream("dissemination"),
            online=online,
        )
        gc.collect()
        started = time.process_time()
        message_ids = engine.start(origins)
        engine.run()
        wall_batch = time.process_time() - started

        # Differential: every broadcast must match exactly.
        ledger = engine.ledger
        coverages = []
        p95_rounds = []
        for record, message_id in zip(records, message_ids):
            view = ledger.record(message_id)
            if (
                record.delivery_rounds != view.delivery_rounds
                or record.forwards != view.forwards
                or set(record.delivery_times) != set(view.delivery_rounds)
            ):
                raise ExperimentError(
                    "batch dissemination diverged from the object plane "
                    f"on broadcast {record.message_id}: "
                    f"{record.deliveries()}/{view.deliveries()} deliveries, "
                    f"{record.forwards}/{view.forwards} forwards"
                )
            object_coverage = record.coverage(config.num_nodes)
            batch_coverage = view.coverage(config.num_nodes)
            object_p95 = float(
                np.percentile(list(record.delivery_rounds.values()), 95.0)
            )
            batch_p95 = view.latency_percentile(95.0)
            if object_coverage != batch_coverage or object_p95 != batch_p95:
                raise ExperimentError(
                    "record-view reporting diverged from BroadcastRecord "
                    f"on broadcast {record.message_id}"
                )
            coverages.append(batch_coverage)
            p95_rounds.append(batch_p95)
        delivered = ledger.total_delivered()
        shape = [
            (view.deliveries(), view.forwards, view.max_latency())
            for view in ledger.records()
        ]
        return {
            # One operation = one (broadcast, node) delivery on the
            # timed (batch) side.
            "operations": delivered,
            "broadcasts": num_broadcasts,
            "nodes": config.num_nodes,
            "online_nodes": len(online_ids),
            "channels": snapshot.channel_count,
            "fanout": fanout,
            "ttl": ttl,
            "delivered": delivered,
            "forwards": ledger.total_forwards(),
            "mean_coverage": round(float(np.mean(coverages)), 12),
            "p95_rounds": round(float(np.mean(p95_rounds)), 12),
            "shape_digest": _digest(shape),
            "records_match": True,
            "wall_object_s": wall_object,
            "wall_batch_s": wall_batch,
            "wall_speedup": wall_object / wall_batch if wall_batch > 0 else 0.0,
        }

    return run


def _prepare_million_message_broadcast(
    mode: str, seed: int
) -> Callable[[], Dict[str, Any]]:
    """Sustained epidemic waves over a churning 10⁵-node batch overlay.

    The ROADMAP item-5 scale workload: build a
    :class:`~repro.core.BatchOverlay`, warm its link fabric, then
    alternate shuffle/churn rounds with broadcast waves — each wave
    freezes the current channels via
    :meth:`~repro.core.BatchOverlay.channel_edges`, seats a batch of
    concurrent broadcasts, and runs their frontiers dry under the live
    online mask.  Full mode must sustain at least 10⁶ delivered
    messages (the ISSUE acceptance floor — the run *raises* below it);
    quick mode is the same pipeline at a CI-sized floor and is gated by
    ``scale-smoke`` time and peak RSS alongside ``million_node_churn``.
    """
    from ..dissemination import BatchBroadcastEngine, ChannelSnapshot

    if mode == "quick":
        waves, per_wave, min_delivered = 2, 3, 100_000
    else:
        waves, per_wave, min_delivered = 6, 5, 1_000_000
    num_nodes, warm_rounds = 100_000, 3
    fanout, ttl = 4, 16
    config = SystemConfig(
        num_nodes=num_nodes,
        cache_size=16,
        shuffle_length=8,
        target_degree=12,
        min_pseudonym_links=8,
        availability=0.6,
        mean_offline_time=8.0,
        seed=seed,
    )

    def run() -> Dict[str, Any]:
        gc.collect()
        started = time.perf_counter()
        overlay = BatchOverlay.build(config, extra_edges_per_node=4)
        overlay.run(warm_rounds)
        wall_build = time.perf_counter() - started
        keys_rng = RandomStreams(seed).substream("bench", "broadcast-keys")
        delivered_total = 0
        forwards_total = 0
        per_broadcast: List[Tuple[int, int]] = []
        coverage_sum = 0.0
        engine_bytes = 0
        channels = 0
        started = time.perf_counter()
        for wave in range(waves):
            overlay.run(1)  # churn + shuffle between waves
            snapshot = ChannelSnapshot.from_batch_overlay(overlay)
            online = overlay.churn.online
            engine = BatchBroadcastEngine(
                snapshot,
                fanout=fanout,
                ttl=ttl,
                rng=keys_rng,
                online=online,
            )
            online_rows = overlay.churn.online_rows()
            stride = max(1, len(online_rows) // per_wave)
            origins = [
                int(online_rows[(wave + i * stride) % len(online_rows)])
                for i in range(per_wave)
            ]
            engine.start(origins)
            engine.run()
            ledger = engine.ledger
            delivered_total += ledger.total_delivered()
            forwards_total += ledger.total_forwards()
            for view in ledger.records():
                per_broadcast.append((view.deliveries(), view.forwards))
                coverage_sum += view.coverage(num_nodes)
            engine_bytes = engine.memory_bytes()
            channels = snapshot.channel_count
        wall_waves = time.perf_counter() - started
        if delivered_total < min_delivered:
            raise ExperimentError(
                f"broadcast waves delivered {delivered_total} messages, "
                f"below the {min_delivered} floor for {mode} mode"
            )
        broadcasts = waves * per_wave
        return {
            "operations": delivered_total,
            "nodes": num_nodes,
            "waves": waves,
            "broadcasts": broadcasts,
            "fanout": fanout,
            "ttl": ttl,
            "delivered": delivered_total,
            "forwards": forwards_total,
            "mean_coverage": round(coverage_sum / broadcasts, 12),
            "channels": channels,
            "engine_bytes": engine_bytes,
            "shape_digest": _digest(per_broadcast),
            "wall_build_s": wall_build,
            "wall_waves_s": wall_waves,
            "wall_wave_s": wall_waves / waves,
        }

    return run


# ----------------------------------------------------------------------
# million-node churned overlay (the scale-smoke gate)
# ----------------------------------------------------------------------


def _prepare_net_codec(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """Wire-codec throughput: encode + strict decode of live-mesh traffic.

    Builds a seeded message mix shaped like real mesh traffic — mostly
    shuffle offers/replies with full pseudonym entry sets, plus the
    bootstrap/liveness/pseudonym-service control frames — and times
    round-tripping it through :func:`encode_frame` / :func:`decode_frame`.
    A sprinkle of corrupt frames keeps the rejection path honest (and
    measured): strict decode must classify them without raising.
    """
    from ..net.codec import (
        CodecError,
        Goodbye,
        Heartbeat,
        Hello,
        HelloAck,
        Lookup,
        LookupReply,
        PeerInfo,
        Register,
        ShuffleOffer,
        ShuffleReply,
        WireEntry,
        decode_frame,
        encode_frame,
    )
    from ..net.codec import AppPayload as WireAppPayload

    num_messages = 2_000 if mode == "quick" else 20_000
    rng = RandomStreams(seed).substream("bench", "net-codec")

    def entries(count: int) -> Tuple[WireEntry, ...]:
        return tuple(
            WireEntry(
                value=int(rng.integers(0, 2**32, dtype=np.uint32)),
                token=int(rng.integers(1, 2**63)),
                ttl=float(rng.uniform(0.5, 20.0)),
                host="127.0.0.1",
                port=int(rng.integers(1024, 65536)),
            )
            for _ in range(count)
        )

    messages: List[Any] = []
    for index in range(num_messages):
        kind = index % 10
        if kind < 4:
            messages.append(
                ShuffleOffer(
                    entries=entries(8),
                    reply_node=int(rng.integers(0, 2**32, dtype=np.uint32)),
                )
            )
        elif kind < 7:
            messages.append(ShuffleReply(entries=entries(8)))
        elif kind == 7:
            messages.append(
                Heartbeat(
                    node_id=int(rng.integers(0, 2**32, dtype=np.uint32)),
                    seq=index,
                    reply_wanted=bool(index & 1),
                )
            )
        elif kind == 8:
            messages.append(
                HelloAck(
                    node_id=int(rng.integers(0, 2**32, dtype=np.uint32)),
                    peers=tuple(
                        PeerInfo(node_id=p, host="127.0.0.1", port=40000 + p)
                        for p in range(8)
                    ),
                )
            )
        else:
            messages.append(
                [
                    Hello(node_id=index, host="127.0.0.1", port=41000),
                    Register(
                        node_id=index,
                        token=int(rng.integers(1, 2**63)),
                        host="127.0.0.1",
                        port=41000,
                    ),
                    Lookup(token=int(rng.integers(1, 2**63))),
                    LookupReply(
                        token=int(rng.integers(1, 2**63)),
                        found=True,
                        host="127.0.0.1",
                        port=41001,
                    ),
                    WireAppPayload(kind="bench", body=b"x" * 64),
                    Goodbye(node_id=index),
                ][index % 6]
            )
    # Pre-corrupted frames for the rejection path: truncations and
    # byte flips of valid frames, plus pure noise.
    corrupt: List[bytes] = []
    for index in range(num_messages // 10):
        frame = bytearray(encode_frame(messages[index % len(messages)]))
        style = index % 3
        if style == 0:
            corrupt.append(bytes(frame[: max(1, len(frame) // 2)]))
        elif style == 1:
            flip = int(rng.integers(0, len(frame)))
            frame[flip] ^= 0xFF
            corrupt.append(bytes(frame))
        else:
            corrupt.append(bytes(rng.integers(0, 256, size=32, dtype=np.uint8)))

    def run() -> Dict[str, Any]:
        encoded: List[bytes] = [encode_frame(message) for message in messages]
        decoded_ok = 0
        for frame in encoded:
            if not isinstance(decode_frame(frame), CodecError):
                decoded_ok += 1
        rejected = 0
        for frame in corrupt:
            if isinstance(decode_frame(frame), CodecError):
                rejected += 1
        wire_bytes = sum(len(frame) for frame in encoded)
        return {
            # One operation = one encode or one decode attempt.
            "operations": len(encoded) * 2 + len(corrupt),
            "messages": len(encoded),
            "decoded_ok": decoded_ok,
            "corrupt_frames": len(corrupt),
            "corrupt_rejected": rejected,
            "wire_bytes": wire_bytes,
            "mean_frame_bytes": round(wire_bytes / len(encoded), 6),
            "frames_digest": _digest(tuple(encoded[:64]), wire_bytes),
        }

    return run


def _prepare_million_node_churn(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """A churned overlay at scale through the round-based batch engine.

    Builds a ring-lattice trust graph, seats the population under
    discretized exponential churn, runs full shuffle rounds (mint,
    expiry, partner selection, shuffle-set exchange, link refresh) with
    :class:`BatchOverlay`, then assembles the online snapshot and
    computes the disconnection metric.  Quick mode runs 10^5 nodes (the
    CI ``scale-smoke`` gate); full mode is the million-node run from
    the ISSUE acceptance criteria.  Peak RSS is the fact that matters;
    the per-workload ``rss_delta_kb`` the harness records keeps the
    reading attributable to this workload wherever it runs in the
    suite, so its position is hygiene, not a requirement.
    """
    num_nodes, rounds = (100_000, 5) if mode == "quick" else (1_000_000, 6)
    config = SystemConfig(
        num_nodes=num_nodes,
        cache_size=16,
        shuffle_length=8,
        target_degree=12,
        min_pseudonym_links=8,
        availability=0.6,
        mean_offline_time=8.0,
        seed=seed,
    )

    def run() -> Dict[str, Any]:
        gc.collect()
        started = time.perf_counter()
        overlay = BatchOverlay.build(config, extra_edges_per_node=4)
        wall_build = time.perf_counter() - started
        started = time.perf_counter()
        overlay.run(rounds)
        wall_rounds = time.perf_counter() - started
        started = time.perf_counter()
        analysis = overlay.analysis()
        fraction = analysis.fraction_disconnected()
        wall_metrics = time.perf_counter() - started
        stats = overlay.stats()
        return {
            "operations": stats["exchanges"],
            "nodes": num_nodes,
            "rounds": rounds,
            "online_nodes": stats["online_nodes"],
            "exchanges": stats["exchanges"],
            "pseudonyms_created": stats["pseudonyms_created"],
            "link_additions": stats["link_additions"],
            "link_removals": stats["link_removals"],
            "fraction_disconnected": round(fraction, 12),
            "mean_degree": round(overlay.mean_out_degree(), 12),
            "engine_bytes": overlay.memory_bytes(),
            "state_digest": overlay.state_digest()[:16],
            "wall_build_s": wall_build,
            "wall_rounds_s": wall_rounds,
            "wall_round_s": wall_rounds / rounds,
            "wall_metrics_s": wall_metrics,
        }

    return run


# ----------------------------------------------------------------------
# sharded churn (one run spread across worker processes, digest-checked)
# ----------------------------------------------------------------------


def _prepare_sharded_churn(mode: str, seed: int) -> Callable[[], Dict[str, Any]]:
    """The same churned overlay run serially and across shard workers.

    The timed iteration runs the scale workload's configuration twice
    over an identical 4-shard grid: once with the serial
    :class:`BatchOverlay` and once with :class:`ShardedOverlay` forking
    four worker processes, then *raises* if their state digests or
    counters differ — the bench suite doubles as a continuous
    serial/sharded equivalence check at scale.  Quick mode runs 10^5
    nodes (the CI ``shard-smoke`` gate); full mode is the million-node
    run from the ISSUE acceptance criteria.  Wall-clock scaling facts
    live under ``wall_``-prefixed keys, which the determinism strip
    removes — a low speedup (inevitable on few-core CI runners) is
    reported, never raised on; only digest divergence fails the run.
    """
    num_nodes, rounds = (100_000, 4) if mode == "quick" else (1_000_000, 6)
    num_shards = 4
    workers = 4
    config = SystemConfig(
        num_nodes=num_nodes,
        cache_size=16,
        shuffle_length=8,
        target_degree=12,
        min_pseudonym_links=8,
        availability=0.6,
        mean_offline_time=8.0,
        seed=seed,
    )
    options = ShardOptions(num_shards=num_shards, workers=workers)

    def run() -> Dict[str, Any]:
        gc.collect()
        started = time.perf_counter()
        serial = BatchOverlay.build(
            config, extra_edges_per_node=4, num_shards=num_shards
        )
        serial.run(rounds)
        serial_digest = serial.state_digest()
        serial_stats = serial.stats()
        wall_serial = time.perf_counter() - started
        del serial
        gc.collect()
        started = time.perf_counter()
        with ShardedOverlay.build(
            config, extra_edges_per_node=4, options=options
        ) as sharded:
            sharded.run(rounds)
            sharded_digest = sharded.state_digest()
            sharded_stats = sharded.stats()
        wall_sharded = time.perf_counter() - started
        if sharded_digest != serial_digest or sharded_stats != serial_stats:
            raise ParallelError(
                "sharded overlay diverged from the serial batch engine: "
                f"{sharded_digest[:16]} != {serial_digest[:16]}"
            )
        speedup = wall_serial / wall_sharded if wall_sharded > 0 else 0.0
        return {
            # Every exchange happened twice (once per engine).
            "operations": serial_stats["exchanges"] * 2,
            "nodes": num_nodes,
            "rounds": rounds,
            "shards": num_shards,
            "workers": workers,
            "online_nodes": serial_stats["online_nodes"],
            "exchanges": serial_stats["exchanges"],
            "state_digest": serial_digest[:16],
            "digests_match": True,
            "wall_serial_s": wall_serial,
            "wall_sharded_s": wall_sharded,
            "wall_speedup": speedup,
            "wall_efficiency": speedup / workers,
        }

    return run


SUITE: Tuple[Workload, ...] = (
    Workload(
        "event_loop_churn",
        "event-loop throughput under cancel/reschedule churn (events/sec)",
        _prepare_event_loop_churn,
    ),
    Workload(
        "shuffle_round",
        "no-churn overlay gossip rounds at smoke scale",
        _prepare_shuffle_round,
    ),
    Workload(
        "brahms_sampler",
        "Brahms sampler slot folding of received batches",
        _prepare_brahms_sampler,
    ),
    Workload(
        "churn_sessions",
        "pre-generated churn session traces for a large population",
        _prepare_churn_sessions,
    ),
    Workload(
        "metrics_sample",
        "collector metric kernels on a 2k-node churned snapshot (fast vs networkx)",
        _prepare_metrics_sample,
    ),
    Workload(
        "mixnet_message",
        "end-to-end mixnet sends, cached-circuit fast path vs legacy",
        _prepare_mixnet_message,
    ),
    Workload(
        "overlay_churn",
        "one overlay under live churn (Figure 8 inner loop)",
        _prepare_overlay_churn,
    ),
    Workload(
        "availability_sweep",
        "miniature Figure-3 availability sweep, full stack",
        _prepare_availability_sweep,
    ),
    Workload(
        "parallel_sweep",
        "serial vs multiprocess grid sweep (digest-checked equivalence)",
        _prepare_parallel_sweep,
    ),
    Workload(
        "node_plane",
        "arena batch kernels vs per-node objects (state-checked differential)",
        _prepare_node_plane,
    ),
    Workload(
        "net_codec",
        "wire-frame encode + strict decode of live-mesh traffic",
        _prepare_net_codec,
    ),
    Workload(
        "heavy_broadcast",
        "epidemic broadcast: batch frontier engine vs object plane "
        "(exactness-checked differential)",
        _prepare_heavy_broadcast,
    ),
    # The scale runs sit last as hygiene: rss_delta_kb already keeps
    # each workload's memory reading attributable regardless of order,
    # but front-loading the small entries keeps quick subset runs quick.
    Workload(
        "million_node_churn",
        "churned overlay at scale through the batch engine (peak-RSS gate)",
        _prepare_million_node_churn,
    ),
    Workload(
        "sharded_churn",
        "serial vs sharded batch engine at scale (digest-checked equivalence)",
        _prepare_sharded_churn,
    ),
    Workload(
        "million_message_broadcast",
        "sustained broadcast waves over a churning 100k-node batch overlay",
        _prepare_million_message_broadcast,
    ),
)


def workload_names() -> List[str]:
    """Names of every workload in the suite, in run order."""
    return [workload.name for workload in SUITE]
