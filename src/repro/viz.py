"""Terminal visualization: sparklines, line plots, bar histograms.

The benchmark harness prints numeric tables; this module renders the
same series as lightweight ASCII/Unicode graphics so figure shapes are
visible directly in a terminal (`repro fig8 --plot`).  No plotting
dependencies are used.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from .errors import ExperimentError

__all__ = ["sparkline", "line_plot", "bar_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render values as a one-line sparkline.

    Parameters
    ----------
    values:
        The series; empty input yields an empty string.
    lo, hi:
        Optional fixed scale bounds (defaults: the data's min/max).
    """
    if not values:
        return ""
    minimum = min(values) if lo is None else lo
    maximum = max(values) if hi is None else hi
    if maximum <= minimum:
        return _SPARK_LEVELS[0] * len(values)
    span = maximum - minimum
    chars = []
    for value in values:
        clamped = min(max(value, minimum), maximum)
        index = int((clamped - minimum) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def _resample(xs: Sequence[float], ys: Sequence[float], width: int) -> list:
    """Average y-values into ``width`` equal x-bins (None for empty bins)."""
    if not xs:
        return [None] * width
    x_min, x_max = min(xs), max(xs)
    if x_max <= x_min:
        return [sum(ys) / len(ys)] + [None] * (width - 1)
    sums = [0.0] * width
    counts = [0] * width
    for x, y in zip(xs, ys):
        index = min(width - 1, int((x - x_min) / (x_max - x_min) * width))
        sums[index] += y
        counts[index] += 1
    return [
        (sums[index] / counts[index]) if counts[index] else None
        for index in range(width)
    ]


def line_plot(
    series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more (xs, ys) series on a shared ASCII grid.

    Each series gets a distinct marker; a legend follows the plot.
    """
    if not series:
        raise ExperimentError("need at least one series")
    if width < 8 or height < 3:
        raise ExperimentError("plot must be at least 8x3")

    markers = "*o+x#@%&"
    resampled: Dict[str, list] = {}
    all_values = []
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ExperimentError(f"series {name!r} has mismatched lengths")
        resampled[name] = _resample(list(xs), list(ys), width)
        all_values.extend(y for y in resampled[name] if y is not None)
    if not all_values:
        raise ExperimentError("all series are empty")

    y_min = min(all_values)
    y_max = max(all_values)
    if y_max <= y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(resampled.items()):
        marker = markers[series_index % len(markers)]
        for column, value in enumerate(values):
            if value is None:
                continue
            row = int((value - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    label_width = 9
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.3g} "
        elif row_index == height - 1:
            label = f"{y_min:8.3g} "
        else:
            label = " " * label_width
        lines.append(label + "|" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    all_x = [x for xs, _ in series.values() for x in xs]
    lines.append(
        " " * label_width
        + f" x: {min(all_x):g} .. {max(all_x):g}"
        + (f"   y: {y_label}" if y_label else "")
    )
    legend = "   ".join(
        f"{markers[index % len(markers)]} {name}"
        for index, name in enumerate(resampled)
    )
    lines.append(" " * label_width + " " + legend)
    return "\n".join(lines)


def bar_chart(
    data: Mapping[str, float],
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart of label -> value."""
    if not data:
        raise ExperimentError("need at least one bar")
    if width < 1:
        raise ExperimentError("width must be positive")
    maximum = max(data.values())
    label_width = max(len(str(label)) for label in data)
    lines = [title] if title else []
    for label, value in data.items():
        if maximum > 0:
            bar = "█" * max(1 if value > 0 else 0, int(value / maximum * width))
        else:
            bar = ""
        lines.append(f"{str(label):>{label_width}} |{bar} {value:g}")
    return "\n".join(lines)
