"""Exception hierarchy for the repro library.

All exceptions raised by this library derive from :class:`ReproError`,
so callers can catch a single base class.  Subclasses are grouped by the
subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class SimulationError(ReproError):
    """The simulation engine was used incorrectly."""


class SchedulerError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class GraphError(ReproError):
    """A graph input is invalid (empty, disconnected where not allowed, ...)."""


class SamplingError(GraphError):
    """The trust-graph sampler received invalid parameters."""


class ChurnError(ReproError):
    """A churn model received invalid parameters."""


class LinkLayerError(ReproError):
    """A privacy-preserving link-layer operation failed."""


class PseudonymError(LinkLayerError):
    """A pseudonym is unknown, expired, or malformed."""


class MixnetError(LinkLayerError):
    """A mixnet circuit could not be built or used."""


class ReplayDetectedError(MixnetError):
    """A relay dropped a message because it was a replay."""


class ProtocolError(ReproError):
    """The overlay protocol was driven incorrectly."""


class NodeOfflineError(ProtocolError):
    """An operation requiring an online node was invoked while offline."""


class DisseminationError(ReproError):
    """A broadcast protocol was misused."""


class NetError(ReproError):
    """The live-network layer (repro.net) was misconfigured or misused.

    Wire-level *decode* failures are deliberately not exceptions — the
    codec returns a typed :class:`repro.net.codec.CodecError` value so a
    malformed datagram can never unwind a receive loop.
    """


class ExperimentError(ReproError):
    """An experiment scenario or runner was misconfigured."""


class ParallelError(ExperimentError):
    """The parallel sweep engine was misconfigured or a run failed."""
