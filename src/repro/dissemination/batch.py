"""Columnar dissemination: vectorized frontier rounds at million-message scale.

The object-plane disseminators (:mod:`repro.dissemination.epidemic`,
:mod:`repro.dissemination.flooding`) run one Python callback per
message hop, which caps practical runs around 10⁴ deliveries.  This
module re-states the same protocols as columnar batch kernels:

* :class:`ChannelSnapshot` compiles the overlay's live bidirectional
  channels — trusted links plus unexpired pseudonym links at *both*
  ends, exactly the channel semantics of
  :func:`repro.dissemination.base.build_channel_lists` — into a flat
  CSR over resolved destination node ids.
* :class:`BroadcastLedger` replaces dict-of-dicts
  :class:`~repro.dissemination.base.BroadcastRecord` bookkeeping with
  flat columns (uint8 TTLs, int16 delivery-round matrix, int64 forward
  and delivery counters) plus lazy :class:`LedgerRecordView` objects
  that quack like ``BroadcastRecord`` for reporting code.
* :class:`BatchBroadcastEngine` advances *all* active broadcasts one
  frontier round per :meth:`~BatchBroadcastEngine.step`: whole-frontier
  fanout sampling, ``np.unique`` duplicate suppression, and vectorized
  delivery marking in place of per-hop ``app_handler`` calls.

Exactness contract
------------------
The engine is pinned byte-identical to the object plane (same delivery
sets, same per-node delivery rounds, same forward counts) when run
against :class:`~repro.dissemination.epidemic.EpidemicBroadcast` in
``sampling="counter"`` mode or :class:`FloodBroadcast` over the same
:class:`ChannelSnapshot`.  The mechanism is counter-keyed sampling
(:func:`repro.dissemination.base.channel_keys`): each broadcast draws
*one* 63-bit key from the shared dissemination RNG substream, and every
activation's channel subset is a pure function of
``(key, round, node, channel index)`` — order-independent, so sampling
a whole frontier at once equals sampling its activations one by one.
See ``docs/dissemination.md`` for the full contract and its test
anchors in ``tests/test_dissemination_batch.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import DisseminationError
from ..rng import random_bits
from .base import _CHANNEL_SALT, _mix64, build_channel_lists, channel_key_base

__all__ = [
    "ChannelSnapshot",
    "BroadcastLedger",
    "LedgerRecordView",
    "BatchBroadcastEngine",
]


def _cumsum0(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum with a leading zero (CSR indptr shape)."""
    out = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, out=out[1:])
    return out


class ChannelSnapshot:
    """A frozen CSR view of the overlay's bidirectional channels.

    Row ``n`` lists the destination node id of every channel node ``n``
    can currently send over.  Built either from an object-plane
    :class:`~repro.core.Overlay` (preserving that plane's exact channel
    ordering, so counter-keyed sampling picks identical subsets) or
    from a :class:`~repro.core.batch.BatchOverlay` via its
    :meth:`~repro.core.batch.BatchOverlay.channel_edges` hook.

    The snapshot is an instant in time: channel churn after the build
    is invisible to it, matching the object plane's per-broadcast
    adjacency freeze.
    """

    __slots__ = ("num_nodes", "indptr", "targets")

    def __init__(self, indptr: np.ndarray, targets: np.ndarray) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.targets = np.ascontiguousarray(targets, dtype=np.int64)
        self.num_nodes = len(self.indptr) - 1
        if self.num_nodes < 0:
            raise DisseminationError("indptr must have at least one entry")
        if int(self.indptr[-1]) != len(self.targets):
            raise DisseminationError(
                f"indptr covers {int(self.indptr[-1])} channels, "
                f"targets has {len(self.targets)}"
            )

    @property
    def channel_count(self) -> int:
        """Total directed channels in the snapshot."""
        return len(self.targets)

    def degrees(self) -> np.ndarray:
        """Per-node channel counts."""
        return np.diff(self.indptr)

    def memory_bytes(self) -> int:
        """Deterministic storage accounting."""
        return self.indptr.nbytes + self.targets.nbytes

    @classmethod
    def from_overlay(cls, overlay) -> "ChannelSnapshot":
        """Compile an object-plane overlay's channel lists.

        Channel order within each row is exactly the order
        :func:`~repro.dissemination.base.build_channel_lists` produces
        (trusted/out entries in node-visit order with reverse entries
        interleaved), which is what makes counter-keyed subsets match
        the object plane index for index.
        """
        lists = build_channel_lists(overlay)
        num_nodes = len(overlay.nodes)
        degrees = np.array(
            [len(lists[node.node_id]) for node in overlay.nodes], dtype=np.int64
        )
        indptr = _cumsum0(degrees)
        targets = np.empty(int(indptr[-1]), dtype=np.int64)
        position = 0
        for node in overlay.nodes:
            for _kind, _target, destination in lists[node.node_id]:
                targets[position] = destination
                position += 1
        return cls(indptr, targets)

    @classmethod
    def from_batch_overlay(cls, overlay) -> "ChannelSnapshot":
        """Compile a :class:`~repro.core.batch.BatchOverlay`'s channels.

        Per row the canonical order is: trusted neighbours (CSR
        order), then "out" channels (link-slot order), then "reverse"
        channels (holder order).  This differs from the object plane's
        interleaved order — exact cross-plane equality is defined over
        a *shared* snapshot, which the differential workloads use.
        """
        indptr, indices, holder, owner = overlay.channel_edges()
        num_nodes = len(indptr) - 1
        trusted_deg = np.diff(indptr)
        out_deg = np.bincount(holder, minlength=num_nodes)
        reverse_deg = np.bincount(owner, minlength=num_nodes)
        new_indptr = _cumsum0(trusted_deg + out_deg + reverse_deg)
        targets = np.empty(int(new_indptr[-1]), dtype=np.int64)
        # Trusted block: shift each CSR row to its new offset.
        total_trusted = int(indptr[-1])
        if total_trusted:
            rows = np.repeat(np.arange(num_nodes, dtype=np.int64), trusted_deg)
            within = np.arange(total_trusted, dtype=np.int64) - indptr[rows]
            targets[new_indptr[rows] + within] = indices
        # Out block: group (holder -> owner) edges by holder.
        if len(holder):
            order = np.argsort(holder, kind="stable")
            grouped = holder[order]
            starts = _cumsum0(np.bincount(grouped, minlength=num_nodes))
            within = np.arange(len(grouped), dtype=np.int64) - starts[grouped]
            position = new_indptr[grouped] + trusted_deg[grouped] + within
            targets[position] = owner[order]
            # Reverse block: the same edges grouped by owner.
            order = np.argsort(owner, kind="stable")
            grouped = owner[order]
            starts = _cumsum0(np.bincount(grouped, minlength=num_nodes))
            within = np.arange(len(grouped), dtype=np.int64) - starts[grouped]
            position = (
                new_indptr[grouped]
                + trusted_deg[grouped]
                + out_deg[grouped]
                + within
            )
            targets[position] = holder[order]
        return cls(new_indptr, targets)


class LedgerRecordView:
    """A lazy, read-only view of one ledger row.

    Duck-compatible with
    :class:`~repro.dissemination.base.BroadcastRecord` (works with
    :func:`repro.dissemination.coverage.coverage_report`); the time
    axis is frontier rounds, so latencies are hop counts.
    """

    __slots__ = ("_ledger", "_row")

    def __init__(self, ledger: "BroadcastLedger", row: int) -> None:
        self._ledger = ledger
        self._row = row

    @property
    def message_id(self) -> int:
        """1-based message id (row order of :meth:`BroadcastLedger.open`)."""
        return self._row + 1

    @property
    def origin(self) -> int:
        """The broadcasting node."""
        return int(self._ledger.origins[self._row])

    @property
    def started_at(self) -> float:
        """Engine round at which the broadcast started."""
        return float(self._ledger.start_rounds[self._row])

    @property
    def forwards(self) -> int:
        """Total messages sent on behalf of this broadcast."""
        return int(self._ledger.forwards[self._row])

    @property
    def payload(self) -> Any:
        """The broadcast payload (opaque)."""
        return self._ledger.payloads[self._row]

    @property
    def delivery_rounds(self) -> Dict[int, int]:
        """Node id -> relative delivery round (origin is 0)."""
        row = self._ledger.delivery_round[self._row]
        reached = np.flatnonzero(row >= 0)
        return dict(zip(reached.tolist(), row[reached].tolist()))

    @property
    def delivery_times(self) -> Dict[int, float]:
        """Node id -> absolute delivery round, as floats.

        Shaped like ``BroadcastRecord.delivery_times`` with rounds for
        timestamps.
        """
        start = self.started_at
        return {
            node: start + float(rel)
            for node, rel in self.delivery_rounds.items()
        }

    def deliveries(self) -> int:
        """Number of distinct nodes that received the message."""
        return int(self._ledger.delivered[self._row])

    def coverage(self, num_nodes: int) -> float:
        """Fraction of ``num_nodes`` reached (origin included)."""
        if num_nodes <= 0:
            raise DisseminationError("num_nodes must be positive")
        return self.deliveries() / num_nodes

    def latency_of(self, node_id: int) -> Optional[float]:
        """Delivery latency in rounds (None if never delivered)."""
        rel = int(self._ledger.delivery_round[self._row, node_id])
        if rel < 0:
            return None
        return float(rel)

    def max_latency(self) -> float:
        """Worst delivery latency (rounds) across reached nodes."""
        row = self._ledger.delivery_round[self._row]
        reached = row[row >= 0]
        if not len(reached):
            return 0.0
        return float(reached.max())

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile delivery latency over reached nodes."""
        if not 0.0 <= q <= 100.0:
            raise DisseminationError("percentile must be in [0, 100]")
        row = self._ledger.delivery_round[self._row]
        reached = row[row >= 0]
        if not len(reached):
            return 0.0
        return float(np.percentile(reached, q))


class BroadcastLedger:
    """Columnar bookkeeping for many concurrent broadcasts.

    One row per broadcast: origin, counter-sampling key, uint8 TTL,
    fanout, start round, int64 forward/delivery counters, and an int16
    ``(broadcasts, num_nodes)`` delivery-round matrix (−1 = never
    delivered) in place of per-record dicts.  Rows are appended by
    :meth:`open` and read through :class:`LedgerRecordView`.
    """

    __slots__ = (
        "num_nodes",
        "origins",
        "keys",
        "ttls",
        "fanouts",
        "start_rounds",
        "forwards",
        "delivered",
        "delivery_round",
        "payloads",
        "_count",
    )

    def __init__(self, num_nodes: int, capacity: int = 16) -> None:
        if num_nodes <= 0:
            raise DisseminationError("num_nodes must be positive")
        capacity = max(1, capacity)
        self.num_nodes = num_nodes
        self.origins = np.zeros(capacity, dtype=np.int64)
        self.keys = np.zeros(capacity, dtype=np.uint64)
        self.ttls = np.zeros(capacity, dtype=np.uint8)
        self.fanouts = np.full(capacity, -1, dtype=np.int64)
        self.start_rounds = np.zeros(capacity, dtype=np.int64)
        self.forwards = np.zeros(capacity, dtype=np.int64)
        self.delivered = np.zeros(capacity, dtype=np.int64)
        self.delivery_round = np.full((capacity, num_nodes), -1, dtype=np.int16)
        self.payloads: List[Any] = []
        self._count = 0

    @property
    def count(self) -> int:
        """Number of broadcasts opened."""
        return self._count

    def _ensure_capacity(self, rows: int) -> None:
        capacity = len(self.origins)
        if self._count + rows <= capacity:
            return
        while capacity < self._count + rows:
            capacity *= 2
        grow = capacity - len(self.origins)
        self.origins = np.concatenate(
            (self.origins, np.zeros(grow, dtype=np.int64))
        )
        self.keys = np.concatenate((self.keys, np.zeros(grow, dtype=np.uint64)))
        self.ttls = np.concatenate((self.ttls, np.zeros(grow, dtype=np.uint8)))
        self.fanouts = np.concatenate(
            (self.fanouts, np.full(grow, -1, dtype=np.int64))
        )
        self.start_rounds = np.concatenate(
            (self.start_rounds, np.zeros(grow, dtype=np.int64))
        )
        self.forwards = np.concatenate(
            (self.forwards, np.zeros(grow, dtype=np.int64))
        )
        self.delivered = np.concatenate(
            (self.delivered, np.zeros(grow, dtype=np.int64))
        )
        self.delivery_round = np.concatenate(
            (
                self.delivery_round,
                np.full((grow, self.num_nodes), -1, dtype=np.int16),
            )
        )

    def open(
        self,
        origin: int,
        key: int,
        ttl: int,
        fanout: Optional[int],
        start_round: int,
        payload: Any = None,
    ) -> int:
        """Append a broadcast row; returns its 1-based message id.

        The origin counts as delivered at relative round 0, exactly as
        ``BroadcastRecord`` seeds ``delivery_times`` with the origin.
        """
        if not 1 <= ttl <= 255:
            raise DisseminationError("ttl must be in [1, 255]")
        self._ensure_capacity(1)
        row = self._count
        self.origins[row] = origin
        self.keys[row] = np.uint64(key)
        self.ttls[row] = ttl
        self.fanouts[row] = -1 if fanout is None else fanout
        self.start_rounds[row] = start_round
        self.delivery_round[row, origin] = 0
        self.delivered[row] = 1
        self.payloads.append(payload)
        self._count += 1
        return row + 1

    def record(self, message_id: int) -> LedgerRecordView:
        """A lazy view of one broadcast's bookkeeping."""
        if not 1 <= message_id <= self._count:
            raise DisseminationError(f"unknown message id {message_id}")
        return LedgerRecordView(self, message_id - 1)

    def records(self) -> Iterator[LedgerRecordView]:
        """Views of every opened broadcast, in message-id order."""
        for row in range(self._count):
            yield LedgerRecordView(self, row)

    def total_delivered(self) -> int:
        """Distinct (broadcast, node) deliveries across all rows."""
        return int(self.delivered[: self._count].sum())

    def total_forwards(self) -> int:
        """Messages sent across all rows."""
        return int(self.forwards[: self._count].sum())

    def memory_bytes(self) -> int:
        """Deterministic storage accounting."""
        return (
            self.origins.nbytes
            + self.keys.nbytes
            + self.ttls.nbytes
            + self.fanouts.nbytes
            + self.start_rounds.nbytes
            + self.forwards.nbytes
            + self.delivered.nbytes
            + self.delivery_round.nbytes
        )


class BatchBroadcastEngine:
    """Vectorized epidemic/flood dissemination over a channel snapshot.

    Parameters
    ----------
    snapshot:
        The frozen channel CSR broadcasts ride on.
    ttl:
        Hop budget per broadcast (1..255; stored as a uint8 column).
    fanout:
        Channels pushed per activation; ``None`` floods every channel.
    infect_forever:
        When True, every receipt re-triggers pushes (multiplicities are
        tracked per (broadcast, node, round) — bounded by fanoutᵗᵗˡ);
        when False, only first receipts push (infect-and-die, which is
        also flooding's duplicate suppression).
    rng:
        Source of per-broadcast 63-bit sampling keys; required in
        fanout mode.  Pass ``overlay.substream("dissemination")`` to
        draw the *same* key sequence as an object-plane
        ``EpidemicBroadcast(sampling="counter")``, or
        ``RandomStreams(seed).substream("aux", "dissemination")`` to
        reproduce it from scratch beside a ``BatchOverlay``.
    online:
        Optional bool mask (length ``num_nodes``).  Arrivals at offline
        nodes are dropped — the columnar form of ``NodeDirectory``
        delivering "iff the destination is online" — and offline
        origins refuse to broadcast.  The array is read live at each
        step, so a caller stepping churn between rounds is honoured.
    """

    __slots__ = (
        "_snapshot",
        "_ledger",
        "_ttl",
        "_fanout",
        "_infect_forever",
        "_rng",
        "_online",
        "_rounds",
        "_frontier_bid",
        "_frontier_node",
        "_frontier_mult",
        "_frontier_round",
        "_delivered_total",
    )

    def __init__(
        self,
        snapshot: ChannelSnapshot,
        fanout: Optional[int] = 4,
        ttl: int = 12,
        infect_forever: bool = False,
        rng: Optional[np.random.Generator] = None,
        online: Optional[np.ndarray] = None,
    ) -> None:
        if not 1 <= ttl <= 255:
            raise DisseminationError("ttl must be in [1, 255]")
        if fanout is not None and fanout < 1:
            raise DisseminationError("fanout must be at least 1")
        if fanout is None and infect_forever:
            raise DisseminationError(
                "infect_forever requires a finite fanout"
            )
        if fanout is not None and rng is None:
            raise DisseminationError(
                "fanout sampling needs an rng for per-broadcast keys"
            )
        if online is not None and len(online) != snapshot.num_nodes:
            raise DisseminationError(
                f"online mask covers {len(online)} nodes, "
                f"snapshot has {snapshot.num_nodes}"
            )
        self._snapshot = snapshot
        self._ledger = BroadcastLedger(snapshot.num_nodes)
        self._ttl = ttl
        self._fanout = fanout
        self._infect_forever = infect_forever
        self._rng = rng
        self._online = online
        self._rounds = 0
        self._frontier_bid = np.zeros(0, dtype=np.int64)
        self._frontier_node = np.zeros(0, dtype=np.int64)
        self._frontier_mult = np.zeros(0, dtype=np.int64)
        self._frontier_round = np.zeros(0, dtype=np.int64)
        self._delivered_total = 0

    @property
    def ledger(self) -> BroadcastLedger:
        """The columnar bookkeeping store."""
        return self._ledger

    @property
    def snapshot(self) -> ChannelSnapshot:
        """The channel CSR this engine runs over."""
        return self._snapshot

    @property
    def rounds(self) -> int:
        """Frontier rounds executed so far."""
        return self._rounds

    @property
    def frontier_size(self) -> int:
        """Pending activations for the next round."""
        return len(self._frontier_bid)

    @property
    def total_delivered(self) -> int:
        """Distinct (broadcast, node) deliveries, origins included."""
        return self._delivered_total

    def start(
        self,
        origins: Sequence[int],
        payloads: Optional[Sequence[Any]] = None,
    ) -> List[int]:
        """Open one broadcast per origin; returns their message ids.

        Keys are drawn one per broadcast in origin order — the same
        stream consumption as an object-plane counter-mode
        ``broadcast()`` loop over the same origins.
        """
        origin_ids = np.asarray(origins, dtype=np.int64)
        if payloads is not None and len(payloads) != len(origin_ids):
            raise DisseminationError("one payload per origin required")
        num_nodes = self._snapshot.num_nodes
        message_ids: List[int] = []
        for position, origin in enumerate(origin_ids):
            origin = int(origin)
            if not 0 <= origin < num_nodes:
                raise DisseminationError(f"origin {origin} out of range")
            if self._online is not None and not bool(self._online[origin]):
                raise DisseminationError(f"origin node {origin} is offline")
            key = 0
            if self._fanout is not None:
                key = random_bits(self._rng, 63)
            payload = payloads[position] if payloads is not None else None
            message_ids.append(
                self._ledger.open(
                    origin=origin,
                    key=key,
                    ttl=self._ttl,
                    fanout=self._fanout,
                    start_round=self._rounds,
                    payload=payload,
                )
            )
            self._delivered_total += 1
        rows = np.array([mid - 1 for mid in message_ids], dtype=np.int64)
        self._frontier_bid = np.concatenate((self._frontier_bid, rows))
        self._frontier_node = np.concatenate(
            (self._frontier_node, origin_ids)
        )
        self._frontier_mult = np.concatenate(
            (self._frontier_mult, np.ones(len(rows), dtype=np.int64))
        )
        self._frontier_round = np.concatenate(
            (self._frontier_round, np.zeros(len(rows), dtype=np.int64))
        )
        return message_ids

    def step(self) -> int:
        """Advance every active broadcast one frontier round.

        Returns the number of new (broadcast, node) deliveries.  One
        call fans out the whole frontier, suppresses duplicates with
        one ``np.unique`` pass, marks deliveries into the ledger's
        round matrix, and assembles the next frontier — no per-message
        Python in the loop.
        """
        bids = self._frontier_bid
        if not len(bids):
            return 0
        nodes = self._frontier_node
        mult = self._frontier_mult
        sender_round = self._frontier_round
        snapshot = self._snapshot
        ledger = self._ledger
        degree = (
            snapshot.indptr[nodes + 1] - snapshot.indptr[nodes]
        ).astype(np.int64)
        starts = _cumsum0(degree)
        total = int(starts[-1])
        self._rounds += 1
        if total == 0:
            self._clear_frontier()
            return 0
        pair = np.repeat(np.arange(len(bids), dtype=np.int64), degree)
        flat = np.arange(total, dtype=np.int64)
        within = flat - starts[pair]
        destination = snapshot.targets[snapshot.indptr[nodes][pair] + within]
        fanout = self._fanout
        if fanout is not None:
            # Counter-keyed whole-frontier sampling: every channel gets
            # the key its activation would compute in the object plane;
            # per pair the smallest `fanout` keys win (stable tie-break
            # by channel index, same as np.argsort(kind="stable")).
            base = channel_key_base(
                ledger.keys[bids], sender_round, nodes
            )
            with np.errstate(over="ignore"):
                flat_keys = _mix64(
                    base[pair]
                    ^ ((within + 1).astype(np.uint64) * _CHANNEL_SALT)
                )
            order = np.lexsort((within, flat_keys, pair))
            rank = flat - starts[pair[order]]
            chosen = order[rank < fanout]
            sends_per_pair = np.minimum(degree, fanout)
            pair = pair[chosen]
            destination = destination[chosen]
        else:
            sends_per_pair = degree
        # Forwards count sends, not deliveries: messages to offline
        # nodes are sent and then dropped, exactly as the object
        # plane's link layer does.
        np.add.at(ledger.forwards, bids, mult * sends_per_pair)
        arrival_bid = bids[pair]
        arrival_round = sender_round[pair] + 1
        arrival_mult = mult[pair]
        if self._online is not None:
            alive = self._online[destination]
            arrival_bid = arrival_bid[alive]
            destination = destination[alive]
            arrival_round = arrival_round[alive]
            arrival_mult = arrival_mult[alive]
        if not len(arrival_bid):
            self._clear_frontier()
            return 0
        code = arrival_bid * np.int64(snapshot.num_nodes) + destination
        unique_code, first, inverse = np.unique(
            code, return_index=True, return_inverse=True
        )
        bid_u = arrival_bid[first]
        node_u = destination[first]
        round_u = arrival_round[first]
        current = ledger.delivery_round[bid_u, node_u]
        fresh = current < 0
        ledger.delivery_round[bid_u[fresh], node_u[fresh]] = round_u[
            fresh
        ].astype(np.int16)
        np.add.at(ledger.delivered, bid_u[fresh], 1)
        delivered_now = int(fresh.sum())
        self._delivered_total += delivered_now
        within_budget = round_u < ledger.ttls[bid_u]
        if self._infect_forever:
            # Path multiplicity: every receipt re-triggers, so carry
            # the number of same-round arrivals as a multiplicity (all
            # copies select the same counter-keyed channels).
            multiplicity = np.zeros(len(unique_code), dtype=np.int64)
            np.add.at(multiplicity, inverse, arrival_mult)
            keep = within_budget
            self._frontier_mult = multiplicity[keep]
        else:
            keep = fresh & within_budget
            self._frontier_mult = np.ones(int(keep.sum()), dtype=np.int64)
        self._frontier_bid = bid_u[keep]
        self._frontier_node = node_u[keep]
        self._frontier_round = round_u[keep]
        return delivered_now

    def run(self, max_rounds: Optional[int] = None) -> int:
        """Step until every frontier drains; returns new deliveries.

        TTL columns bound the rounds, so this always terminates; pass
        ``max_rounds`` to stop earlier (e.g. to interleave churn).
        """
        delivered = 0
        rounds = 0
        while len(self._frontier_bid):
            if max_rounds is not None and rounds >= max_rounds:
                break
            delivered += self.step()
            rounds += 1
        return delivered

    def broadcast(self, origin_id: int, payload: Any = None) -> LedgerRecordView:
        """Start one broadcast and run *all* active frontiers dry.

        Convenience mirror of the object plane's ``broadcast()``;
        returns the new broadcast's record view.
        """
        message_ids = self.start([origin_id], payloads=[payload])
        self.run()
        return self._ledger.record(message_ids[0])

    def _clear_frontier(self) -> None:
        self._frontier_bid = np.zeros(0, dtype=np.int64)
        self._frontier_node = np.zeros(0, dtype=np.int64)
        self._frontier_mult = np.zeros(0, dtype=np.int64)
        self._frontier_round = np.zeros(0, dtype=np.int64)

    def memory_bytes(self) -> int:
        """Deterministic storage accounting (snapshot + ledger)."""
        frontier = (
            self._frontier_bid.nbytes
            + self._frontier_node.nbytes
            + self._frontier_mult.nbytes
            + self._frontier_round.nbytes
        )
        return self._snapshot.memory_bytes() + self._ledger.memory_bytes() + frontier
