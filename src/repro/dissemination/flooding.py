"""Controlled flooding over the overlay.

Every node forwards a newly seen message to *all* of its overlay links
until the hop budget (TTL) is exhausted.  On a connected, low-diameter
overlay — exactly what the maintenance protocol produces — a small TTL
suffices to reach everyone, which is the paper's motivation for keeping
path lengths short.
"""

from __future__ import annotations

from typing import Any

from ..core import Overlay
from ..errors import DisseminationError
from .base import AppMessage, BroadcastRecord, Disseminator

__all__ = ["FloodBroadcast"]


class FloodBroadcast(Disseminator):
    """Duplicate-suppressed flooding with a hop limit.

    Parameters
    ----------
    overlay:
        The substrate.  The disseminator must be :meth:`install`-ed
        before broadcasting.
    ttl:
        Maximum number of hops a message travels from the origin.
    """

    def __init__(self, overlay: Overlay, ttl: int = 10) -> None:
        super().__init__(overlay)
        if ttl < 1:
            raise DisseminationError("ttl must be at least 1")
        self._ttl = ttl

    @property
    def ttl(self) -> int:
        """Hop budget per broadcast."""
        return self._ttl

    def broadcast(self, origin_id: int, payload: Any) -> BroadcastRecord:
        """Start a flood from ``origin_id``.  The origin must be online."""
        origin = self.overlay.nodes[origin_id]
        if not origin.online:
            raise DisseminationError(f"origin node {origin_id} is offline")
        record = self._new_record(origin_id)
        message = AppMessage(
            message_id=record.message_id, payload=payload, hops_left=self._ttl
        )
        self._send_along_links(origin_id, message)
        return record

    def _on_deliver(self, node_id: int, payload: Any) -> None:
        if not isinstance(payload, AppMessage):
            return
        round_index = self._ttl - payload.hops_left + 1
        if not self._mark_delivery(
            payload.message_id, node_id, round_index=round_index
        ):
            return  # duplicate: suppressed
        if payload.hops_left <= 1:
            return
        forwarded = AppMessage(
            message_id=payload.message_id,
            payload=payload.payload,
            hops_left=payload.hops_left - 1,
        )
        self._send_along_links(node_id, forwarded)
