"""Epidemic (push-gossip) dissemination over the overlay.

Instead of flooding every link, each infected node pushes the message
to ``fanout`` overlay links chosen uniformly at random.  Two classic
variants are provided:

* **infect-forever** — every duplicate receipt triggers another round
  of pushes up to the hop limit; robust but chattier.
* **infect-and-die** — a node pushes only on first receipt; the cheap
  variant whose coverage depends on the overlay looking like a random
  graph (Erdős–Rényi-style gossip needs fanout ≈ ln N for full
  coverage, which the experiments demonstrate).

Fanout sampling comes in two flavours.  ``sampling="stream"`` (the
default) draws each activation's channel subset from the shared
dissemination RNG stream, exactly as previous releases did.
``sampling="counter"`` instead draws one 63-bit key per broadcast and
derives every activation's subset statelessly from
(key, round, node, channel index) — order-independent sampling that
:class:`~repro.dissemination.batch.BatchBroadcastEngine` reproduces
byte-identically over whole frontiers at once.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core import Overlay
from ..errors import DisseminationError
from ..rng import random_bits
from .base import AppMessage, BroadcastRecord, Disseminator

__all__ = ["EpidemicBroadcast"]


class EpidemicBroadcast(Disseminator):
    """Random-fanout push gossip.

    Parameters
    ----------
    overlay:
        The substrate.
    fanout:
        Links pushed to per activation.
    ttl:
        Maximum hops from the origin.
    infect_forever:
        When True, duplicates re-trigger pushes (bounded by ``ttl``);
        when False (default), only the first receipt pushes.
    sampling:
        ``"stream"`` (default) draws subsets from the dissemination RNG
        stream per activation; ``"counter"`` draws one key per
        broadcast and samples statelessly per activation (the mode the
        batch engine mirrors exactly).
    """

    def __init__(
        self,
        overlay: Overlay,
        fanout: int = 4,
        ttl: int = 12,
        infect_forever: bool = False,
        sampling: str = "stream",
    ) -> None:
        super().__init__(overlay)
        if fanout < 1:
            raise DisseminationError("fanout must be at least 1")
        if ttl < 1:
            raise DisseminationError("ttl must be at least 1")
        if sampling not in ("stream", "counter"):
            raise DisseminationError(
                f"sampling must be 'stream' or 'counter', got {sampling!r}"
            )
        self._fanout = fanout
        self._ttl = ttl
        self._infect_forever = infect_forever
        self._sampling = sampling
        self._broadcast_keys: Dict[int, int] = {}

    @property
    def fanout(self) -> int:
        """Pushes per activation."""
        return self._fanout

    @property
    def sampling(self) -> str:
        """The fanout-sampling mode (``"stream"`` or ``"counter"``)."""
        return self._sampling

    def broadcast_key(self, message_id: int) -> int:
        """The counter-sampling key of one broadcast (counter mode only)."""
        try:
            return self._broadcast_keys[message_id]
        except KeyError:
            raise DisseminationError(
                f"no broadcast key for message id {message_id}"
            ) from None

    def broadcast(self, origin_id: int, payload: Any) -> BroadcastRecord:
        """Start an epidemic from ``origin_id`` (must be online)."""
        origin = self.overlay.nodes[origin_id]
        if not origin.online:
            raise DisseminationError(f"origin node {origin_id} is offline")
        record = self._new_record(origin_id)
        if self._sampling == "counter":
            # The broadcast's single stream draw; everything downstream
            # is derived from this key statelessly.
            self._broadcast_keys[record.message_id] = random_bits(self._rng, 63)
        message = AppMessage(
            message_id=record.message_id, payload=payload, hops_left=self._ttl
        )
        self._push(origin_id, message)
        return record

    def _push(self, node_id: int, message: AppMessage) -> None:
        """Forward one activation with the configured sampling mode."""
        if self._sampling == "counter":
            key = self._broadcast_keys.get(message.message_id)
        else:
            key = None
        self._send_along_links(
            node_id,
            message,
            fanout=self._fanout,
            selection_key=key,
            round_index=self._ttl - message.hops_left,
        )

    def _on_deliver(self, node_id: int, payload: Any) -> None:
        if not isinstance(payload, AppMessage):
            return
        round_index = self._ttl - payload.hops_left + 1
        first_receipt = self._mark_delivery(
            payload.message_id, node_id, round_index=round_index
        )
        if not first_receipt and not self._infect_forever:
            return
        if payload.hops_left <= 1:
            return
        forwarded = AppMessage(
            message_id=payload.message_id,
            payload=payload.payload,
            hops_left=payload.hops_left - 1,
        )
        self._push(node_id, forwarded)
