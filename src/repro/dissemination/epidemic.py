"""Epidemic (push-gossip) dissemination over the overlay.

Instead of flooding every link, each infected node pushes the message
to ``fanout`` overlay links chosen uniformly at random.  Two classic
variants are provided:

* **infect-forever** — every duplicate receipt triggers another round
  of pushes up to the hop limit; robust but chattier.
* **infect-and-die** — a node pushes only on first receipt; the cheap
  variant whose coverage depends on the overlay looking like a random
  graph (Erdős–Rényi-style gossip needs fanout ≈ ln N for full
  coverage, which the experiments demonstrate).
"""

from __future__ import annotations

from typing import Any

from ..core import Overlay
from ..errors import DisseminationError
from .base import AppMessage, BroadcastRecord, Disseminator

__all__ = ["EpidemicBroadcast"]


class EpidemicBroadcast(Disseminator):
    """Random-fanout push gossip.

    Parameters
    ----------
    overlay:
        The substrate.
    fanout:
        Links pushed to per activation.
    ttl:
        Maximum hops from the origin.
    infect_forever:
        When True, duplicates re-trigger pushes (bounded by ``ttl``);
        when False (default), only the first receipt pushes.
    """

    def __init__(
        self,
        overlay: Overlay,
        fanout: int = 4,
        ttl: int = 12,
        infect_forever: bool = False,
    ) -> None:
        super().__init__(overlay)
        if fanout < 1:
            raise DisseminationError("fanout must be at least 1")
        if ttl < 1:
            raise DisseminationError("ttl must be at least 1")
        self._fanout = fanout
        self._ttl = ttl
        self._infect_forever = infect_forever

    @property
    def fanout(self) -> int:
        """Pushes per activation."""
        return self._fanout

    def broadcast(self, origin_id: int, payload: Any) -> BroadcastRecord:
        """Start an epidemic from ``origin_id`` (must be online)."""
        origin = self.overlay.nodes[origin_id]
        if not origin.online:
            raise DisseminationError(f"origin node {origin_id} is offline")
        record = self._new_record(origin_id)
        message = AppMessage(
            message_id=record.message_id, payload=payload, hops_left=self._ttl
        )
        self._send_along_links(origin_id, message, fanout=self._fanout)
        return record

    def _on_deliver(self, node_id: int, payload: Any) -> None:
        if not isinstance(payload, AppMessage):
            return
        first_receipt = self._mark_delivery(payload.message_id, node_id)
        if not first_receipt and not self._infect_forever:
            return
        if payload.hops_left <= 1:
            return
        forwarded = AppMessage(
            message_id=payload.message_id,
            payload=payload.payload,
            hops_left=payload.hops_left - 1,
        )
        self._send_along_links(node_id, forwarded, fanout=self._fanout)
