"""Application-layer data dissemination over the maintained overlay:
controlled flooding and epidemic push gossip, with coverage/latency
reporting.  These are the workloads the paper's introduction motivates
(micro-news, mailing lists, group chat for privacy-sensitive groups).
"""

from .antientropy import AntiEntropyBroadcast, DigestMessage, PushMessage
from .base import (
    AppMessage,
    BroadcastRecord,
    Disseminator,
    build_channel_lists,
    channel_keys,
)
from .batch import (
    BatchBroadcastEngine,
    BroadcastLedger,
    ChannelSnapshot,
    LedgerRecordView,
)
from .coverage import CoverageReport, coverage_report
from .epidemic import EpidemicBroadcast
from .flooding import FloodBroadcast

__all__ = [
    "AppMessage",
    "BroadcastRecord",
    "Disseminator",
    "FloodBroadcast",
    "EpidemicBroadcast",
    "AntiEntropyBroadcast",
    "DigestMessage",
    "PushMessage",
    "CoverageReport",
    "coverage_report",
    "build_channel_lists",
    "channel_keys",
    "ChannelSnapshot",
    "BroadcastLedger",
    "LedgerRecordView",
    "BatchBroadcastEngine",
]
