"""Common machinery for data-dissemination protocols.

The paper positions the overlay as a substrate for "reliable and
privacy-preserving message broadcast by using controlled flooding,
epidemic dissemination, or an additional routing layer".  This package
implements the first two on top of a running
:class:`~repro.core.Overlay`.

A dissemination protocol installs itself as the ``app_handler`` of
every overlay node; application messages ride the same
privacy-preserving links as the maintenance gossip (trusted links via
the anonymity service, pseudonym links via the pseudonym service), so
broadcasting discloses nothing the overlay itself does not.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, Optional

from ..core import Overlay
from ..errors import DisseminationError

__all__ = ["AppMessage", "BroadcastRecord", "Disseminator"]


@dataclasses.dataclass(frozen=True)
class AppMessage:
    """An application-layer broadcast message.

    ``hops_left`` implements controlled flooding's TTL; ``message_id``
    provides duplicate suppression.  The payload is opaque to the
    overlay (and assumed end-to-end encrypted in a deployment).
    """

    message_id: int
    payload: Any
    hops_left: int


class BroadcastRecord:
    """Delivery bookkeeping for one broadcast."""

    def __init__(self, message_id: int, origin: int, started_at: float) -> None:
        self.message_id = message_id
        self.origin = origin
        self.started_at = started_at
        self.delivery_times: Dict[int, float] = {origin: started_at}
        self.forwards = 0

    def deliveries(self) -> int:
        """Number of distinct nodes that received the message."""
        return len(self.delivery_times)

    def latency_of(self, node_id: int) -> Optional[float]:
        """Delivery latency for one node (None if never delivered)."""
        delivered = self.delivery_times.get(node_id)
        if delivered is None:
            return None
        return delivered - self.started_at

    def max_latency(self) -> float:
        """Worst delivery latency across reached nodes."""
        if not self.delivery_times:
            return 0.0
        return max(self.delivery_times.values()) - self.started_at


class Disseminator:
    """Base class: handler installation, dedup, and send primitives."""

    def __init__(self, overlay: Overlay) -> None:
        self._overlay = overlay
        self._records: Dict[int, BroadcastRecord] = {}
        self._message_ids = itertools.count(1)
        self._installed = False
        self._rng = overlay.substream("dissemination")
        self._adjacency: Optional[Dict[int, list]] = None

    @property
    def overlay(self) -> Overlay:
        """The substrate this protocol runs on."""
        return self._overlay

    def install(self) -> None:
        """Attach this protocol to every overlay node."""
        if self._installed:
            raise DisseminationError("disseminator already installed")
        self._installed = True
        for node in self._overlay.nodes:
            node.app_handler = self._on_deliver

    def record(self, message_id: int) -> BroadcastRecord:
        """Bookkeeping for a broadcast started by this disseminator."""
        try:
            return self._records[message_id]
        except KeyError:
            raise DisseminationError(f"unknown message id {message_id}") from None

    def _new_record(self, origin: int) -> BroadcastRecord:
        message_id = next(self._message_ids)
        record = BroadcastRecord(message_id, origin, self._overlay.sim.now)
        self._records[message_id] = record
        # Refresh the channel map so the broadcast sees current links.
        self._adjacency = self._build_adjacency()
        return record

    def _mark_delivery(self, message_id: int, node_id: int) -> bool:
        """Record a first delivery; returns False for duplicates."""
        record = self._records.get(message_id)
        if record is None:
            return False
        if node_id in record.delivery_times:
            return False
        record.delivery_times[node_id] = self._overlay.sim.now
        return True

    def _build_adjacency(self) -> Dict[int, list]:
        """Per-node bidirectional channel lists at the current instant.

        Overlay links are bidirectional channels, so each unexpired
        pseudonym link contributes a send option at *both* ends: the
        establishing end sends to the pseudonym's endpoint, the owning
        end pushes down the same channel (``send_reverse``).  Trusted
        links appear at both ends anyway (the trust graph is
        undirected).  Rebuilt at each broadcast start; a broadcast
        completes within ~1 shuffling period, so staleness is
        negligible.
        """
        now = self._overlay.sim.now
        adjacency: Dict[int, list] = {
            node.node_id: [] for node in self._overlay.nodes
        }
        for node in self._overlay.nodes:
            for neighbor in node.links.trusted:
                adjacency[node.node_id].append(("trusted", neighbor))
            for pseudonym in node.links.pseudonym_links():
                if pseudonym.is_expired(now):
                    continue
                owner = self._overlay.owner_of_value(pseudonym.value)
                if owner is None or owner == node.node_id:
                    continue
                adjacency[node.node_id].append(("out", pseudonym.address))
                adjacency[owner].append(("reverse", node.node_id))
        return adjacency

    def _send_along_links(
        self, node_id: int, message: AppMessage, fanout: Optional[int] = None
    ) -> int:
        """Forward ``message`` over a node's bidirectional channels.

        Sends to all channels, or to a uniform random subset of
        ``fanout`` channels.  Returns the number of messages sent.
        """
        if self._adjacency is None:
            self._adjacency = self._build_adjacency()
        channels = self._adjacency.get(node_id, [])
        if fanout is not None and fanout < len(channels):
            indices = self._rng.choice(len(channels), size=fanout, replace=False)
            channels = [channels[int(index)] for index in indices]
        layer = self._overlay.link_layer
        sent = 0
        for kind, target in channels:
            if kind == "trusted":
                layer.send_to_node(node_id, target, message)
            elif kind == "out":
                layer.send_to_endpoint(node_id, target, message)
            else:  # reverse: push down an established incoming channel
                layer.send_reverse(node_id, target, message)
            sent += 1
        record = self._records.get(message.message_id)
        if record is not None:
            record.forwards += sent
        return sent

    def _on_deliver(self, node_id: int, payload: Any) -> None:
        raise NotImplementedError("subclasses implement delivery handling")
