"""Common machinery for data-dissemination protocols.

The paper positions the overlay as a substrate for "reliable and
privacy-preserving message broadcast by using controlled flooding,
epidemic dissemination, or an additional routing layer".  This package
implements the first two on top of a running
:class:`~repro.core.Overlay`.

A dissemination protocol installs itself as the ``app_handler`` of
every overlay node; application messages ride the same
privacy-preserving links as the maintenance gossip (trusted links via
the anonymity service, pseudonym links via the pseudonym service), so
broadcasting discloses nothing the overlay itself does not.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core import Overlay
from ..errors import DisseminationError

__all__ = [
    "AppMessage",
    "BroadcastRecord",
    "Disseminator",
    "build_channel_lists",
    "channel_keys",
]


# splitmix64 finalizer: the stateless mixer behind counter-keyed fanout
# sampling.  Both the object plane (one activation at a time) and the
# batch plane (whole frontiers at once) derive per-channel selection
# keys from it, which is what makes vectorized sampling byte-identical
# to sequential sampling: the keys depend only on
# (broadcast key, round, node, channel index), never on visit order.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_ROUND_SALT = np.uint64(0xD6E8FEB86659FD93)
_CHANNEL_SALT = np.uint64(0xA24BAED4963EE407)


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over uint64 scalars or arrays."""
    with np.errstate(over="ignore"):
        z = x + _GOLDEN
        z = (z ^ (z >> np.uint64(30))) * _MIX_1
        z = (z ^ (z >> np.uint64(27))) * _MIX_2
        return z ^ (z >> np.uint64(31))


def channel_key_base(broadcast_key, round_index, node_id):
    """Selection seed for one (broadcast, round, node) activation.

    Array-capable: pass equal-length uint64-coercible arrays to derive
    a whole frontier's seeds at once.
    """
    key = np.asarray(broadcast_key, dtype=np.uint64)
    rnd = np.asarray(round_index, dtype=np.uint64)
    node = np.asarray(node_id, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return _mix64(_mix64(key ^ (rnd * _ROUND_SALT)) ^ _mix64(node))


def channel_keys(broadcast_key, round_index, node_id, count: int) -> np.ndarray:
    """Per-channel sampling keys for one activation.

    An activation with ``count`` channels selects the ``fanout``
    channels with the smallest keys (ties broken by channel index).
    """
    base = channel_key_base(broadcast_key, round_index, node_id)
    idx = np.arange(1, count + 1, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return _mix64(base ^ (idx * _CHANNEL_SALT))


@dataclasses.dataclass(frozen=True)
class AppMessage:
    """An application-layer broadcast message.

    ``hops_left`` implements controlled flooding's TTL; ``message_id``
    provides duplicate suppression.  The payload is opaque to the
    overlay (and assumed end-to-end encrypted in a deployment).
    """

    message_id: int
    payload: Any
    hops_left: int


class BroadcastRecord:
    """Delivery bookkeeping for one broadcast."""

    def __init__(self, message_id: int, origin: int, started_at: float) -> None:
        self.message_id = message_id
        self.origin = origin
        self.started_at = started_at
        self.delivery_times: Dict[int, float] = {origin: started_at}
        #: Hop-count round at which each node first received the
        #: message (origin is round 0).  Unlike ``delivery_times`` this
        #: is latency-model independent, so it is directly comparable
        #: across the event-driven and batch planes.
        self.delivery_rounds: Dict[int, int] = {origin: 0}
        self.forwards = 0

    def deliveries(self) -> int:
        """Number of distinct nodes that received the message."""
        return len(self.delivery_times)

    def coverage(self, num_nodes: int) -> float:
        """Fraction of ``num_nodes`` reached (origin included)."""
        if num_nodes <= 0:
            raise DisseminationError("num_nodes must be positive")
        return len(self.delivery_times) / num_nodes

    def latency_of(self, node_id: int) -> Optional[float]:
        """Delivery latency for one node (None if never delivered)."""
        delivered = self.delivery_times.get(node_id)
        if delivered is None:
            return None
        return delivered - self.started_at

    def max_latency(self) -> float:
        """Worst delivery latency across reached nodes."""
        if not self.delivery_times:
            return 0.0
        return max(self.delivery_times.values()) - self.started_at

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile delivery latency over reached nodes.

        Only reached nodes contribute (the origin counts, at latency
        zero); use :meth:`coverage` alongside this — a broadcast that
        reached nobody beyond the origin reports 0.0 here.
        """
        if not 0.0 <= q <= 100.0:
            raise DisseminationError("percentile must be in [0, 100]")
        if not self.delivery_times:
            return 0.0
        latencies = np.array(
            [time - self.started_at for time in self.delivery_times.values()]
        )
        return float(np.percentile(latencies, q))


def build_channel_lists(overlay: Overlay) -> Dict[int, List[Tuple[str, Any, int]]]:
    """Per-node bidirectional channel lists at the current instant.

    Overlay links are bidirectional channels, so each unexpired
    pseudonym link contributes a send option at *both* ends: the
    establishing end sends to the pseudonym's endpoint, the owning end
    pushes down the same channel (``send_reverse``).  Trusted links
    appear at both ends anyway (the trust graph is undirected).

    Each entry is ``(kind, target, destination)`` where ``target`` is
    what the link layer needs (a node id, a pseudonym address, or a
    holder id for reverse sends) and ``destination`` is the node id the
    message lands on — the resolved form the batch plane's channel
    snapshot is built from.
    """
    now = overlay.sim.now
    adjacency: Dict[int, List[Tuple[str, Any, int]]] = {
        node.node_id: [] for node in overlay.nodes
    }
    for node in overlay.nodes:
        for neighbor in node.links.trusted:
            adjacency[node.node_id].append(("trusted", neighbor, neighbor))
        for pseudonym in node.links.pseudonym_links():
            if pseudonym.is_expired(now):
                continue
            owner = overlay.owner_of_value(pseudonym.value)
            if owner is None or owner == node.node_id:
                continue
            adjacency[node.node_id].append(("out", pseudonym.address, owner))
            adjacency[owner].append(("reverse", node.node_id, node.node_id))
    return adjacency


class Disseminator:
    """Base class: handler installation, dedup, and send primitives."""

    def __init__(self, overlay: Overlay) -> None:
        self._overlay = overlay
        self._records: Dict[int, BroadcastRecord] = {}
        self._message_ids = itertools.count(1)
        self._installed = False
        self._rng = overlay.substream("dissemination")
        self._adjacency: Optional[Dict[int, list]] = None
        self._adjacency_epoch: Optional[Tuple[float, int, int]] = None

    @property
    def overlay(self) -> Overlay:
        """The substrate this protocol runs on."""
        return self._overlay

    def install(self) -> None:
        """Attach this protocol to every overlay node."""
        if self._installed:
            raise DisseminationError("disseminator already installed")
        self._installed = True
        for node in self._overlay.nodes:
            node.app_handler = self._on_deliver

    def record(self, message_id: int) -> BroadcastRecord:
        """Bookkeeping for a broadcast started by this disseminator."""
        try:
            return self._records[message_id]
        except KeyError:
            raise DisseminationError(f"unknown message id {message_id}") from None

    def _new_record(self, origin: int) -> BroadcastRecord:
        message_id = next(self._message_ids)
        record = BroadcastRecord(message_id, origin, self._overlay.sim.now)
        self._records[message_id] = record
        # Refresh the channel map so the broadcast sees current links
        # (a no-op when nothing changed since the last broadcast).
        self._refresh_adjacency()
        return record

    def _mark_delivery(
        self, message_id: int, node_id: int, round_index: Optional[int] = None
    ) -> bool:
        """Record a first delivery; returns False for duplicates."""
        record = self._records.get(message_id)
        if record is None:
            return False
        if node_id in record.delivery_times:
            return False
        record.delivery_times[node_id] = self._overlay.sim.now
        if round_index is not None:
            record.delivery_rounds[node_id] = round_index
        return True

    def _channel_epoch(self) -> Tuple[float, int, int]:
        """Cache key for the channel map.

        Pseudonym channels expire by sim time and every link mutation
        bumps a monotone per-node version counter, so
        ``(now, node count, summed versions)`` changes whenever the
        channel map could.  (Pseudonym ownership is registered at mint
        time, before a link can circulate, so the owner registry never
        invalidates an adjacency on its own.)
        """
        versions = 0
        for node in self._overlay.nodes:
            links = node.links
            versions += links.version + links.trusted_version
        return (self._overlay.sim.now, len(self._overlay.nodes), versions)

    def _refresh_adjacency(self) -> Dict[int, list]:
        """Return the channel map, rebuilding only when stale.

        The O(N+E) rebuild used to run on every ``broadcast()``; the
        epoch check reduces multi-broadcast runs over a quiescent
        overlay to one O(N) counter scan per broadcast.
        """
        epoch = self._channel_epoch()
        if self._adjacency is None or epoch != self._adjacency_epoch:
            self._adjacency = build_channel_lists(self._overlay)
            self._adjacency_epoch = epoch
        return self._adjacency

    def _build_adjacency(self) -> Dict[int, list]:
        """Channel lists at the current instant (uncached build)."""
        return build_channel_lists(self._overlay)

    def _send_along_links(
        self,
        node_id: int,
        message: AppMessage,
        fanout: Optional[int] = None,
        selection_key: Optional[int] = None,
        round_index: int = 0,
    ) -> int:
        """Forward ``message`` over a node's bidirectional channels.

        Sends to all channels, or to a subset of ``fanout`` channels —
        chosen by the shared RNG stream, or, when ``selection_key`` is
        given, by stateless counter-keyed sampling (the smallest
        ``fanout`` of the :func:`channel_keys` for this activation),
        which the batch engine reproduces exactly.  Returns the number
        of messages sent.
        """
        if self._adjacency is None:
            self._refresh_adjacency()
        channels = self._adjacency.get(node_id, [])
        if fanout is not None and fanout < len(channels):
            if selection_key is not None:
                keys = channel_keys(
                    selection_key, round_index, node_id, len(channels)
                )
                order = np.argsort(keys, kind="stable")
                channels = [channels[int(index)] for index in order[:fanout]]
            else:
                indices = self._rng.choice(
                    len(channels), size=fanout, replace=False
                )
                channels = [channels[int(index)] for index in indices]
        layer = self._overlay.link_layer
        sent = 0
        for kind, target, _destination in channels:
            if kind == "trusted":
                layer.send_to_node(node_id, target, message)
            elif kind == "out":
                layer.send_to_endpoint(node_id, target, message)
            else:  # reverse: push down an established incoming channel
                layer.send_reverse(node_id, target, message)
            sent += 1
        record = self._records.get(message.message_id)
        if record is not None:
            record.forwards += sent
        return sent

    def _on_deliver(self, node_id: int, payload: Any) -> None:
        raise NotImplementedError("subclasses implement delivery handling")
