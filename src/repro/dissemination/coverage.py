"""Coverage and latency analysis for broadcasts."""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..errors import DisseminationError
from .base import BroadcastRecord

__all__ = ["CoverageReport", "coverage_report"]


@dataclasses.dataclass(frozen=True)
class CoverageReport:
    """Outcome of one broadcast against a target population.

    ``coverage`` is the fraction of the target population reached;
    latencies are in shuffling periods, measured from broadcast start.
    """

    message_id: int
    target_population: int
    reached: int
    coverage: float
    mean_latency: float
    p95_latency: float
    max_latency: float
    forwards: int

    def __str__(self) -> str:
        return (
            f"broadcast {self.message_id}: reached {self.reached}/"
            f"{self.target_population} ({self.coverage:.1%}), "
            f"mean latency {self.mean_latency:.2f} sp, "
            f"p95 {self.p95_latency:.2f} sp, forwards {self.forwards}"
        )


def coverage_report(
    record: BroadcastRecord, target_nodes: Sequence[int]
) -> CoverageReport:
    """Summarize a broadcast against a target node set.

    ``target_nodes`` is typically the set of nodes online at broadcast
    time — the population the paper's dissemination scenarios care
    about reaching.
    """
    targets = set(target_nodes)
    if not targets:
        raise DisseminationError("target population is empty")
    latencies: List[float] = []
    reached = 0
    for node_id in targets:
        latency = record.latency_of(node_id)
        if latency is not None:
            reached += 1
            latencies.append(latency)
    if latencies:
        array = np.array(latencies)
        mean_latency = float(array.mean())
        p95_latency = float(np.percentile(array, 95))
        max_latency = float(array.max())
    else:
        mean_latency = p95_latency = max_latency = 0.0
    return CoverageReport(
        message_id=record.message_id,
        target_population=len(targets),
        reached=reached,
        coverage=reached / len(targets),
        mean_latency=mean_latency,
        p95_latency=p95_latency,
        max_latency=max_latency,
        forwards=record.forwards,
    )
