"""Anti-entropy (digest-exchange) dissemination.

Flooding and push gossip reach the nodes online *during* the broadcast;
nodes that were offline miss it.  Anti-entropy closes the gap and makes
broadcast reliable in the paper's sense ("reliable and
privacy-preserving message broadcast"): every node periodically sends a
digest of the message ids it holds to one random overlay channel, and
the peer pushes back whatever the digester is missing.  A node
rejoining after a long stint synchronizes on its first exchanges.

The digest exchange rides the same privacy-preserving channels as the
maintenance gossip, with the same reply-channel discipline: over a
trusted link the reply goes to the friend's id, over a pseudonym link
to the digester's own pseudonym endpoint.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, Optional, Tuple

from ..core import Overlay
from ..errors import DisseminationError
from ..privlink import Address
from ..sim import PeriodicProcess
from .base import BroadcastRecord, Disseminator

__all__ = ["DigestMessage", "PushMessage", "AntiEntropyBroadcast"]


@dataclasses.dataclass(frozen=True)
class DigestMessage:
    """The ids a node holds, plus a reply channel."""

    known_ids: FrozenSet[int]
    reply_node: Optional[int] = None
    reply_address: Optional[Address] = None

    def __post_init__(self) -> None:
        if (self.reply_node is None) == (self.reply_address is None):
            raise DisseminationError(
                "DigestMessage needs exactly one reply channel"
            )


@dataclasses.dataclass(frozen=True)
class PushMessage:
    """Messages the digester was missing: id -> payload."""

    items: Tuple[Tuple[int, Any], ...]


class AntiEntropyBroadcast(Disseminator):
    """Eventually-consistent broadcast via periodic digest exchange.

    Parameters
    ----------
    overlay:
        The substrate.
    period:
        Digest interval per node, in shuffling periods.
    max_push:
        Cap on items pushed per exchange (bounds message size, like the
        shuffle's ℓ).
    """

    def __init__(
        self, overlay: Overlay, period: float = 1.0, max_push: int = 32
    ) -> None:
        super().__init__(overlay)
        if period <= 0:
            raise DisseminationError("period must be positive")
        if max_push < 1:
            raise DisseminationError("max_push must be at least 1")
        self._period = period
        self._max_push = max_push
        self._stores: Dict[int, Dict[int, Any]] = {
            node.node_id: {} for node in overlay.nodes
        }
        self._process = PeriodicProcess(
            overlay.sim,
            period=period,
            callback=self._tick,
            rng=overlay.substream("anti-entropy"),
            jitter=0.1,
        )
        self.digests_sent = 0
        self.pushes_sent = 0

    def install(self) -> None:
        """Attach handlers and start the digest timer."""
        super().install()
        self._process.start()

    def store_of(self, node_id: int) -> Dict[int, Any]:
        """A copy of one node's message store."""
        return dict(self._stores.setdefault(node_id, {}))

    def broadcast(self, origin_id: int, payload: Any) -> BroadcastRecord:
        """Introduce a new message at ``origin_id`` (must be online)."""
        origin = self._overlay.nodes[origin_id]
        if not origin.online:
            raise DisseminationError(f"origin node {origin_id} is offline")
        record = self._new_record(origin_id)
        self._stores.setdefault(origin_id, {})[record.message_id] = payload
        return record

    # ------------------------------------------------------------------
    # digest rounds
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        """One global round: every online node digests with one channel."""
        layer = self._overlay.link_layer
        for node in self._overlay.nodes:
            if not node.online or node.own is None:
                continue
            store = self._stores.setdefault(node.node_id, {})
            target = node.links.pick_random_target(
                self._rng
            )
            if target is None:
                continue
            digest_ids = frozenset(store)
            if target.is_trusted:
                digest = DigestMessage(
                    known_ids=digest_ids, reply_node=node.node_id
                )
                layer.send_to_node(node.node_id, target.node_id, digest)
            else:
                now = self._overlay.sim.now
                if target.pseudonym.is_expired(now):
                    continue
                digest = DigestMessage(
                    known_ids=digest_ids, reply_address=node.own.address
                )
                layer.send_to_endpoint(
                    node.node_id, target.pseudonym.address, digest
                )
            self.digests_sent += 1

    def _on_deliver(self, node_id: int, payload: Any) -> None:
        if isinstance(payload, DigestMessage):
            self._handle_digest(node_id, payload)
        elif isinstance(payload, PushMessage):
            self._handle_push(node_id, payload)

    def _handle_digest(self, node_id: int, digest: DigestMessage) -> None:
        store = self._stores.setdefault(node_id, {})
        missing = [
            (message_id, payload)
            for message_id, payload in store.items()
            if message_id not in digest.known_ids
        ]
        if not missing:
            return
        push = PushMessage(items=tuple(missing[: self._max_push]))
        layer = self._overlay.link_layer
        if digest.reply_node is not None:
            layer.send_to_node(node_id, digest.reply_node, push)
        else:
            layer.send_to_endpoint(node_id, digest.reply_address, push)
        self.pushes_sent += 1

    def _handle_push(self, node_id: int, push: PushMessage) -> None:
        store = self._stores.setdefault(node_id, {})
        for message_id, payload in push.items:
            if message_id in store:
                continue
            store[message_id] = payload
            self._mark_delivery(message_id, node_id)
