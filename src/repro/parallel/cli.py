"""``repro sweep`` — run a parameter sweep from the command line.

Usage::

    repro sweep --scale smoke --seed 3 --axis availability=0.3,0.6 \
        --workers 2 --store /tmp/sweep-results
    repro sweep ... --resume --expect-no-compute   # verify completion

Each ``--axis name=v1,v2,...`` adds one grid dimension over a
:class:`~repro.config.SystemConfig` field; the sweep runs the standard
overlay point experiment (:class:`OverlayPointExperiment`) over the
cartesian product, shards points across ``--workers`` processes, and
memoizes every point in ``--store`` with an append-only run ledger, so
re-running with ``--resume`` computes only the missing points.

With ``--shards N`` each point instead runs the round-based batch
engine over an N-shard grid (:class:`~repro.parallel.shard.ShardedOverlay`
with ``--workers`` shard workers); points run serially in that mode,
since daemonic sweep workers cannot fork shard workers.
"""

from __future__ import annotations

import argparse
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError, ParallelError
from ..shutdown import EXIT_INTERRUPTED, graceful_shutdown
from .experiments import BatchPointExperiment, OverlayPointExperiment
from .sweep import run_parallel_sweep

__all__ = ["main", "parse_axis"]


def parse_axis(text: str) -> Tuple[str, List[Any]]:
    """Parse ``name=v1,v2,...`` into an axis; values become int/float
    when they look numeric, strings otherwise."""
    name, sep, rest = text.partition("=")
    name = name.strip()
    if not sep or not name or not rest.strip():
        raise argparse.ArgumentTypeError(
            f"expected name=v1,v2,... got {text!r}"
        )
    values: List[Any] = []
    for raw in rest.split(","):
        raw = raw.strip()
        if not raw:
            continue
        value: Any
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        values.append(value)
    if not values:
        raise argparse.ArgumentTypeError(f"axis {name!r} has no values")
    return name, values


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a (optionally multiprocess) parameter sweep of "
        "the overlay experiment with a resumable on-disk run ledger.",
    )
    parser.add_argument(
        "--scale",
        choices=("paper", "quick", "smoke"),
        default="quick",
        help="experiment scale (default: quick)",
    )
    parser.add_argument("--seed", type=int, default=1, help="root random seed")
    parser.add_argument(
        "--axis",
        dest="axes",
        type=parse_axis,
        action="append",
        required=True,
        metavar="NAME=V1,V2,...",
        help="one grid dimension over a SystemConfig field (repeatable)",
    )
    parser.add_argument(
        "--f", type=float, default=0.5, help="trust-graph sampling parameter"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker process count"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run each point on the round-based batch engine over an "
        "N-shard grid (ShardedOverlay) instead of the event-driven "
        "overlay; points then run serially — daemonic sweep workers "
        "cannot fork shard workers — and --workers becomes the shard "
        "worker count per point",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=20,
        help="shuffle rounds per point with --shards (default: 20)",
    )
    parser.add_argument(
        "--store",
        default="sweep-results",
        help="result-store directory (holds point results and the ledger)",
    )
    parser.add_argument(
        "--prefix", default="sweep", help="store namespace for this sweep"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue a previous run: recompute only points the ledger "
        "does not record as completed",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds (worker is killed and the "
        "point retried)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="attempts per point before it is recorded as failed",
    )
    parser.add_argument(
        "--expect-no-compute",
        action="store_true",
        help="exit nonzero if any point had to be computed (CI check "
        "that a --resume run was a pure no-op)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro sweep``; returns a process exit code."""
    from ..experiments import (
        ResultStore,
        format_table,
        make_config,
        scale_by_name,
        sweep_table_rows,
    )

    args = _build_parser().parse_args(list(argv) if argv is not None else None)

    axes: Dict[str, List[Any]] = {}
    for name, values in args.axes:
        axes.setdefault(name, []).extend(values)

    scale = scale_by_name(args.scale)
    base_config = make_config(scale, alpha=0.5, f=args.f, seed=args.seed)
    if args.shards is not None:
        if args.shards < 1:
            print("error: --shards must be at least 1")
            return 2
        # The shard engine forks its own workers per point, and daemonic
        # sweep workers cannot fork children — so points run serially
        # and the --workers budget goes to the shard engine instead.
        experiment = BatchPointExperiment(
            rounds=max(1, args.rounds),
            num_shards=args.shards,
            shard_workers=max(1, args.workers),
        )
        sweep_workers = 1
    else:
        experiment = OverlayPointExperiment(scale_name=scale.name, f=args.f)
        sweep_workers = args.workers
    store = ResultStore(args.store)

    try:
        with graceful_shutdown():
            run = run_parallel_sweep(
                base_config,
                axes,
                experiment,
                workers=sweep_workers,
                store=store,
                store_prefix=args.prefix,
                resume=args.resume,
                timeout=args.timeout,
                max_attempts=max(1, args.retries),
                # Wall-clock feeds only operator-facing ledger durations and
                # timeout enforcement, never results.  Passing the clock by
                # reference (not calling it here) keeps the package clean
                # under lint rule DET003 with no suppressions.
                clock=time.perf_counter,
                sleep=time.sleep,
            )
    except KeyboardInterrupt:
        # Every completed point is already on disk (the ledger flushes
        # per append), so the run picks up where it stopped.
        print(
            f"\ninterrupted: completed points are in {args.store}; "
            "rerun with --resume to finish"
        )
        return EXIT_INTERRUPTED
    except (ExperimentError, ParallelError) as exc:
        print(f"error: {exc}")
        return 1

    if run.points:
        headers, rows = sweep_table_rows(run.points)
        print(format_table(headers, rows, title=f"sweep ({scale.name} scale)"))
    print(
        f"points: {len(run.records)} total, {run.computed} computed, "
        f"{run.reused} reused; ledger: {run.ledger_path}"
    )
    if run.failures:
        print(run.failure_report())
        return 1
    if args.expect_no_compute and run.computed > 0:
        print(
            f"error: expected a no-op resume but {run.computed} point(s) "
            "were computed"
        )
        return 1
    return 0
