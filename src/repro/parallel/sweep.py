"""Parallel grid sweeps, byte-identical to serial ones.

:func:`parallel_grid_sweep` is the drop-in parallel twin of
:func:`repro.experiments.sweeps.grid_sweep`: same grid construction,
same store keys and metadata, same returned ``List[SweepPoint]`` in
grid order — pinned by an equivalence test.  Under the hood it builds
one :class:`~repro.parallel.tasks.TaskSpec` per grid point, shards them
across the fault-tolerant worker pool, records every task's fate in a
:class:`~repro.parallel.ledger.RunLedger` next to the result store, and
re-orders outcomes by grid position before aggregation.

:func:`run_parallel_sweep` is the richer entry point the CLI uses: it
returns the full :class:`ParallelSweepRun` — completed points *and*
structured failures, computed/reused counts, and the ledger path —
instead of raising on the first failed point.
"""

from __future__ import annotations

import dataclasses
import itertools
import pathlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..config import SystemConfig
from ..errors import ParallelError
from ..experiments.store import ResultStore
from ..experiments.sweeps import SweepPoint, point_store_key, validate_axes
from .engine import PoolOptions, run_tasks
from .ledger import RunLedger, run_fingerprint
from .tasks import (
    STATUS_REUSED,
    Clock,
    TaskRecord,
    TaskSpec,
    derive_task_seed,
    outcome_digest,
)

__all__ = ["ParallelSweepRun", "run_parallel_sweep", "parallel_grid_sweep"]

#: Ledger file name template under the result-store root.
_LEDGER_TEMPLATE = "{prefix}.ledger.jsonl"


@dataclasses.dataclass
class ParallelSweepRun:
    """Everything one sweep run produced."""

    #: Completed points in grid order (failed points are absent).
    points: List[SweepPoint]
    #: One record per grid point, in grid order, including failures.
    records: List[TaskRecord]
    #: The subset of ``records`` that ultimately failed.
    failures: List[TaskRecord]
    #: Points computed fresh this run.
    computed: int
    #: Points reused from the store (memoization or ``--resume``).
    reused: int
    ledger_path: Optional[pathlib.Path]

    @property
    def complete(self) -> bool:
        """Whether every grid point has a result."""
        return not self.failures

    def failure_report(self) -> str:
        """Human-readable summary of every failed point."""
        if not self.failures:
            return "all points completed"
        lines = [f"{len(self.failures)} point(s) failed:"]
        for record in self.failures:
            assert record.failure is not None
            lines.append(
                f"  {record.spec.key} (attempts={record.attempts}): "
                f"{record.failure.summary()}"
            )
        return "\n".join(lines)


def _build_specs(
    base_config: SystemConfig,
    axes: Mapping[str, Sequence[Any]],
    store_prefix: str,
) -> List[TaskSpec]:
    """One spec per grid point, in cartesian-product (grid) order."""
    names = list(axes.keys())
    specs: List[TaskSpec] = []
    for index, combo in enumerate(
        itertools.product(*(axes[name] for name in names))
    ):
        overrides = tuple(zip(names, combo))
        key = point_store_key(store_prefix, overrides)
        specs.append(
            TaskSpec(
                index=index,
                key=key,
                payload=base_config.replace(**dict(overrides)),
                seed=derive_task_seed(base_config.seed, key),
            )
        )
    return specs


def _point_metadata(base_config: SystemConfig, overrides) -> Dict[str, Any]:
    """The store metadata ``grid_sweep`` uses for the same point."""
    return {"seed": base_config.seed, "overrides": repr(overrides)}


def run_parallel_sweep(
    base_config: SystemConfig,
    axes: Mapping[str, Sequence[Any]],
    experiment: Callable[[SystemConfig], Any],
    workers: int = 1,
    store: Optional[ResultStore] = None,
    store_prefix: str = "sweep",
    resume: bool = False,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    backoff_base: float = 0.05,
    clock: Optional[Clock] = None,
    sleep: Optional[Callable[[float], None]] = None,
    write_ledger: bool = True,
) -> ParallelSweepRun:
    """Run a grid sweep on a worker pool; return points and records.

    Parameters mirror :func:`~repro.experiments.sweeps.grid_sweep` plus
    the execution policy of :class:`~repro.parallel.engine.PoolOptions`.
    With a ``store``, completed points are persisted under the exact
    keys/metadata ``grid_sweep`` would use (so serial and parallel runs
    share one cache) and a ledger is written beside them.  ``resume``
    requires a store and a compatible ledger; completed points whose
    stored results still match their recorded digests are skipped.

    The experiment must be a pure function of its config; outcomes must
    be picklable (and JSON-serializable when a store is used).
    """
    validate_axes(axes)
    if resume and store is None:
        raise ParallelError("resume requires a result store")
    axes_lists = {name: list(values) for name, values in axes.items()}
    specs = _build_specs(base_config, axes_lists, store_prefix)
    overrides_by_index = {}
    names = list(axes_lists.keys())
    for spec, combo in zip(
        specs, itertools.product(*(axes_lists[name] for name in names))
    ):
        overrides_by_index[spec.index] = tuple(zip(names, combo))

    fingerprint = run_fingerprint(
        store_prefix, base_config.seed, axes_lists, len(specs)
    )
    ledger: Optional[RunLedger] = None
    if store is not None and write_ledger:
        ledger = RunLedger(
            store.root / _LEDGER_TEMPLATE.format(prefix=store_prefix)
        )

    # ------------------------------------------------------------------
    # Phase 1: decide which points need computing.  A point is reusable
    # when the store already holds it under matching metadata (the same
    # rule grid_sweep's memoization applies); on --resume the ledger
    # additionally documents it and pins its digest.
    # ------------------------------------------------------------------
    resumed_entries: Dict[str, Dict[str, Any]] = {}
    if ledger is not None and resume:
        if not ledger.exists():
            raise ParallelError(
                f"--resume requested but no ledger at {ledger.path}"
            )
        if not ledger.matches(fingerprint):
            raise ParallelError(
                f"ledger {ledger.path} records a different sweep (prefix, "
                "seed, axes, or task count changed); rerun without resume"
            )
        resumed_entries = ledger.read().completed()

    reused_records: Dict[int, TaskRecord] = {}
    to_run: List[TaskSpec] = []
    for spec in specs:
        outcome = None
        reusable = False
        if store is not None and store.exists(spec.key):
            metadata = _point_metadata(
                base_config, overrides_by_index[spec.index]
            )
            if store.metadata(spec.key) == metadata:
                outcome = store.load(spec.key)
                digest = outcome_digest(outcome)
                ledger_entry = resumed_entries.get(spec.key)
                if ledger_entry is not None and ledger_entry.get("digest") not in (
                    None,
                    digest,
                ):
                    # Stored result no longer matches what the ledger
                    # recorded — treat as tampered and recompute.
                    outcome = None
                else:
                    reusable = True
        if reusable:
            reused_records[spec.index] = TaskRecord(
                spec=spec,
                status=STATUS_REUSED,
                outcome=outcome,
                attempts=0,
                digest=outcome_digest(outcome),
            )
        else:
            to_run.append(spec)

    # ------------------------------------------------------------------
    # Phase 2: ledger bookkeeping, then fan out the remaining points.
    # ------------------------------------------------------------------
    if ledger is not None:
        if resume:
            ledger.mark_resume()
        else:
            ledger.start(fingerprint)
        for index in sorted(reused_records):
            ledger.append(reused_records[index].to_ledger_entry())

    def on_record(record: TaskRecord) -> None:
        if record.ok and store is not None:
            store.save(
                record.spec.key,
                record.outcome,
                metadata=_point_metadata(
                    base_config, overrides_by_index[record.spec.index]
                ),
            )
        if ledger is not None:
            ledger.append(record.to_ledger_entry())

    computed_records = run_tasks(
        experiment,
        to_run,
        PoolOptions(
            workers=workers,
            timeout=timeout,
            max_attempts=max_attempts,
            backoff_base=backoff_base,
            clock=clock,
            sleep=sleep,
        ),
        on_record=on_record,
    )

    # ------------------------------------------------------------------
    # Phase 3: deterministic aggregation — merge by grid index.
    # ------------------------------------------------------------------
    all_records = dict(reused_records)
    for record in computed_records:
        all_records[record.spec.index] = record
    ordered = [all_records[spec.index] for spec in specs]
    failures = [record for record in ordered if not record.ok]
    points = [
        SweepPoint(
            overrides=overrides_by_index[record.spec.index],
            outcome=record.outcome,
        )
        for record in ordered
        if record.ok
    ]
    return ParallelSweepRun(
        points=points,
        records=ordered,
        failures=failures,
        computed=len(computed_records),
        reused=len(reused_records),
        ledger_path=ledger.path if ledger is not None else None,
    )


def parallel_grid_sweep(
    base_config: SystemConfig,
    axes: Mapping[str, Sequence[Any]],
    experiment: Callable[[SystemConfig], Any],
    workers: int = 1,
    store: Optional[ResultStore] = None,
    store_prefix: str = "sweep",
    resume: bool = False,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    clock: Optional[Clock] = None,
) -> List[SweepPoint]:
    """Drop-in parallel :func:`~repro.experiments.sweeps.grid_sweep`.

    Returns exactly what ``grid_sweep(base_config, axes, experiment,
    store, store_prefix)`` returns — same values, same order — for any
    worker count; raises :class:`ParallelError` with a per-point report
    if any grid point ultimately fails.
    """
    run = run_parallel_sweep(
        base_config,
        axes,
        experiment,
        workers=workers,
        store=store,
        store_prefix=store_prefix,
        resume=resume,
        timeout=timeout,
        max_attempts=max_attempts,
        clock=clock,
    )
    if not run.complete:
        raise ParallelError(run.failure_report())
    return run.points
