"""Task model for the parallel sweep engine.

A sweep's grid points become self-describing :class:`TaskSpec` objects:
a stable grid ``index`` (the aggregation order), a canonical ``key``
naming the point, a picklable ``payload`` the worker hands to the
experiment function, and a ``seed`` derived deterministically from
``(root_seed, key)`` via the :mod:`repro.rng` stream conventions.
Because every task's randomness flows from its own spec — never from
scheduling order, worker identity, or wall-clock time — a parallel run
aggregates to exactly the records a serial run produces.

Failures are data, not exceptions: a task that exhausts its attempts
yields a structured :class:`TaskFailure` inside its :class:`TaskRecord`,
so one bad grid point never tears down a thousand-point run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Callable, Optional

from ..rng import RandomStreams

__all__ = [
    "Clock",
    "TaskSpec",
    "TaskFailure",
    "TaskRecord",
    "derive_task_seed",
    "outcome_digest",
]

#: A monotonic-clock callable (e.g. ``time.perf_counter``).  The engine
#: never reads a host clock itself; callers that want durations and
#: timeout enforcement inject one (the CLI does), keeping this package
#: clean under lint rule DET003.
Clock = Callable[[], float]

#: Statuses a task record can carry.
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_REUSED = "reused"


def derive_task_seed(root_seed: int, key: str) -> int:
    """Derive a task's seed from ``(root_seed, key)``.

    Uses :meth:`repro.rng.RandomStreams.spawn`, so the mapping is a pure
    function of its inputs: the same grid point always gets the same
    seed no matter which worker runs it, when, or after which other
    points.
    """
    return RandomStreams(root_seed).spawn("parallel-task", key).seed


def outcome_digest(outcome: Any) -> str:
    """Stable short digest of a task outcome.

    Canonicalizes through JSON with sorted keys (``repr`` fallback for
    exotic values), so two byte-identical results always digest equal
    and the ledger can audit serial/parallel equivalence.
    """
    text = json.dumps(outcome, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit of work: a single grid point."""

    #: Position in the grid; results are re-ordered by this index before
    #: aggregation, so completion order never leaks into outputs.
    index: int
    #: Canonical name of the point (doubles as the ledger/store key).
    key: str
    #: Picklable argument handed to the experiment function.
    payload: Any
    #: Deterministic per-task seed (see :func:`derive_task_seed`).
    seed: int = 0


@dataclasses.dataclass(frozen=True)
class TaskFailure:
    """Why a task ultimately failed, as structured data.

    ``kind`` is one of ``"exception"`` (the experiment raised),
    ``"timeout"`` (the worker exceeded the per-task timeout and was
    killed), or ``"crash"`` (the worker process died — segfault, OOM
    kill, ``os._exit``).
    """

    kind: str
    message: str
    exception_type: Optional[str] = None
    traceback: Optional[str] = None

    def summary(self) -> str:
        """One-line description for reports and error messages."""
        prefix = self.exception_type or self.kind
        return f"[{self.kind}] {prefix}: {self.message}"


@dataclasses.dataclass(frozen=True)
class TaskRecord:
    """The final fate of one task: outcome or failure, plus bookkeeping."""

    spec: TaskSpec
    status: str  # STATUS_DONE, STATUS_FAILED, or STATUS_REUSED
    outcome: Any = None
    failure: Optional[TaskFailure] = None
    attempts: int = 0
    #: Wall-clock seconds of the successful attempt; ``None`` when no
    #: clock was injected (determinism-first default).
    duration_s: Optional[float] = None
    digest: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the task produced an outcome (fresh or reused)."""
        return self.status in (STATUS_DONE, STATUS_REUSED)

    def to_ledger_entry(self) -> dict:
        """The JSON-serializable ledger line for this record."""
        entry = {
            "kind": "task",
            "index": self.spec.index,
            "key": self.spec.key,
            "task_seed": self.spec.seed,
            "status": self.status,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "digest": self.digest,
        }
        if self.failure is not None:
            entry["failure"] = {
                "kind": self.failure.kind,
                "message": self.failure.message,
                "exception_type": self.failure.exception_type,
                "traceback": self.failure.traceback,
            }
        return entry
