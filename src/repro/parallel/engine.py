"""Fault-tolerant multiprocess task execution.

:func:`run_tasks` shards :class:`~repro.parallel.tasks.TaskSpec`
objects across a pool of forked worker processes and returns one
:class:`~repro.parallel.tasks.TaskRecord` per task, **ordered by grid
index** regardless of completion order.  The pool provides the three
fault-tolerance guarantees the sweep engine is built on:

* **Crash isolation** — a worker that dies (segfault, OOM kill,
  ``os._exit``) fails at most the one task it was running; the parent
  spawns a replacement worker and the run continues.
* **Timeouts** — with an injected clock, a task that exceeds its
  per-task timeout gets its worker killed and the task is retried.
* **Bounded retries** — every failure mode (exception, timeout, crash)
  consumes one attempt; a task that exhausts ``max_attempts`` is
  reported as a structured :class:`TaskFailure`, never an unhandled
  exception in the parent.

Determinism contract: the engine passes each task's payload to a pure
experiment function and re-orders results by index, so worker count and
scheduling interleaving cannot change what a run returns.  The engine
itself reads no clock (rule DET003) — callers inject one when they want
durations or timeout enforcement.

Workers are started with the ``fork`` start method, so experiment
callables may be closures and inherit memoized parent state (e.g. trust
graphs built before the fan-out).  Where ``fork`` is unavailable, tasks
run serially in-process with the same retry/record semantics.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from ..errors import ParallelError
from .tasks import (
    STATUS_DONE,
    STATUS_FAILED,
    Clock,
    TaskFailure,
    TaskRecord,
    TaskSpec,
    outcome_digest,
)

__all__ = ["PoolOptions", "run_tasks", "parallel_map", "fork_available"]

#: Exit signal understood by the worker loop.
_STOP = ("stop",)


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclasses.dataclass(frozen=True)
class PoolOptions:
    """Execution policy for one :func:`run_tasks` call."""

    #: Worker process count; 1 (or no ``fork``) runs tasks in-process.
    workers: int = 1
    #: Per-task wall-clock timeout in seconds; requires ``clock``.
    timeout: Optional[float] = None
    #: Total tries per task across all failure kinds (>= 1).
    max_attempts: int = 3
    #: Base of the exponential retry backoff (seconds).
    backoff_base: float = 0.05
    #: Monotonic clock for durations and timeout enforcement; ``None``
    #: disables both (the deterministic library default).
    clock: Optional[Clock] = None
    #: Sleep used between retries; defaults to ``time.sleep``.
    sleep: Optional[Callable[[float], None]] = None

    def validate(self) -> None:
        """Reject inconsistent policies with a clear error."""
        if self.workers < 1:
            raise ParallelError("workers must be at least 1")
        if self.max_attempts < 1:
            raise ParallelError("max_attempts must be at least 1")
        if self.backoff_base < 0:
            raise ParallelError("backoff_base must be non-negative")
        if self.timeout is not None:
            if self.timeout <= 0:
                raise ParallelError("timeout must be positive")
            if self.clock is None:
                raise ParallelError(
                    "a timeout needs an injected clock (e.g. "
                    "time.perf_counter); pass PoolOptions(clock=...)"
                )


def _describe_exception(exc: BaseException) -> TaskFailure:
    return TaskFailure(
        kind="exception",
        message=str(exc) or type(exc).__name__,
        exception_type=type(exc).__name__,
        traceback=traceback.format_exc(),
    )


def _worker_main(  # lint: fork-entry
    conn, runner: Callable[[Any], Any], clock: Optional[Clock]
) -> None:
    """Worker loop: receive tasks, run them, send results or errors.

    Any exception from ``runner`` is caught and reported as data so the
    worker survives for the next task; interrupts and explicit exits
    still propagate (they mean "stop the process", not "task failed").
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, index, payload = message
        started = clock() if clock is not None else None
        try:
            outcome = runner(payload)
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            duration = clock() - started if started is not None else None
            failure = _describe_exception(exc)
            conn.send(("error", index, failure, duration))
            continue
        duration = clock() - started if started is not None else None
        try:
            conn.send(("ok", index, outcome, duration))
        except (TypeError, ValueError, AttributeError, pickle.PicklingError) as exc:
            conn.send(
                (
                    "error",
                    index,
                    TaskFailure(
                        kind="exception",
                        message=f"task outcome is not picklable: {exc}",
                        exception_type=type(exc).__name__,
                    ),
                    duration,
                )
            )
    conn.close()


class _WorkerHandle:
    """Parent-side view of one worker process.

    Generic over the worker entry point: ``target`` is called as
    ``target(child_conn, *args)`` in the forked child.  The sweep pool
    uses :func:`_worker_main`; the sharded overlay driver
    (:mod:`repro.parallel.shard`) reuses the same handle with its own
    shard-server loop.
    """

    __slots__ = ("conn", "process", "spec", "deadline")

    def __init__(self, ctx, target, args) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=target, args=(child_conn,) + tuple(args), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.spec: Optional[TaskSpec] = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.spec is not None

    def kill(self) -> None:
        """Terminate the worker process unconditionally."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - stuck in kernel
                self.process.kill()
                self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def stop(self) -> None:
        """Ask the worker to exit cleanly, then make sure it did."""
        try:
            self.conn.send(_STOP)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        self.kill()


def _run_serial(
    runner: Callable[[Any], Any],
    specs: Sequence[TaskSpec],
    options: PoolOptions,
    on_record: Optional[Callable[[TaskRecord], None]],
) -> List[TaskRecord]:
    """In-process execution with the same retry/record semantics.

    Used for ``workers=1`` and platforms without ``fork``.  Timeouts
    cannot be enforced without process isolation and are ignored here.
    """
    sleep = options.sleep if options.sleep is not None else time.sleep
    clock = options.clock
    records: List[TaskRecord] = []
    for spec in specs:
        attempts = 0
        record: Optional[TaskRecord] = None
        while record is None:
            attempts += 1
            started = clock() if clock is not None else None
            try:
                outcome = runner(spec.payload)
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if attempts >= options.max_attempts:
                    record = TaskRecord(
                        spec=spec,
                        status=STATUS_FAILED,
                        failure=_describe_exception(exc),
                        attempts=attempts,
                    )
                else:
                    sleep(options.backoff_base * (2 ** (attempts - 1)))
            else:
                duration = clock() - started if started is not None else None
                record = TaskRecord(
                    spec=spec,
                    status=STATUS_DONE,
                    outcome=outcome,
                    attempts=attempts,
                    duration_s=duration,
                    digest=outcome_digest(outcome),
                )
        records.append(record)
        if on_record is not None:
            on_record(record)
    return records


class _PoolRun:
    """State of one parallel :func:`run_tasks` invocation."""

    def __init__(self, ctx, runner, specs, options, on_record) -> None:
        self._ctx = ctx
        self._runner = runner
        self._options = options
        self._on_record = on_record
        self._sleep = options.sleep if options.sleep is not None else time.sleep
        self._pending: Deque[TaskSpec] = deque(specs)
        self._attempts: Dict[int, int] = {spec.index: 0 for spec in specs}
        self._records: Dict[int, TaskRecord] = {}
        self._total = len(specs)
        size = min(options.workers, max(1, self._total))
        self._workers: List[_WorkerHandle] = [self._spawn() for _ in range(size)]

    def _spawn(self) -> _WorkerHandle:
        return _WorkerHandle(
            self._ctx, _worker_main, (self._runner, self._options.clock)
        )

    # -- bookkeeping ---------------------------------------------------

    def _finish(self, record: TaskRecord) -> None:
        self._records[record.spec.index] = record
        if self._on_record is not None:
            self._on_record(record)

    def _retry_or_fail(self, spec: TaskSpec, failure: TaskFailure) -> None:
        attempts = self._attempts[spec.index]
        if attempts >= self._options.max_attempts:
            self._finish(
                TaskRecord(
                    spec=spec,
                    status=STATUS_FAILED,
                    failure=failure,
                    attempts=attempts,
                )
            )
        else:
            # Bounded exponential backoff; workers already running keep
            # making progress while the parent waits.
            self._sleep(self._options.backoff_base * (2 ** (attempts - 1)))
            self._pending.appendleft(spec)

    # -- dispatch and completion ---------------------------------------

    def _dispatch(self) -> None:
        for worker in self._workers:
            if worker.busy or not self._pending:
                continue
            spec = self._pending.popleft()
            self._attempts[spec.index] += 1
            sent = False
            while not sent:
                try:
                    worker.conn.send(("task", spec.index, spec.payload))
                    sent = True
                except (BrokenPipeError, OSError):
                    # The idle worker died between tasks; replace it.
                    worker.kill()
                    replacement = self._spawn()
                    self._workers[self._workers.index(worker)] = replacement
                    worker = replacement
            worker.spec = spec
            if self._options.timeout is not None and self._options.clock is not None:
                worker.deadline = self._options.clock() + self._options.timeout
            else:
                worker.deadline = None

    def _replace(self, worker: _WorkerHandle) -> None:
        worker.kill()
        self._workers[self._workers.index(worker)] = self._spawn()

    def _handle_message(self, worker: _WorkerHandle, message) -> None:
        spec = worker.spec
        worker.spec = None
        worker.deadline = None
        assert spec is not None
        status, index, body, duration = message
        if index != spec.index:  # pragma: no cover - protocol invariant
            raise ParallelError(
                f"worker answered task {index}, expected {spec.index}"
            )
        if status == "ok":
            self._finish(
                TaskRecord(
                    spec=spec,
                    status=STATUS_DONE,
                    outcome=body,
                    attempts=self._attempts[spec.index],
                    duration_s=duration,
                    digest=outcome_digest(body),
                )
            )
        else:
            self._retry_or_fail(spec, body)

    def _handle_crash(self, worker: _WorkerHandle) -> None:
        spec = worker.spec
        worker.spec = None
        exitcode = worker.process.exitcode
        self._replace(worker)
        if spec is None:  # pragma: no cover - idle worker died
            return
        self._retry_or_fail(
            spec,
            TaskFailure(
                kind="crash",
                message=(
                    f"worker process died while running task {spec.key!r} "
                    f"(exit code {exitcode})"
                ),
            ),
        )

    def _handle_timeout(self, worker: _WorkerHandle) -> None:
        spec = worker.spec
        worker.spec = None
        assert spec is not None
        self._replace(worker)
        self._retry_or_fail(
            spec,
            TaskFailure(
                kind="timeout",
                message=(
                    f"task {spec.key!r} exceeded the {self._options.timeout:g}s "
                    "timeout and its worker was killed"
                ),
            ),
        )

    def _poll_timeout(self) -> Optional[float]:
        """How long the wait may block before a deadline check is due."""
        clock = self._options.clock
        if clock is None:
            return None
        deadlines = [w.deadline for w in self._workers if w.deadline is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - clock())

    def _expire_deadlines(self) -> None:
        clock = self._options.clock
        if clock is None:
            return
        now = clock()
        for worker in list(self._workers):
            if worker.busy and worker.deadline is not None and now >= worker.deadline:
                self._handle_timeout(worker)

    # -- main loop -----------------------------------------------------

    def run(self) -> List[TaskRecord]:
        try:
            while len(self._records) < self._total:
                self._dispatch()
                busy = [w for w in self._workers if w.busy]
                if not busy:  # pragma: no cover - defensive
                    raise ParallelError("pool stalled with unfinished tasks")
                ready = mp_connection.wait(
                    [w.conn for w in busy], timeout=self._poll_timeout()
                )
                by_conn = {w.conn: w for w in busy}
                for conn in ready:
                    worker = by_conn[conn]
                    if not worker.busy:
                        continue  # already handled this round
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        self._handle_crash(worker)
                        continue
                    self._handle_message(worker, message)
                self._expire_deadlines()
        finally:
            for worker in self._workers:
                worker.stop()
        return [self._records[spec_index] for spec_index in sorted(self._records)]


def run_tasks(
    runner: Callable[[Any], Any],
    specs: Sequence[TaskSpec],
    options: Optional[PoolOptions] = None,
    on_record: Optional[Callable[[TaskRecord], None]] = None,
) -> List[TaskRecord]:
    """Execute ``runner(spec.payload)`` for every spec; return records.

    Records come back sorted by ``spec.index`` — never by completion
    order — so aggregation downstream is deterministic.  ``on_record``
    (the ledger hook) fires once per task *in completion order* as soon
    as its fate is decided.

    ``runner`` must be a pure function of its payload (plus the seed
    embedded in it); with forked workers it may be a closure and may
    read memoized parent state built before this call.
    """
    options = options if options is not None else PoolOptions()
    options.validate()
    indices = [spec.index for spec in specs]
    if len(set(indices)) != len(indices):
        raise ParallelError("task indices must be unique")
    if not specs:
        return []
    if options.workers == 1 or not fork_available():
        return _run_serial(runner, specs, options, on_record)
    ctx = multiprocessing.get_context("fork")
    return _PoolRun(ctx, runner, specs, options, on_record).run()


def parallel_map(
    func: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    timeout: Optional[float] = None,
    max_attempts: int = 1,
    clock: Optional[Clock] = None,
) -> List[Any]:
    """Ordered fault-isolated map: ``[func(x) for x in items]``.

    The figure harnesses use this to fan their independent overlay runs
    across workers; any ultimately-failed item raises
    :class:`ParallelError` naming the failures.
    """
    specs = [
        TaskSpec(index=i, key=str(i), payload=item)
        for i, item in enumerate(items)
    ]
    records = run_tasks(
        func,
        specs,
        PoolOptions(
            workers=workers,
            timeout=timeout,
            max_attempts=max_attempts,
            clock=clock,
        ),
    )
    failures = [record for record in records if not record.ok]
    if failures:
        details = "; ".join(
            f"item {record.spec.index}: {record.failure.summary()}"
            for record in failures
            if record.failure is not None
        )
        raise ParallelError(f"{len(failures)} parallel task(s) failed: {details}")
    return [record.outcome for record in records]
