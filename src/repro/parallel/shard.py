"""One deterministic overlay run spread across worker processes.

:class:`ShardedOverlay` drives the same :class:`~repro.core.batch.ShardEngine`
objects the serial :class:`~repro.core.batch.BatchOverlay` drives — but
hosts them in forked worker processes, advancing every shard in
lockstep windows of one shuffle period (conservative synchronization:
one period is the minimum cross-shard message latency, so no shard can
observe an event "from the future").  Each round is two routing hops
through the parent:

1. every worker runs ``begin_round`` for its shards and ships
   cross-shard :class:`~repro.core.batch.PairBatch` notifications;
2. after routing, every worker runs ``build_sets`` and ships
   cross-shard :class:`~repro.core.batch.SetBatch` payloads (compact
   numpy id/value/expiry/owner column batches);
3. after the second hop, every worker runs ``absorb``.

Batches between workers in the *same* process short-circuit locally and
never touch a pipe.  Engines re-sort whatever arrives into canonical
shard/initiator order, so scheduling and transport cannot change
results.

Determinism contract: the digest of a run is a function of
``(config, num_shards)`` and *nothing else* — per-shard RNG streams are
spawned from the root seed and the shard id, churn is replicated
per-process from the same spawned streams, and cross-shard batches are
merged in deterministic shard-id order.  ``ShardedOverlay(workers=N)``
is therefore byte-identical to the serial
``BatchOverlay(num_shards=S)`` for any N — pinned by the
serial-equivalence golden test in ``tests/test_shard.py``.

When ``workers`` resolves to 1 (or ``fork`` is unavailable) the whole
grid runs in-process by delegating to ``BatchOverlay(num_shards=S)`` —
same digest, no processes.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import traceback
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..churn.batch import ShardedChurn
from ..core.batch import (
    BatchOverlay,
    PairBatch,
    SetBatch,
    ShardEngine,
    combine_shard_digests,
    ring_lattice_csr,
    shard_ranges,
    shard_stream,
    slot_count_for,
)
from ..errors import GraphError, ParallelError
from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis
from ..rng import RandomStreams
from .engine import _WorkerHandle, fork_available

__all__ = ["ShardOptions", "ShardedOverlay"]


@dataclasses.dataclass(frozen=True)
class ShardOptions:
    """Execution policy for one :class:`ShardedOverlay`.

    ``num_shards`` is *semantic*: it selects the shard grid the digest
    is a function of.  ``workers`` is pure execution policy — any
    value produces byte-identical results; ``None`` picks
    ``min(num_shards, cpu_count)``.
    """

    num_shards: int = 4
    workers: Optional[int] = None

    def validate(self) -> None:
        """Reject inconsistent policies with a clear error."""
        if self.num_shards < 1:
            raise ParallelError("num_shards must be at least 1")
        if self.workers is not None and self.workers < 1:
            raise ParallelError("workers must be at least 1")


def _advance_round(
    conn: Any,
    engines: Dict[int, ShardEngine],
    churn: ShardedChurn,
    now: float,
) -> None:
    """One lockstep window on this worker's shard block.

    Strict phase alternation with the parent: send hop-1 batches, block
    for the routed ones, send hop-2 batches, block again, absorb.  The
    parent drains every worker before it routes, so a worker blocked in
    ``send`` is never waited on by a parent blocked in ``send``.
    """
    churn.step()
    pairs_local: Dict[int, List[PairBatch]] = {shard: [] for shard in engines}
    pairs_remote: Dict[int, List[PairBatch]] = {}
    for shard in sorted(engines):
        for dst, batch in engines[shard].begin_round(now).items():
            target = pairs_local if dst in engines else pairs_remote
            target.setdefault(dst, []).append(batch)
    conn.send(("pairs", pairs_remote))
    tag, routed = conn.recv()
    if tag != "pairs":  # pragma: no cover - protocol invariant
        raise ParallelError(f"expected routed pairs, got {tag!r}")
    for dst, batches in routed.items():
        pairs_local.setdefault(dst, []).extend(batches)
    sets_local: Dict[int, List[SetBatch]] = {shard: [] for shard in engines}
    sets_remote: Dict[int, List[SetBatch]] = {}
    for shard in sorted(engines):
        out = engines[shard].build_sets(pairs_local[shard], now)
        for dst, batches in out.items():
            target = sets_local if dst in engines else sets_remote
            target.setdefault(dst, []).extend(batches)
    conn.send(("sets", sets_remote))
    tag, routed = conn.recv()
    if tag != "sets":  # pragma: no cover - protocol invariant
        raise ParallelError(f"expected routed sets, got {tag!r}")
    for dst, batches in routed.items():
        sets_local.setdefault(dst, []).extend(batches)
    for shard in sorted(engines):
        engines[shard].absorb(sets_local[shard], now)


def _shard_worker_main(  # lint: fork-entry
    conn: Any,
    config: SystemConfig,
    trusted_indptr: np.ndarray,
    trusted_indices: np.ndarray,
    num_shards: int,
    shard_lo: int,
    shard_hi: int,
    start_all_online: bool,
) -> None:
    """Worker loop hosting the contiguous shard block ``[lo, hi)``.

    Builds the *whole grid's* churn (replicated — one uniform draw per
    node per round is cheap and gives this process the full population
    online mask for reachability) but engines only for its own shards.
    Commands arrive over the pipe; any internal failure is reported as
    an ``("error", traceback)`` message so the parent can surface it.
    """
    try:
        bounds = shard_ranges(config.num_nodes, num_shards)
        churn = ShardedChurn(
            bounds,
            config.availability,
            config.mean_offline_time,
            [
                shard_stream(config.seed, shard, num_shards, "churn")
                for shard in range(num_shards)
            ],
            start_all_online=start_all_online,
        )
        slot_count = slot_count_for(config, trusted_indices)
        indptr = np.ascontiguousarray(trusted_indptr, dtype=np.int64)
        indices = np.ascontiguousarray(trusted_indices, dtype=np.int64)
        engines = {
            shard: ShardEngine(
                config, shard, bounds, slot_count, indptr, indices, churn.online
            )
            for shard in range(shard_lo, shard_hi)
        }
        round_no = 0
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            command = message[0]
            if command == "stop":
                break
            if command == "run":
                for _ in range(message[1]):
                    round_no += 1
                    _advance_round(conn, engines, churn, float(round_no))
                conn.send(("ran", round_no))
            elif command == "digest":
                conn.send(
                    (
                        "digest",
                        {
                            shard: engines[shard].digest_bytes()
                            for shard in engines
                        },
                    )
                )
            elif command == "stats":
                merged: Dict[str, int] = {}
                online = 0
                for shard in sorted(engines):
                    engine = engines[shard]
                    for key, value in engine.counters.items():
                        merged[key] = merged.get(key, 0) + value
                    online += int(engine.online.sum())
                conn.send(("stats", merged, online))
            elif command == "edges":
                online_only = message[1]
                now = float(round_no)
                ids_parts: List[np.ndarray] = []
                trust_lo_parts: List[np.ndarray] = []
                trust_hi_parts: List[np.ndarray] = []
                holder_parts: List[np.ndarray] = []
                owner_parts: List[np.ndarray] = []
                alive_parts: List[np.ndarray] = []
                for shard in sorted(engines):
                    engine = engines[shard]
                    if online_only:
                        ids_parts.append(
                            engine.lo + np.flatnonzero(engine.online)
                        )
                    else:
                        ids_parts.append(
                            np.arange(engine.lo, engine.hi, dtype=np.int64)
                        )
                    trust_lo_parts.append(engine.trust_lo)
                    trust_hi_parts.append(engine.trust_hi)
                    holder, owner, alive = engine.link_edges(now)
                    holder_parts.append(holder)
                    owner_parts.append(owner)
                    alive_parts.append(alive)
                conn.send(
                    (
                        "edges",
                        np.concatenate(ids_parts),
                        np.concatenate(trust_lo_parts),
                        np.concatenate(trust_hi_parts),
                        np.concatenate(holder_parts),
                        np.concatenate(owner_parts),
                        np.concatenate(alive_parts),
                    )
                )
            elif command == "degree":
                total = 0
                count = 0
                for shard in sorted(engines):
                    mass, online = engines[shard].degree_mass()
                    total += mass
                    count += online
                conn.send(("degree", total, count))
            elif command == "memory":
                conn.send(
                    (
                        "memory",
                        sum(
                            engines[shard].memory_bytes() for shard in engines
                        ),
                    )
                )
            else:  # pragma: no cover - protocol invariant
                raise ParallelError(f"unknown shard command {command!r}")
    except BaseException as exc:
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
            raise
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass


class ShardedOverlay:
    """A :class:`BatchOverlay` shard grid hosted across worker processes.

    Parameters
    ----------
    config, trusted_indptr, trusted_indices:
        As for :class:`~repro.core.batch.BatchOverlay`.
    options:
        The :class:`ShardOptions` policy; the ``num_shards`` /
        ``workers`` keywords override individual fields.
    start_all_online:
        Seat every node online instead of the stationary draw.

    The observable surface mirrors the serial engine — ``run``,
    ``state_digest``, ``stats``, ``snapshot``, ``analysis``,
    ``mean_out_degree``, ``memory_bytes`` — and every one of them
    returns exactly what ``BatchOverlay(num_shards=S)`` returns (the
    ``sharded-batch`` lint parity pair pins the signatures).  Use as a
    context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        config: SystemConfig,
        trusted_indptr: np.ndarray,
        trusted_indices: np.ndarray,
        options: Optional[ShardOptions] = None,
        start_all_online: bool = False,
        num_shards: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        options = options if options is not None else ShardOptions()
        if num_shards is not None or workers is not None:
            options = dataclasses.replace(
                options,
                num_shards=(
                    options.num_shards if num_shards is None else num_shards
                ),
                workers=options.workers if workers is None else workers,
            )
        options.validate()
        self.config = config
        self.options = options
        self.num_shards = options.num_shards
        self.round = 0
        self._closed = False
        self._local: Optional[BatchOverlay] = None
        self._handles: List[_WorkerHandle] = []
        self._worker_shards: List[Tuple[int, int]] = []
        resolved = options.workers
        if resolved is None:
            resolved = min(self.num_shards, os.cpu_count() or 1)
        resolved = min(resolved, self.num_shards)
        self.workers = max(1, resolved)
        if self.workers == 1 or not fork_available():
            self.workers = 1
            self._local = BatchOverlay(
                config,
                trusted_indptr,
                trusted_indices,
                start_all_online=start_all_online,
                num_shards=self.num_shards,
            )
            return
        indptr = np.ascontiguousarray(trusted_indptr, dtype=np.int64)
        indices = np.ascontiguousarray(trusted_indices, dtype=np.int64)
        if len(indptr) != config.num_nodes + 1:
            # Same validation BatchOverlay performs, before forking.
            raise GraphError(
                f"trusted_indptr covers {len(indptr) - 1} nodes, "
                f"config.num_nodes is {config.num_nodes}"
            )
        worker_bounds = shard_ranges(self.num_shards, self.workers)
        ctx = multiprocessing.get_context("fork")
        for worker in range(self.workers):
            shard_lo = int(worker_bounds[worker])
            shard_hi = int(worker_bounds[worker + 1])
            self._worker_shards.append((shard_lo, shard_hi))
            self._handles.append(
                _WorkerHandle(
                    ctx,
                    _shard_worker_main,
                    (
                        config,
                        indptr,
                        indices,
                        self.num_shards,
                        shard_lo,
                        shard_hi,
                        start_all_online,
                    ),
                )
            )

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        extra_edges_per_node: int = 4,
        start_all_online: bool = False,
        options: Optional[ShardOptions] = None,
        num_shards: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> "ShardedOverlay":
        """Construct over a synthetic ring-lattice trust graph."""
        streams = RandomStreams(config.seed)
        indptr, indices = ring_lattice_csr(
            config.num_nodes,
            extra_edges_per_node,
            streams.substream("batch", "trust-graph"),
        )
        return cls(
            config,
            indptr,
            indices,
            options=options,
            start_all_online=start_all_online,
            num_shards=num_shards,
            workers=workers,
        )

    # ------------------------------------------------------------------
    # worker transport
    # ------------------------------------------------------------------

    def _fail(self, detail: str) -> "ParallelError":
        self.close()
        return ParallelError(f"sharded run failed: {detail}")

    def _recv(self, handle: _WorkerHandle) -> Any:
        try:
            message = handle.conn.recv()
        except (EOFError, OSError):
            exitcode = handle.process.exitcode
            raise self._fail(
                f"worker process died mid-round (exit code {exitcode})"
            ) from None
        if message[0] == "error":
            raise self._fail(f"worker raised:\n{message[1]}")
        return message

    def _send(self, handle: _WorkerHandle, message: Any) -> None:
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError):
            exitcode = handle.process.exitcode
            raise self._fail(
                f"worker pipe closed (exit code {exitcode})"
            ) from None

    def _route_hop(self, tag: str) -> None:
        """Drain one hop from every worker, regroup, send back routed.

        Workers are drained in worker order (deterministic), and every
        destination shard's batch list preserves source order only as
        far as transport — engines re-sort by source shard, so even
        this order is immaterial to results.
        """
        outbound: Dict[int, List[Any]] = {}
        for handle in self._handles:
            message = self._recv(handle)
            if message[0] != tag:  # pragma: no cover - protocol invariant
                raise self._fail(f"expected {tag!r}, got {message[0]!r}")
            for dst, batches in message[1].items():
                outbound.setdefault(dst, []).extend(batches)
        for worker, handle in enumerate(self._handles):
            shard_lo, shard_hi = self._worker_shards[worker]
            payload = {
                dst: outbound[dst]
                for dst in range(shard_lo, shard_hi)
                if dst in outbound
            }
            self._send(handle, (tag, payload))

    def _command(self, *message: Any) -> List[Any]:
        """Broadcast one command; gather one reply per worker, in order."""
        for handle in self._handles:
            self._send(handle, tuple(message))
        return [self._recv(handle) for handle in self._handles]

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one shuffle round (all shards, in lockstep)."""
        self.run(1)

    def run(self, rounds: int) -> None:
        """Advance ``rounds`` shuffle rounds."""
        if self._local is not None:
            self._local.run(rounds)
            self.round = self._local.round
            return
        if self._closed:
            raise ParallelError("ShardedOverlay is closed")
        for handle in self._handles:
            self._send(handle, ("run", rounds))
        for _ in range(rounds):
            self._route_hop("pairs")
            self._route_hop("sets")
            self.round += 1
        for handle in self._handles:
            message = self._recv(handle)
            if message != ("ran", self.round):  # pragma: no cover
                raise self._fail(
                    f"worker desynchronized: {message!r} != round {self.round}"
                )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def state_digest(self) -> str:
        """SHA-256 over the protocol state (determinism evidence).

        Identical to ``BatchOverlay(num_shards=S).state_digest()`` for
        the same config and grid, whatever ``workers`` was.
        """
        if self._local is not None:
            return self._local.state_digest()
        digests: Dict[int, bytes] = {}
        for reply in self._command("digest"):
            digests.update(reply[1])
        return combine_shard_digests(
            self.round, [digests[shard] for shard in range(self.num_shards)]
        )

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus the current online count."""
        if self._local is not None:
            return self._local.stats()
        merged: Dict[str, int] = {}
        online = 0
        for reply in self._command("stats"):
            for key, value in reply[1].items():
                merged[key] = merged.get(key, 0) + value
            online += reply[2]
        merged["online_nodes"] = online
        merged["round"] = self.round
        return merged

    def snapshot(self, online_only: bool = True) -> FlatSnapshot:
        """The current overlay as a :class:`FlatSnapshot`.

        Per-worker edge lists concatenate in worker order — shard
        order — which is global row order, matching the serial engine.
        """
        if self._local is not None:
            return self._local.snapshot(online_only=online_only)
        replies = self._command("edges", online_only)
        num_nodes = self.config.num_nodes
        ids = np.concatenate([reply[1] for reply in replies])
        pos = np.full(num_nodes, -1, dtype=np.int64)
        pos[ids] = np.arange(len(ids), dtype=np.int64)
        trust_a = pos[np.concatenate([reply[2] for reply in replies])]
        trust_b = pos[np.concatenate([reply[3] for reply in replies])]
        trust_keep = (trust_a >= 0) & (trust_b >= 0)
        holder = np.concatenate([reply[4] for reply in replies])
        owner = np.concatenate([reply[5] for reply in replies])
        alive = np.concatenate([reply[6] for reply in replies])
        a = pos[holder]
        b = pos[np.maximum(owner, 0)]
        keep = alive & (owner >= 0) & (owner != holder) & (a >= 0) & (b >= 0)
        return FlatSnapshot.from_edge_positions(
            ids,
            np.concatenate((trust_a[trust_keep], a[keep])),
            np.concatenate((trust_b[trust_keep], b[keep])),
        )

    def analysis(self, online_only: bool = True) -> SnapshotAnalysis:
        """Metric kernels over the current snapshot."""
        return SnapshotAnalysis(self.snapshot(online_only=online_only))

    def mean_out_degree(self) -> float:
        """Mean overlay degree over online nodes (trusted + live links)."""
        if self._local is not None:
            return self._local.mean_out_degree()
        total = 0
        count = 0
        for reply in self._command("degree"):
            total += reply[1]
            count += reply[2]
        if count == 0:
            return 0.0
        return total / count

    def memory_bytes(self) -> int:
        """Deterministic storage accounting of the *logical* state.

        Sums every shard engine plus one global online mask — the same
        accounting the serial engine reports.  Physical RSS is higher
        under multiprocessing (each worker replicates the churn grid
        and the trust CSR pages); benchmarks measure that separately.
        """
        if self._local is not None:
            return self._local.memory_bytes()
        total = sum(reply[1] for reply in self._command("memory"))
        return total + self.config.num_nodes

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop all worker processes (idempotent)."""
        if self._closed:
            return
        self._closed = True
        handles, self._handles = self._handles, []
        for handle in handles:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in handles:
            handle.process.join(timeout=5.0)
            handle.kill()

    def __enter__(self) -> "ShardedOverlay":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
