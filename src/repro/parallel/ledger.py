"""Resumable on-disk run ledger.

A :class:`RunLedger` is an append-only JSONL manifest of one sweep run,
written next to the :class:`~repro.experiments.store.ResultStore` that
holds the point results.  The first line is a header fingerprinting the
run (schema, prefix, root seed, axes, task count); every subsequent line
records one task's fate — spec key, status, attempt count, duration,
and result digest — in completion order.

The ledger is what makes interrupted runs cheap to resume and finished
runs auditable:

* ``--resume`` replays the ledger, checks the fingerprint matches the
  requested sweep, and skips every task whose last entry is ``done``
  (re-verifying that the stored result still digests to the recorded
  value).  Only missing, failed, or tampered points recompute.
* A completed ledger documents exactly what ran: per-point attempt
  counts expose flaky failures, digests pin the results, and failure
  entries carry structured :class:`~repro.parallel.tasks.TaskFailure`
  payloads.

Appends are line-buffered single-writer operations from the parent
process only — workers never touch the ledger — so a crash can at worst
truncate the final line, which the reader tolerates by ignoring
unparsable trailing lines.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ParallelError

__all__ = ["LEDGER_SCHEMA", "RunLedger", "run_fingerprint"]

#: Schema marker stamped into every ledger header.
LEDGER_SCHEMA = "repro-parallel-ledger/1"


def run_fingerprint(
    store_prefix: str,
    seed: int,
    axes: Dict[str, List[Any]],
    total_tasks: int,
) -> Dict[str, Any]:
    """The identity of a sweep, as stable JSON-friendly data.

    Axis values go through ``repr`` so floats (including ``inf``) and
    ints fingerprint exactly without JSON round-trip surprises.
    """
    return {
        "schema": LEDGER_SCHEMA,
        "prefix": store_prefix,
        "seed": seed,
        "axes": [[name, [repr(value) for value in values]] for name, values in axes.items()],
        "total_tasks": total_tasks,
    }


@dataclasses.dataclass
class LedgerState:
    """Parsed view of a ledger file."""

    header: Dict[str, Any]
    #: Last entry per task key (later lines win — retried runs append).
    entries: Dict[str, Dict[str, Any]]
    #: How many resume markers the file contains.
    resumes: int

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Entries whose final status produced a result."""
        return {
            key: entry
            for key, entry in self.entries.items()
            if entry.get("status") in ("done", "reused")
        }


class RunLedger:
    """Append-only JSONL manifest of one sweep run."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self._path = pathlib.Path(path)

    @property
    def path(self) -> pathlib.Path:
        """The backing JSONL file."""
        return self._path

    def exists(self) -> bool:
        """Whether a ledger file is present."""
        return self._path.exists()

    # -- writing -------------------------------------------------------

    def start(self, fingerprint: Dict[str, Any]) -> None:
        """Begin a fresh run: truncate and write the header line."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        header = dict(fingerprint)
        header["kind"] = "header"
        with open(self._path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")

    def mark_resume(self) -> None:
        """Append a resume marker (audit trail of interruptions)."""
        self._append({"kind": "resume"})

    def append(self, entry: Dict[str, Any]) -> None:
        """Append one task entry (``kind`` must be ``"task"``)."""
        if entry.get("kind") != "task" or "key" not in entry:
            raise ParallelError(f"not a task ledger entry: {entry!r}")
        self._append(entry)

    def _append(self, entry: Dict[str, Any]) -> None:
        if not self._path.exists():
            raise ParallelError(
                f"ledger {self._path} was never started; call start() first"
            )
        line = json.dumps(entry, sort_keys=True)
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    # -- reading -------------------------------------------------------

    def read(self) -> LedgerState:
        """Parse the ledger, tolerating a truncated final line.

        Raises
        ------
        ParallelError
            If the file is missing, empty, or its header is not a
            recognizable ledger header.
        """
        if not self._path.exists():
            raise ParallelError(f"no ledger at {self._path}")
        lines = self._path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ParallelError(f"ledger {self._path} is empty")
        header = self._parse_line(lines[0])
        if header is None or header.get("kind") != "header" or header.get(
            "schema"
        ) != LEDGER_SCHEMA:
            raise ParallelError(
                f"ledger {self._path} has no valid header line"
            )
        entries: Dict[str, Dict[str, Any]] = {}
        resumes = 0
        for position, line in enumerate(lines[1:], start=2):
            entry = self._parse_line(line)
            if entry is None:
                # A crash mid-append can truncate only the last line;
                # anything unparsable earlier means real corruption.
                if position != len(lines):
                    raise ParallelError(
                        f"ledger {self._path} line {position} is corrupt"
                    )
                continue
            kind = entry.get("kind")
            if kind == "task" and "key" in entry:
                entries[entry["key"]] = entry
            elif kind == "resume":
                resumes += 1
        return LedgerState(header=header, entries=entries, resumes=resumes)

    def matches(self, fingerprint: Dict[str, Any]) -> bool:
        """Whether the on-disk header fingerprints the same sweep."""
        try:
            state = self.read()
        except ParallelError:
            return False
        header = {
            key: value for key, value in state.header.items() if key != "kind"
        }
        return header == fingerprint

    @staticmethod
    def _parse_line(line: str) -> Optional[Dict[str, Any]]:
        stripped = line.strip()
        if not stripped:
            return None
        try:
            parsed = json.loads(stripped)
        except json.JSONDecodeError:
            return None
        return parsed if isinstance(parsed, dict) else None
