"""Ready-made picklable experiments for parallel sweeps.

Worker processes need the experiment as something they can be handed at
fork time; :class:`OverlayPointExperiment` packages "run one overlay to
its stable state and summarize it as scalars" as a frozen dataclass, so
the ``repro sweep`` CLI and the bench harness can fan it out without
closures.  Outcomes are plain JSON-friendly dicts, which is what the
result store, the ledger digests, and ``sweep_table_rows`` all want.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from ..config import SystemConfig
from ..experiments.runner import run_overlay_experiment
from ..experiments.scenarios import make_trust_graph, scale_by_name

__all__ = ["OverlayPointExperiment"]


@dataclasses.dataclass(frozen=True)
class OverlayPointExperiment:
    """One sweep point: an overlay run summarized as scalar metrics.

    The trust graph derives from ``(scale, f, config.seed)`` through the
    memoized :func:`~repro.experiments.scenarios.make_trust_graph`, so a
    forked worker inherits a parent-built graph for free and a spawned
    one rebuilds it identically.
    """

    scale_name: str
    f: float = 0.5
    #: Simulation horizon; defaults to the scale's ``total_horizon``.
    horizon: Optional[float] = None
    #: Tail window; defaults to the scale's ``measure_window``.
    measure_window: Optional[float] = None

    def __call__(self, config: SystemConfig) -> Dict[str, Any]:  # lint: fork-entry
        scale = scale_by_name(self.scale_name)
        trust_graph = make_trust_graph(scale, self.f, config.seed)
        horizon = self.horizon if self.horizon is not None else scale.total_horizon
        window = (
            self.measure_window
            if self.measure_window is not None
            else scale.measure_window
        )
        result = run_overlay_experiment(
            trust_graph,
            config,
            horizon=horizon,
            measure_window=min(window, horizon),
            collector_interval=scale.collector_interval,
        )
        return {
            "disconnected": result.disconnected,
            "trust_disconnected": result.trust_disconnected,
            "online_fraction": result.online_fraction,
            "full_edge_count": result.full_edge_count,
        }
