"""Ready-made picklable experiments for parallel sweeps.

Worker processes need the experiment as something they can be handed at
fork time; :class:`OverlayPointExperiment` packages "run one overlay to
its stable state and summarize it as scalars" as a frozen dataclass, so
the ``repro sweep`` CLI and the bench harness can fan it out without
closures.  Outcomes are plain JSON-friendly dicts, which is what the
result store, the ledger digests, and ``sweep_table_rows`` all want.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from ..config import SystemConfig
from ..experiments.runner import run_overlay_experiment
from ..experiments.scenarios import make_trust_graph, scale_by_name

__all__ = ["BatchPointExperiment", "OverlayPointExperiment"]


@dataclasses.dataclass(frozen=True)
class OverlayPointExperiment:
    """One sweep point: an overlay run summarized as scalar metrics.

    The trust graph derives from ``(scale, f, config.seed)`` through the
    memoized :func:`~repro.experiments.scenarios.make_trust_graph`, so a
    forked worker inherits a parent-built graph for free and a spawned
    one rebuilds it identically.
    """

    scale_name: str
    f: float = 0.5
    #: Simulation horizon; defaults to the scale's ``total_horizon``.
    horizon: Optional[float] = None
    #: Tail window; defaults to the scale's ``measure_window``.
    measure_window: Optional[float] = None

    def __call__(self, config: SystemConfig) -> Dict[str, Any]:  # lint: fork-entry
        scale = scale_by_name(self.scale_name)
        trust_graph = make_trust_graph(scale, self.f, config.seed)
        horizon = self.horizon if self.horizon is not None else scale.total_horizon
        window = (
            self.measure_window
            if self.measure_window is not None
            else scale.measure_window
        )
        result = run_overlay_experiment(
            trust_graph,
            config,
            horizon=horizon,
            measure_window=min(window, horizon),
            collector_interval=scale.collector_interval,
        )
        return {
            "disconnected": result.disconnected,
            "trust_disconnected": result.trust_disconnected,
            "online_fraction": result.online_fraction,
            "full_edge_count": result.full_edge_count,
        }


@dataclasses.dataclass(frozen=True)
class BatchPointExperiment:
    """One sweep point on the round-based batch engine.

    Runs ``rounds`` shuffle periods of
    :class:`~repro.core.batch.BatchOverlay` (optionally over a
    ``num_shards`` grid hosted on ``shard_workers`` processes via
    :class:`~repro.parallel.shard.ShardedOverlay`) and summarizes the
    end state.  Because the shard engine forks its own workers, sweeps
    using it must run their *points* serially — daemonic pool workers
    cannot fork children — which is exactly what ``repro sweep
    --shards N`` arranges.
    """

    rounds: int = 20
    extra_edges_per_node: int = 4
    num_shards: int = 1
    shard_workers: int = 1

    def __call__(self, config: SystemConfig) -> Dict[str, Any]:  # lint: fork-entry
        from ..core.batch import BatchOverlay
        from .shard import ShardedOverlay, ShardOptions

        if self.shard_workers > 1:
            with ShardedOverlay.build(
                config,
                extra_edges_per_node=self.extra_edges_per_node,
                options=ShardOptions(
                    num_shards=self.num_shards, workers=self.shard_workers
                ),
            ) as overlay:
                overlay.run(self.rounds)
                return self._summarize(overlay)
        overlay = BatchOverlay.build(
            config,
            extra_edges_per_node=self.extra_edges_per_node,
            num_shards=self.num_shards,
        )
        overlay.run(self.rounds)
        return self._summarize(overlay)

    @staticmethod
    def _summarize(overlay: Any) -> Dict[str, Any]:
        stats = overlay.stats()
        analysis = overlay.analysis()
        return {
            "disconnected": analysis.fraction_disconnected(),
            "online_fraction": stats["online_nodes"] / overlay.config.num_nodes,
            "mean_degree": overlay.mean_out_degree(),
            "exchanges": stats["exchanges"],
            "state_digest": overlay.state_digest(),
        }
