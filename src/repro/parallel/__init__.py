"""Deterministic multiprocess experiment execution.

The paper's evaluation is a grid of independent simulation points; this
package runs such grids on a pool of forked worker processes while
keeping the results byte-identical to a serial run.  Four pieces:

* :mod:`~repro.parallel.tasks` — the task model: per-point specs with
  deterministically derived seeds, structured failures, task records.
* :mod:`~repro.parallel.engine` — the fault-tolerant pool: per-task
  timeouts, bounded retries with backoff, crash isolation.
* :mod:`~repro.parallel.ledger` — the append-only JSONL run manifest
  that makes interrupted sweeps resumable and finished ones auditable.
* :mod:`~repro.parallel.sweep` — :func:`parallel_grid_sweep`, the
  drop-in parallel twin of :func:`repro.experiments.sweeps.grid_sweep`.
* :mod:`~repro.parallel.shard` — :class:`ShardedOverlay`, *one*
  deterministic batch-engine run spread across worker processes
  (sweeps parallelize across points; shards parallelize within one).

See ``docs/parallel.md`` for the architecture and the determinism and
resume guarantees.
"""

from .engine import PoolOptions, fork_available, parallel_map, run_tasks
from .experiments import BatchPointExperiment, OverlayPointExperiment
from .ledger import LEDGER_SCHEMA, RunLedger, run_fingerprint
from .shard import ShardOptions, ShardedOverlay
from .sweep import ParallelSweepRun, parallel_grid_sweep, run_parallel_sweep
from .tasks import (
    TaskFailure,
    TaskRecord,
    TaskSpec,
    derive_task_seed,
    outcome_digest,
)

__all__ = [
    "TaskSpec",
    "TaskFailure",
    "TaskRecord",
    "derive_task_seed",
    "outcome_digest",
    "PoolOptions",
    "run_tasks",
    "parallel_map",
    "fork_available",
    "RunLedger",
    "run_fingerprint",
    "LEDGER_SCHEMA",
    "ParallelSweepRun",
    "parallel_grid_sweep",
    "run_parallel_sweep",
    "OverlayPointExperiment",
    "BatchPointExperiment",
    "ShardOptions",
    "ShardedOverlay",
]
