"""repro — robust privacy-preserving overlays over social trust graphs.

A from-scratch reproduction of Singh, Urdaneta, van Steen, Vitenberg,
"Robust overlays for privacy-preserving data dissemination over a
social graph" (ICDCS 2012).

Quickstart
----------
>>> from repro import SystemConfig, Overlay
>>> from repro.graphs import generate_social_graph, sample_trust_graph
>>> from repro.rng import RandomStreams
>>> streams = RandomStreams(7)
>>> social = generate_social_graph(2000, rng=streams.substream("social"))
>>> config = SystemConfig(num_nodes=200, availability=0.5, cache_size=100,
...                       shuffle_length=20, target_degree=20, seed=7)
>>> trust = sample_trust_graph(social, 200, f=0.5,
...                            rng=streams.substream("sample"))
>>> overlay = Overlay.build(trust, config)
>>> overlay.start()
>>> overlay.run_until(50.0)
>>> snapshot = overlay.snapshot()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from .config import INFINITE_LIFETIME, SystemConfig
from .core import (
    LinkSet,
    Overlay,
    OverlayNode,
    OverlayStats,
    Pseudonym,
    PseudonymCache,
    SamplerSlots,
)
from .errors import ReproError
from .rng import RandomStreams
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "INFINITE_LIFETIME",
    "Overlay",
    "OverlayNode",
    "OverlayStats",
    "Pseudonym",
    "PseudonymCache",
    "SamplerSlots",
    "LinkSet",
    "ReproError",
    "RandomStreams",
    "Simulator",
    "__version__",
]
