"""Command-line front end for the linter.

Invoked as ``repro lint ...`` (through :mod:`repro.cli`), as
``python -m repro.lint ...``, or as the ``repro-lint`` console script.

By default the whole-program pass runs: per-file rules plus the
FLOW/FORK/PAR interprocedural families over a project index, with an
on-disk content-hash cache so unchanged files cost one hash.  CI runs
the ratchet form::

    python -m repro.lint src --baseline check

Exit codes: 0 clean (or no new findings under ``--baseline check``),
1 findings, 2 invalid invocation.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import BaselineError, check_baseline, write_baseline
from .cache import ResultCache
from .engine import LintError, lint_paths, lint_project
from .findings import Finding
from .reporters import render_json, render_rule_catalog, render_sarif, render_text

__all__ = ["main"]

DEFAULT_BASELINE = ".lint-baseline.json"
DEFAULT_CACHE = ".lint-cache.json"


def _emit(text: str) -> None:
    """Print, exiting quietly if the consumer (e.g. ``| head``) is gone."""
    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        # Point stdout at devnull so interpreter shutdown does not raise
        # a second BrokenPipeError while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())


def _changed_files(diff_base: str) -> List[str]:
    """Python files changed vs ``diff_base`` plus untracked ones."""
    changed: List[str] = []
    for command in (
        ["git", "diff", "--name-only", diff_base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            output = subprocess.run(
                command, capture_output=True, text=True, check=True
            ).stdout
        except (OSError, subprocess.CalledProcessError) as error:
            raise LintError(
                f"--changed needs a git checkout ({' '.join(command)} "
                f"failed: {error})"
            )
        changed.extend(
            line for line in output.splitlines() if line.endswith(".py")
        )
    return sorted({name for name in changed if Path(name).exists()})


def main(argv: Optional[List[str]] = None) -> int:
    """Lint CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Whole-program determinism and simulation-hygiene "
        "linter for the repro codebase.",
        epilog="Suppress a finding with '# lint: disable=RULE' on the "
        "offending statement, or file-wide with '# lint: disable-file="
        "RULE'.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--baseline",
        choices=("write", "check"),
        default=None,
        help="write: freeze current findings; check: fail only on "
        "findings not in the frozen baseline (the ratchet)",
    )
    parser.add_argument(
        "--baseline-file",
        default=DEFAULT_BASELINE,
        help=f"baseline location (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report findings only for files changed vs --diff-base "
        "(the analysis still covers every path)",
    )
    parser.add_argument(
        "--diff-base",
        default="HEAD",
        help="git ref --changed diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk per-file result cache",
    )
    parser.add_argument(
        "--cache-file",
        default=DEFAULT_CACHE,
        help=f"cache location (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="per-file rules only: skip the whole-program FLOW/FORK/PAR "
        "pass and the interprocedural DET003 waiver",
    )
    parser.add_argument(
        "--tests-dir",
        default=None,
        help="test tree for the PAR002 pinning check (default: a "
        "'tests' directory next to the linted paths)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _emit(render_rule_catalog())
        return 0

    rules = args.rules.split(",") if args.rules else None
    try:
        if args.no_project:
            result = lint_paths(args.paths, rules=rules)
        else:
            cache = None if args.no_cache else ResultCache(args.cache_file)
            result = lint_project(
                args.paths,
                rules=rules,
                tests_root=args.tests_dir,
                cache=cache,
            )
        changed = _changed_files(args.diff_base) if args.changed else None
    except LintError as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2

    display = result
    if changed is not None:
        wanted = {str(Path(name).resolve()) for name in changed}
        display = dataclasses.replace(
            result,
            findings=[
                finding
                for finding in result.findings
                if str(Path(finding.path).resolve()) in wanted
            ],
        )

    if args.format == "json":
        _emit(render_json(display))
    elif args.format == "sarif":
        _emit(render_sarif(display))
    else:
        _emit(render_text(display))

    if args.baseline == "write":
        suppressions = getattr(result, "suppression_count", 0)
        document = write_baseline(
            result.findings, args.baseline_file, suppressions
        )
        _emit(
            f"baseline written to {args.baseline_file}: "
            f"{document['total']} findings, {suppressions} suppressions"
        )
        return 0
    if args.baseline == "check":
        # The ratchet always judges the full finding set, even under
        # --changed: a stale cache or cross-file effect must not hide a
        # new finding in an "unchanged" file.
        try:
            report = check_baseline(result.findings, args.baseline_file)
        except BaselineError as error:
            print(f"repro lint: error: {error}", file=sys.stderr)
            return 2
        _emit(report.summary())
        if not report.ok:
            for finding in report.new_findings:
                _emit(f"NEW: {finding.format_text()}")
            return 1
        return 0
    return 0 if not display.findings else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
