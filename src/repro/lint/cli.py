"""Command-line front end for the linter.

Invoked as ``repro lint ...`` (through :mod:`repro.cli`), as
``python -m repro.lint ...``, or as the ``repro-lint`` console script.

Exit codes: 0 clean, 1 findings, 2 invalid invocation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .engine import LintError, lint_paths
from .reporters import render_json, render_rule_catalog, render_text

__all__ = ["main"]


def _emit(text: str) -> None:
    """Print, exiting quietly if the consumer (e.g. ``| head``) is gone."""
    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        # Point stdout at devnull so interpreter shutdown does not raise
        # a second BrokenPipeError while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())


def main(argv: Optional[List[str]] = None) -> int:
    """Lint CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism and simulation-hygiene linter "
        "for the repro codebase.",
        epilog="Suppress a finding with '# lint: disable=RULE' on the "
        "offending line, or file-wide with '# lint: disable-file=RULE'.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _emit(render_rule_catalog())
        return 0

    rules = args.rules.split(",") if args.rules else None
    try:
        result = lint_paths(args.paths, rules=rules)
    except LintError as error:
        print(f"repro lint: error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        _emit(render_json(result))
    else:
        _emit(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
