"""The lint engine: file discovery, parsing, rule dispatch, filtering.

:func:`lint_paths` is the programmatic entry point::

    from repro.lint import lint_paths
    result = lint_paths(["src"])
    for finding in result.findings:
        print(finding.format_text())

The engine is deliberately framework-free: plain :mod:`ast` parsing, a
rule registry (:mod:`repro.lint.rules`), and suppression comments
(:mod:`repro.lint.suppressions`).  Rules never see files they declared
themselves out of via :meth:`Rule.applies_to_path`, and findings on
suppressed (line, rule) pairs are dropped before reporting.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..errors import ReproError
from .findings import Finding
from .rules import RULES, Rule
from .suppressions import SuppressionTable, parse_suppressions

__all__ = [
    "LintError",
    "LintResult",
    "ProjectLintResult",
    "lint_paths",
    "lint_source",
    "lint_project",
    "select_rules",
]

#: Pseudo-rule code for files the parser rejects.  Not in the registry
#: (it cannot be disabled or selected) but it shares the finding model.
PARSE_ERROR_CODE = "LINT000"


class LintError(ReproError):
    """Invalid lint invocation (unknown rule, missing path)."""


def _ensure_project_rules() -> None:
    """Import the project-rule modules so they self-register."""
    from . import flow, fork, parity  # noqa: F401


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    checked_files: int

    @property
    def ok(self) -> bool:
        """Whether the run produced no findings."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """Map of rule code to number of findings."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def select_rules(codes: Optional[Iterable[str]] = None) -> List[Type[Rule]]:
    """Resolve rule codes to rule classes (all registered when None)."""
    if codes is None:
        return [RULES[code] for code in sorted(RULES)]
    selected: List[Type[Rule]] = []
    for code in codes:
        normalized = code.strip().upper()
        if not normalized:
            continue
        if normalized not in RULES:
            raise LintError(
                f"unknown rule {normalized!r} (known: {', '.join(sorted(RULES))})"
            )
        selected.append(RULES[normalized])
    if not selected:
        raise LintError("no rules selected")
    return selected


def _partition_rule_codes(
    codes: Optional[Iterable[str]],
) -> Tuple[Optional[List[str]], Optional[List[str]]]:
    """Split a code selection into (file-rule codes, project-rule codes).

    ``None`` means "all" on both sides.  Unknown codes raise.
    """
    _ensure_project_rules()
    from .project import PROJECT_RULES

    if codes is None:
        return None, None
    file_codes: List[str] = []
    project_codes: List[str] = []
    for code in codes:
        normalized = code.strip().upper()
        if not normalized:
            continue
        if normalized in RULES:
            file_codes.append(normalized)
        elif normalized in PROJECT_RULES:
            project_codes.append(normalized)
        else:
            known = ", ".join(sorted(RULES) + sorted(PROJECT_RULES))
            raise LintError(f"unknown rule {normalized!r} (known: {known})")
    if not file_codes and not project_codes:
        raise LintError("no rules selected")
    return file_codes, project_codes


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one in-memory source buffer; returns sorted findings."""
    rule_classes = list(rules) if rules is not None else select_rules(None)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                rule=PARSE_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
            )
        ]

    suppressions = parse_suppressions(source, tree)
    findings: List[Finding] = []
    for rule_class in rule_classes:
        if not rule_class.applies_to_path(path):
            continue
        findings.extend(rule_class(path, tree).run())
    findings = [
        finding
        for finding in findings
        if not suppressions.is_suppressed(finding.line, finding.rule)
    ]
    findings.sort(key=Finding.sort_key)
    return findings


#: The wall-clock boundary (DET003): the live-network layer is the one
#: package permitted to read the host clock — its WallClock *is* the
#: mapping from ``time.monotonic()`` to shuffling periods.  Simulation
#: and analysis code must keep going through a Clock object.
_WALL_CLOCK_PATHS: Tuple[str, ...] = ("repro/net/",)


def _in_wall_clock_boundary(path: str) -> bool:
    """Whether ``path`` lies inside the wall-clock waiver boundary."""
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _WALL_CLOCK_PATHS)


def _discover(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such file or directory: {raw}")
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while preserving the sorted-per-argument order.
    seen = set()
    unique: List[Path] = []
    for candidate in files:
        key = candidate.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint files and directories; returns findings plus file count.

    Parameters
    ----------
    paths:
        Files or directories; directories are walked recursively for
        ``*.py`` (hidden directories skipped).
    rules:
        Optional rule codes to run (default: every registered rule).

    Raises
    ------
    LintError
        For unknown rule codes or nonexistent paths.
    """
    rule_classes = select_rules(rules)
    findings: List[Finding] = []
    files = _discover(paths)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path), rule_classes))
    findings.sort(key=Finding.sort_key)
    return LintResult(findings=findings, checked_files=len(files))


@dataclasses.dataclass(frozen=True)
class ProjectLintResult(LintResult):
    """A :class:`LintResult` plus whole-program bookkeeping."""

    #: Number of live suppression comments across checked files.
    suppression_count: int = 0
    #: DET003 findings dropped by the interprocedural reporting-only
    #: waiver, as (path, line) pairs (visible for tests/debugging).
    waived_clock_findings: Tuple[Tuple[str, int], ...] = ()


def lint_project(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
    tests_root: Optional[str] = None,
    parity_pairs: Optional[Sequence] = None,
    cache: Optional[object] = None,
    report_paths: Optional[Iterable[str]] = None,
) -> ProjectLintResult:
    """Whole-program lint: per-file rules plus the interprocedural pass.

    Builds a :class:`~repro.lint.summaries.ModuleSummary` per file,
    assembles them into a
    :class:`~repro.lint.project.ProjectIndex`, drops DET003 findings
    the interprocedural reporting-only analysis waives, and runs every
    registered project rule (FLOW/FORK/PAR families).

    Parameters
    ----------
    paths:
        Files/directories to analyze (the *whole* project — the call
        graph is only as good as what it sees).
    rules:
        Optional rule codes; file and project codes may be mixed.
    tests_root:
        Test-tree root for the PAR002 pinning check.  Defaults to a
        ``tests`` directory next to the first path's parent when one
        exists.
    parity_pairs:
        Override the parity registry (tests inject synthetic pairs).
    cache:
        A :class:`~repro.lint.cache.ResultCache`; unchanged files reuse
        cached findings and summaries.
    report_paths:
        When given, only findings in these files are reported (the
        ``--changed`` mode); the analysis itself still covers ``paths``.
    """
    _ensure_project_rules()
    from .cache import content_hash
    from .project import PROJECT_RULES, ProjectIndex, ProjectRuleContext
    from .summaries import build_module_summary

    if rules is not None:
        # Cached entries hold full-rule-set results; a selective run
        # must neither consume nor overwrite them.
        cache = None
    file_codes, project_codes = _partition_rule_codes(rules)
    if file_codes is None:
        file_rule_classes = select_rules(None)
    elif file_codes:
        file_rule_classes = select_rules(file_codes)
    else:
        file_rule_classes = []
    if project_codes is None:
        project_rule_classes = [
            PROJECT_RULES[code] for code in sorted(PROJECT_RULES)
        ]
    else:
        project_rule_classes = [
            PROJECT_RULES[code] for code in sorted(project_codes)
        ]

    files = _discover(paths)
    findings: List[Finding] = []
    summaries = []
    tables: Dict[str, SuppressionTable] = {}
    suppression_count = 0
    for file_path in files:
        path_text = str(file_path)
        source = file_path.read_text(encoding="utf-8")
        digest = content_hash(source)
        cached = cache.get(path_text, digest) if cache is not None else None
        if cached is not None:
            file_findings, summary, suppressions = cached
        else:
            try:
                tree = ast.parse(source, filename=path_text)
            except SyntaxError as error:
                findings.append(
                    Finding(
                        path=path_text,
                        line=error.lineno or 1,
                        column=(error.offset or 1) - 1,
                        rule=PARSE_ERROR_CODE,
                        message=f"file does not parse: {error.msg}",
                    )
                )
                continue
            suppressions = parse_suppressions(source, tree)
            file_findings = []
            for rule_class in file_rule_classes:
                if not rule_class.applies_to_path(path_text):
                    continue
                file_findings.extend(rule_class(path_text, tree).run())
            file_findings = [
                finding
                for finding in file_findings
                if not suppressions.is_suppressed(finding.line, finding.rule)
            ]
            file_findings.sort(key=Finding.sort_key)
            summary = build_module_summary(source, path_text, tree)
            if cache is not None:
                cache.put(
                    path_text, digest, file_findings, summary, suppressions
                )
        findings.extend(file_findings)
        summaries.append(summary)
        tables[path_text] = suppressions
        suppression_count += suppressions.comment_count
    if cache is not None:
        cache.save()

    index = ProjectIndex(summaries)

    # Interprocedural DET003 waiver: drop reporting-only clock findings.
    # The live-network package is additionally waived wholesale — it
    # *implements* wall time (WallClock maps time.monotonic() onto
    # shuffling periods; see docs/networking.md), so host-clock reads
    # are its job, and only there.  Both waivers are recorded in
    # ``waived_clock_findings`` so the boundary stays auditable.
    waived = index.waived_clock_lines()
    waived_pairs: List[Tuple[str, int]] = []
    kept: List[Finding] = []
    for finding in findings:
        if finding.rule == "DET003":
            lines = waived.get(finding.path)
            structurally_waived = lines is not None and any(
                line == finding.line for line, _ in lines
            )
            if structurally_waived or _in_wall_clock_boundary(finding.path):
                waived_pairs.append((finding.path, finding.line))
                continue
        kept.append(finding)
    findings = kept

    if tests_root is None:
        candidate = _default_tests_root(paths)
        tests_root = candidate
    context = ProjectRuleContext(
        index=index, tests_root=tests_root, parity_pairs=parity_pairs
    )
    for rule_class in project_rule_classes:
        for finding in rule_class().run(context):
            table = tables.get(finding.path)
            if table is not None and table.is_suppressed(
                finding.line, finding.rule
            ):
                continue
            findings.append(finding)

    if report_paths is not None:
        wanted = {str(Path(p).resolve()) for p in report_paths}
        findings = [
            finding
            for finding in findings
            if str(Path(finding.path).resolve()) in wanted
        ]
    findings.sort(key=Finding.sort_key)
    return ProjectLintResult(
        findings=findings,
        checked_files=len(files),
        suppression_count=suppression_count,
        waived_clock_findings=tuple(sorted(set(waived_pairs))),
    )


def _default_tests_root(paths: Sequence[str]) -> Optional[str]:
    """A ``tests`` directory adjacent to the linted tree, if any."""
    for raw in paths:
        base = Path(raw).resolve()
        for anchor in (base, base.parent):
            candidate = anchor / "tests"
            if candidate.is_dir():
                return str(candidate)
    return None

