"""The lint engine: file discovery, parsing, rule dispatch, filtering.

:func:`lint_paths` is the programmatic entry point::

    from repro.lint import lint_paths
    result = lint_paths(["src"])
    for finding in result.findings:
        print(finding.format_text())

The engine is deliberately framework-free: plain :mod:`ast` parsing, a
rule registry (:mod:`repro.lint.rules`), and suppression comments
(:mod:`repro.lint.suppressions`).  Rules never see files they declared
themselves out of via :meth:`Rule.applies_to_path`, and findings on
suppressed (line, rule) pairs are dropped before reporting.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type

from ..errors import ReproError
from .findings import Finding
from .rules import RULES, Rule
from .suppressions import parse_suppressions

__all__ = ["LintError", "LintResult", "lint_paths", "lint_source", "select_rules"]

#: Pseudo-rule code for files the parser rejects.  Not in the registry
#: (it cannot be disabled or selected) but it shares the finding model.
PARSE_ERROR_CODE = "LINT000"


class LintError(ReproError):
    """Invalid lint invocation (unknown rule, missing path)."""


@dataclasses.dataclass(frozen=True)
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    checked_files: int

    @property
    def ok(self) -> bool:
        """Whether the run produced no findings."""
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        """Map of rule code to number of findings."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def select_rules(codes: Optional[Iterable[str]] = None) -> List[Type[Rule]]:
    """Resolve rule codes to rule classes (all registered when None)."""
    if codes is None:
        return [RULES[code] for code in sorted(RULES)]
    selected: List[Type[Rule]] = []
    for code in codes:
        normalized = code.strip().upper()
        if not normalized:
            continue
        if normalized not in RULES:
            raise LintError(
                f"unknown rule {normalized!r} (known: {', '.join(sorted(RULES))})"
            )
        selected.append(RULES[normalized])
    if not selected:
        raise LintError("no rules selected")
    return selected


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Lint one in-memory source buffer; returns sorted findings."""
    rule_classes = list(rules) if rules is not None else select_rules(None)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1) - 1,
                rule=PARSE_ERROR_CODE,
                message=f"file does not parse: {error.msg}",
            )
        ]

    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for rule_class in rule_classes:
        if not rule_class.applies_to_path(path):
            continue
        findings.extend(rule_class(path, tree).run())
    findings = [
        finding
        for finding in findings
        if not suppressions.is_suppressed(finding.line, finding.rule)
    ]
    findings.sort(key=Finding.sort_key)
    return findings


def _discover(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"no such file or directory: {raw}")
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while preserving the sorted-per-argument order.
    seen = set()
    unique: List[Path] = []
    for candidate in files:
        key = candidate.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(candidate)
    return unique


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint files and directories; returns findings plus file count.

    Parameters
    ----------
    paths:
        Files or directories; directories are walked recursively for
        ``*.py`` (hidden directories skipped).
    rules:
        Optional rule codes to run (default: every registered rule).

    Raises
    ------
    LintError
        For unknown rule codes or nonexistent paths.
    """
    rule_classes = select_rules(rules)
    findings: List[Finding] = []
    files = _discover(paths)
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file_path), rule_classes))
    findings.sort(key=Finding.sort_key)
    return LintResult(findings=findings, checked_files=len(files))
