"""On-disk result cache keyed by file content hash.

One JSON file (default ``.lint-cache.json`` next to the baseline)
holds, per linted file: the source's SHA-256, the per-file findings,
the serialized :class:`~repro.lint.summaries.ModuleSummary`, and the
suppression table.  An unchanged file costs one hash on the next run —
its cached summary still feeds the project-wide pass, which is what
makes ``repro lint --changed`` sound: the whole-program analysis sees
every file even when only a handful were re-parsed.

Entries are invalidated wholesale when the cache schema, the summary
schema (:data:`~repro.lint.summaries.SUMMARY_VERSION`), or the set of
registered rules changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .findings import Finding
from .summaries import SUMMARY_VERSION, ModuleSummary
from .suppressions import SuppressionTable

__all__ = ["CACHE_VERSION", "ResultCache", "content_hash"]

CACHE_VERSION = 1


def content_hash(source: str) -> str:
    """SHA-256 of a source buffer (the cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _rules_signature() -> str:
    """Identity of the active rule set; any change invalidates entries."""
    from .project import PROJECT_RULES
    from .rules import RULES

    return ",".join(sorted(RULES) + sorted(PROJECT_RULES))


class ResultCache:
    """Load/store per-file lint results keyed by content hash."""

    def __init__(self, cache_path: str) -> None:
        self.cache_path = cache_path
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._dirty = False
        self._signature = _rules_signature()
        self._load()

    def _load(self) -> None:
        path = Path(self.cache_path)
        if not path.is_file():
            return
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return
        if (
            document.get("version") != CACHE_VERSION
            or document.get("summary_version") != SUMMARY_VERSION
            or document.get("rules") != self._signature
        ):
            return
        entries = document.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(
        self, path: str, digest: str
    ) -> Optional[Tuple[List[Finding], ModuleSummary, SuppressionTable]]:
        """Cached (findings, summary, suppressions) for an unchanged file."""
        entry = self._entries.get(self._key(path))
        if entry is None or entry.get("hash") != digest:
            return None
        try:
            findings = [
                Finding(**raw) for raw in entry.get("findings", ())
            ]
            summary = ModuleSummary.from_dict(entry["summary"])
            suppressions = SuppressionTable.from_dict(
                entry.get("suppressions", {})
            )
        except (KeyError, TypeError, ValueError):
            return None
        return findings, summary, suppressions

    def put(
        self,
        path: str,
        digest: str,
        findings: List[Finding],
        summary: ModuleSummary,
        suppressions: SuppressionTable,
    ) -> None:
        self._entries[self._key(path)] = {
            "hash": digest,
            "findings": [finding.to_dict() for finding in findings],
            "summary": summary.to_dict(),
            "suppressions": suppressions.to_dict(),
        }
        self._dirty = True

    @staticmethod
    def _key(path: str) -> str:
        return str(Path(path).resolve())

    def save(self) -> None:
        """Atomically persist the cache when anything changed."""
        if not self._dirty:
            return
        document = {
            "version": CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "rules": self._signature,
            "entries": self._entries,
        }
        path = Path(self.cache_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(document, stream)
            os.replace(temp_name, str(path))
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
        self._dirty = False
