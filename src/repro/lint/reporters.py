"""Finding reporters: plain text and JSON.

The JSON schema (version 1)::

    {
      "version": 1,
      "checked_files": 74,
      "counts": {"DET001": 2},
      "findings": [
        {"path": "...", "line": 10, "column": 4,
         "rule": "DET001", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from .engine import LintResult
from .rules import RULES

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "render_rule_catalog",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
]

JSON_SCHEMA_VERSION = 1
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """One line per finding plus a summary line."""
    lines = [finding.format_text() for finding in result.findings]
    if result.findings:
        counts = ", ".join(
            f"{rule} x{count}" for rule, count in result.counts_by_rule().items()
        )
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"in {result.checked_files} files ({counts})"
        )
    else:
        lines.append(f"{result.checked_files} files clean")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The versioned JSON document described in the module docstring."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "checked_files": result.checked_files,
        "counts": result.counts_by_rule(),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _all_rules():
    """Per-file plus project rules, by code (for catalogs and SARIF)."""
    from .engine import _ensure_project_rules
    from .project import PROJECT_RULES

    _ensure_project_rules()
    merged = dict(RULES)
    merged.update(PROJECT_RULES)
    return merged


def render_sarif(result: LintResult) -> str:
    """Findings as a SARIF 2.1.0 log (CI PR-annotation format).

    Paths become relative ``artifactLocation`` URIs when they sit under
    the current working directory, absolute ``file://`` URIs otherwise.
    """
    rules = _all_rules()
    used_codes = sorted({finding.rule for finding in result.findings})
    driver_rules = []
    for code in used_codes:
        rule = rules.get(code)
        descriptor = {
            "id": code,
            "shortDescription": {
                "text": getattr(rule, "name", code) if rule else code
            },
        }
        if rule is not None and getattr(rule, "rationale", ""):
            descriptor["fullDescription"] = {"text": rule.rationale}
        driver_rules.append(descriptor)

    cwd = Path.cwd().resolve()

    def uri_for(path: str) -> str:
        resolved = Path(path).resolve()
        try:
            return resolved.relative_to(cwd).as_posix()
        except ValueError:
            return resolved.as_uri()

    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri_for(finding.path)},
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": max(1, finding.column + 1),
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    document = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/linting"
                        ),
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """Human-readable list of registered rules (``--list-rules``)."""
    lines = []
    rules = _all_rules()
    for code in sorted(rules):
        rule = rules[code]
        lines.append(f"{code}  {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)
