"""Finding reporters: plain text and JSON.

The JSON schema (version 1)::

    {
      "version": 1,
      "checked_files": 74,
      "counts": {"DET001": 2},
      "findings": [
        {"path": "...", "line": 10, "column": 4,
         "rule": "DET001", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json

from .engine import LintResult
from .rules import RULES

__all__ = ["render_text", "render_json", "render_rule_catalog", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """One line per finding plus a summary line."""
    lines = [finding.format_text() for finding in result.findings]
    if result.findings:
        counts = ", ".join(
            f"{rule} x{count}" for rule, count in result.counts_by_rule().items()
        )
        lines.append(
            f"{len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"in {result.checked_files} files ({counts})"
        )
    else:
        lines.append(f"{result.checked_files} files clean")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The versioned JSON document described in the module docstring."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "checked_files": result.checked_files,
        "counts": result.counts_by_rule(),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """Human-readable list of registered rules (``--list-rules``)."""
    lines = []
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"{code}  {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)
