"""Finding model shared by the lint engine, rules, and reporters.

A :class:`Finding` is one rule violation at one source location.  The
model is deliberately tiny and immutable so reporters can sort, group,
and serialize findings without touching the engine.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

__all__ = ["Finding"]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    path:
        Path of the offending file, as given to the engine (kept
        relative when the input was relative, so output is stable across
        machines).
    line, column:
        1-based line and 0-based column of the offending node.
    rule:
        Rule code, e.g. ``"DET001"``.
    message:
        Human-readable description of the specific violation.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    def sort_key(self) -> tuple:
        """Stable ordering: by file, then position, then rule."""
        return (self.path, self.line, self.column, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (the reporter schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }

    def format_text(self) -> str:
        """The classic ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
