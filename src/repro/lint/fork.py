"""FORK rules: a static race detector for forked worker tasks.

:mod:`repro.parallel` forks worker processes; each worker gets a
copy-on-write snapshot of the parent and sends results back over a
pipe.  Three things go wrong silently in that model:

* a worker writes to a module global or class attribute — the write
  lands in the *child's* copy, the parent never sees it, and a later
  serial run (which does see it) diverges from the parallel run;
* the task callable closes over a live simulator/overlay object —
  each worker mutates its own copy and the parent's object silently
  stays stale (or worse, the callable only works by accident of fork
  inheritance and breaks under spawn);
* task payloads that cannot be pickled — results and retried payloads
  cross a pipe, so a lambda or generator in the task arguments dies at
  runtime on the first retry.

Worker entry points are found three ways (see
:meth:`repro.lint.project.ProjectIndex.worker_entries`): the
``_*_task`` / ``_worker_main`` naming convention, an explicit
``# lint: fork-entry`` marker comment on the def, and callables passed
to the pool APIs (``parallel_map``/``run_tasks``/sweep runners),
through one level of forwarding.

The guarded-memoization idiom (read ``X.get(k)``/``k in X`` before a
keyed ``X[k] = v`` store) is waived: a deterministic per-process memo
cache computes the same values in every process, so per-copy writes
are harmless.
"""

from __future__ import annotations

from typing import List

from .findings import Finding
from .project import ProjectRule, ProjectRuleContext, register_project_rule

__all__ = ["Fork001", "Fork002", "Fork003", "Fork004"]

#: Constructor-name fragments marking heavyweight stateful objects a
#: worker closure must not capture from the parent scope.
_HEAVY_CTOR_MARKERS = (
    "Simulator",
    "Overlay",
    "Engine",
    "MixNetwork",
    "Network",
    "LinkLayer",
)

#: Keyword names under which task payloads are passed to pool APIs.
_ITEM_KEYWORDS = frozenset({"items", "tasks", "specs", "configs"})


def _entry_note(entry: str) -> str:
    return f" (reachable from worker entry {entry})"


@register_project_rule
class Fork001(ProjectRule):
    code = "FORK001"
    name = "worker-writes-module-global"
    rationale = (
        "A forked worker's write to a module global lands in the child's "
        "copy-on-write snapshot only; serial and parallel runs diverge."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        findings: List[Finding] = []
        reachable = context.index.worker_reachable()
        for qualname, entry in sorted(reachable.items()):
            summary = context.index.functions[qualname]
            for write in summary.global_writes:
                if write.kind == "class_attr":
                    continue  # Fork002's business
                if write.memo_guarded:
                    continue
                findings.append(
                    self.finding(
                        summary.path,
                        write.line,
                        f"{summary.qualname} {self._verb(write.kind)} module "
                        f"global '{write.target}'{_entry_note(entry)}; "
                        "workers only mutate their own copy — return the "
                        "value instead",
                    )
                )
        return findings

    @staticmethod
    def _verb(kind: str) -> str:
        return {
            "rebind": "rebinds",
            "store": "stores into",
            "mutate": "mutates",
            "setattr": "sets an attribute on",
        }.get(kind, "writes")


@register_project_rule
class Fork002(ProjectRule):
    code = "FORK002"
    name = "worker-writes-class-attribute"
    rationale = (
        "Class-level attributes are shared state; a worker writing one "
        "mutates only its process-local copy of the class."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        findings: List[Finding] = []
        reachable = context.index.worker_reachable()
        for qualname, entry in sorted(reachable.items()):
            summary = context.index.functions[qualname]
            for write in summary.global_writes:
                if write.kind != "class_attr":
                    continue
                findings.append(
                    self.finding(
                        summary.path,
                        write.line,
                        f"{summary.qualname} writes class attribute "
                        f"'{write.target}'{_entry_note(entry)}; move the "
                        "state onto the instance or return it",
                    )
                )
        return findings


@register_project_rule
class Fork003(ProjectRule):
    code = "FORK003"
    name = "worker-closure-captures-live-object"
    rationale = (
        "A task callable closing over a live simulator/overlay object "
        "mutates a per-worker copy; the parent's object silently keeps "
        "its pre-fork state."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        findings: List[Finding] = []
        index = context.index
        for summary in index.functions.values():
            for call in summary.calls:
                runner_slots = self._runner_slots(index, summary, call)
                if not runner_slots:
                    continue
                for slot, shape in call.callable_args:
                    if slot not in runner_slots:
                        continue
                    if shape == "lambda":
                        findings.append(
                            self.finding(
                                summary.path,
                                call.line,
                                f"{summary.qualname} passes a lambda as a "
                                "worker task; use a module-level function "
                                "so retries can repickle it",
                            )
                        )
                        continue
                    if not shape.startswith("name:"):
                        continue
                    runner = index.resolve_call(
                        summary, "name", shape.split(":", 1)[1], None
                    )
                    if runner is None:
                        continue
                    runner_summary = index.functions[runner]
                    for name, ctor in runner_summary.capture_ctors:
                        if any(m in ctor for m in _HEAVY_CTOR_MARKERS):
                            findings.append(
                                self.finding(
                                    runner_summary.path,
                                    runner_summary.line,
                                    f"worker task {runner_summary.qualname} "
                                    f"captures '{name}' (a {ctor}) from its "
                                    "enclosing scope; pass state through "
                                    "the task payload instead",
                                )
                            )
        return findings

    @staticmethod
    def _runner_slots(index, summary, call) -> set:
        slots = set()
        runner_pos = index._pool_runner_slot(call.target, call.dotted)
        if runner_pos is not None:
            slots.add(str(runner_pos))
            slots.update({"func", "runner", "experiment"})
        return slots


@register_project_rule
class Fork004(ProjectRule):
    code = "FORK004"
    name = "unpicklable-task-payload"
    rationale = (
        "Task payloads cross a pipe on retry and result transport; "
        "lambdas and generator expressions cannot be pickled."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        findings: List[Finding] = []
        index = context.index
        for summary in index.functions.values():
            for call in summary.calls:
                runner_pos = index._pool_runner_slot(call.target, call.dotted)
                if runner_pos is None:
                    continue
                item_slots = {str(runner_pos + 1)} | _ITEM_KEYWORDS
                for slot, shape in call.callable_args:
                    if slot in item_slots and shape in ("lambda", "genexp"):
                        findings.append(
                            self.finding(
                                summary.path,
                                call.line,
                                f"{summary.qualname} passes a {shape} as "
                                "the task payload; materialize a list of "
                                "picklable items first",
                            )
                        )
        return findings
