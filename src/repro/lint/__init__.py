"""repro.lint — determinism & simulation-hygiene static analysis.

The paper's figures are reproducible only if every random draw flows
from a single root seed and every timestamp comes from the simulator.
This package machine-checks those conventions over the source tree:

* an :mod:`ast`-visitor engine with a rule registry
  (:mod:`repro.lint.rules`),
* ``# lint: disable=RULE`` / ``# lint: disable-file=RULE`` suppression
  comments (:mod:`repro.lint.suppressions`),
* text and JSON reporters (:mod:`repro.lint.reporters`),
* a CLI: ``repro lint [paths]``, ``python -m repro.lint``, or the
  ``repro-lint`` console script.

See ``docs/linting.md`` for the rule catalog and rationale.
"""

from .engine import LintError, LintResult, lint_paths, lint_source, select_rules
from .findings import Finding
from .reporters import (
    JSON_SCHEMA_VERSION,
    render_json,
    render_rule_catalog,
    render_text,
)
from .rules import RULES, Rule, register, rule_codes

__all__ = [
    "Finding",
    "LintError",
    "LintResult",
    "lint_paths",
    "lint_source",
    "select_rules",
    "Rule",
    "RULES",
    "register",
    "rule_codes",
    "render_text",
    "render_json",
    "render_rule_catalog",
    "JSON_SCHEMA_VERSION",
]
