"""repro.lint — determinism & simulation-hygiene static analysis.

The paper's figures are reproducible only if every random draw flows
from a single root seed and every timestamp comes from the simulator.
This package machine-checks those conventions over the source tree:

* an :mod:`ast`-visitor engine with a per-file rule registry
  (:mod:`repro.lint.rules`),
* a whole-program pass (:func:`lint_project`): per-function summaries
  (:mod:`repro.lint.summaries`) assembled into a call-graph index
  (:mod:`repro.lint.project`) feeding the interprocedural FLOW (RNG
  provenance), FORK (fork-safety races), and PAR (fast/legacy parity)
  rule families,
* a findings baseline/ratchet (:mod:`repro.lint.baseline`) and a
  content-hash result cache (:mod:`repro.lint.cache`),
* ``# lint: disable=RULE`` / ``# lint: disable-file=RULE`` suppression
  comments (:mod:`repro.lint.suppressions`),
* text, JSON, and SARIF reporters (:mod:`repro.lint.reporters`),
* a CLI: ``repro lint [paths]``, ``python -m repro.lint``, or the
  ``repro-lint`` console script.

See ``docs/linting.md`` for the rule catalog and rationale.
"""

from .engine import (
    LintError,
    LintResult,
    ProjectLintResult,
    lint_paths,
    lint_project,
    lint_source,
    select_rules,
)
from .findings import Finding
from .reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_rule_catalog,
    render_sarif,
    render_text,
)
from .rules import RULES, Rule, register, rule_codes

__all__ = [
    "Finding",
    "LintError",
    "LintResult",
    "ProjectLintResult",
    "lint_paths",
    "lint_project",
    "lint_source",
    "select_rules",
    "Rule",
    "RULES",
    "register",
    "rule_codes",
    "render_text",
    "render_json",
    "render_sarif",
    "render_rule_catalog",
    "JSON_SCHEMA_VERSION",
    "SARIF_VERSION",
]
