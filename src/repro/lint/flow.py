"""FLOW rules: RNG provenance across call edges.

Single-root-seed determinism requires every random draw in the library
to derive from the experiment's :class:`repro.rng.RandomStreams` (or
the deterministic :func:`repro.rng.fallback_rng`).  The per-file rules
catch unseeded generators at the creation site; these project rules
catch the *plumbing* failures a file-local view cannot see:

* FLOW001 — a generator built from a hardcoded literal seed inside
  library code.  The draw is reproducible but deaf to the root seed:
  two experiments with different seeds share it, and sweep points
  collapse onto one stream.
* FLOW002 — a function that *received* RNG provenance calls a project
  function that *accepts* RNG provenance without passing any of it.
  The callee silently falls back (or worse, creates its own), so the
  caller's stream never reaches the draws it thinks it controls — the
  fallback-RNG footgun, caught statically.
* FLOW003 — a public API transitively reaches hidden-global RNG state
  (``numpy.random.*`` module functions or the stdlib ``random``
  module).  The finding names the call chain, so the offending edge is
  visible even when the draw lives modules away.
"""

from __future__ import annotations

from typing import List

from .findings import Finding
from .project import ProjectRule, ProjectRuleContext, register_project_rule
from .summaries import FunctionSummary

__all__ = ["Flow001", "Flow002", "Flow003"]

#: Modules allowed to construct generators from constants: the RNG
#: subsystem itself (fallback_rng derives from DEFAULT_SEED by design).
_SANCTIONED_MODULES = frozenset({"repro.rng", "repro.config"})


@register_project_rule
class Flow001(ProjectRule):
    code = "FLOW001"
    name = "hardcoded-seed-generator"
    rationale = (
        "A generator seeded from a literal constant ignores the "
        "experiment's root seed: derive substreams from a RandomStreams "
        "parameter or repro.rng.fallback_rng instead."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for summary in context.index.functions.values():
            if summary.module in _SANCTIONED_MODULES:
                continue
            for creation in summary.rng_creations:
                if creation.kind in ("default_rng", "streams") and (
                    creation.seeded_from == "literal"
                ):
                    findings.append(
                        self.finding(
                            summary.path,
                            creation.line,
                            f"{summary.qualname} builds a generator from a "
                            "hardcoded seed; derive it from a RandomStreams "
                            "parameter or fallback_rng so the root seed "
                            "reaches these draws",
                        )
                    )
        return findings


@register_project_rule
class Flow002(ProjectRule):
    code = "FLOW002"
    name = "rng-not-threaded"
    rationale = (
        "A caller holding RNG provenance must pass it to callees that "
        "accept it; dropping it on the floor silently decouples the "
        "callee's draws from the experiment seed."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        findings: List[Finding] = []
        for summary in context.index.functions.values():
            if not summary.rng_params:
                continue
            for call in summary.calls:
                if call.rng_arg:
                    continue  # some rng-like value is already passed
                callee_name = context.index.resolve_call(
                    summary, call.kind, call.target, call.dotted
                )
                if callee_name is None:
                    continue
                callee = context.index.functions[callee_name]
                if not self._rng_slot_open(call, callee):
                    continue
                findings.append(
                    self.finding(
                        summary.path,
                        call.line,
                        f"{summary.qualname} holds rng provenance "
                        f"({', '.join(summary.rng_params)}) but calls "
                        f"{callee.qualname} without passing any; the callee "
                        "will fall back to its own stream",
                    )
                )
        return findings

    @staticmethod
    def _rng_slot_open(call, callee: FunctionSummary) -> bool:
        """Whether the callee accepts rng and the call leaves it unfilled."""
        if not callee.rng_params:
            return False
        if any(kw in callee.rng_params for kw in call.keywords):
            return False
        # Positional coverage: an rng slot filled positionally would set
        # rng_arg at the call site; with rng_arg False a covered slot
        # means some non-rng value landed there — still worth flagging —
        # but an *uncovered* optional slot is the classic silent drop.
        # Methods consume one leading slot for self.
        offset = 1 if callee.class_name is not None else 0
        open_slots = [
            index
            for index in callee.rng_param_indexes
            if index - offset >= call.num_pos
        ]
        return bool(open_slots) or not callee.rng_param_indexes
        # (keyword-only rng params: no indexes, still an open slot)


@register_project_rule
class Flow003(ProjectRule):
    code = "FLOW003"
    name = "public-api-reaches-global-rng"
    rationale = (
        "Hidden-global RNG state (numpy.random module functions, stdlib "
        "random) is invisible to seed threading and shared across the "
        "process; public APIs must not reach it on any call path."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        index = context.index
        offenders = {
            qualname
            for qualname, summary in index.functions.items()
            if summary.uses_global_rng()
        }
        if not offenders:
            return []
        findings: List[Finding] = []
        for qualname, summary in index.functions.items():
            if not summary.is_public:
                continue
            for offender in sorted(offenders):
                chain = index.call_path(qualname, offender)
                if chain is None:
                    continue
                rendered = " -> ".join(chain)
                findings.append(
                    self.finding(
                        summary.path,
                        summary.line,
                        f"public API {summary.qualname} reaches global RNG "
                        f"state via {rendered}; thread an explicit generator "
                        "instead",
                    )
                )
                break  # one chain per public function is enough
        return findings
