"""Findings baseline: freeze what exists, fail on anything new.

The ratchet contract (``repro lint --baseline write|check``):

* **write** records every current finding as a fingerprint —
  ``sha256(relative-path :: rule :: message)`` — with a per-fingerprint
  count, plus the total and the number of live suppression comments.
* **check** fails (exit 1) when a finding appears whose fingerprint is
  absent from the baseline, or whose count exceeds the frozen count.
  Findings that *disappeared* never fail the check; the run reports
  them so the baseline can be rewritten smaller.  The count only goes
  down.

Fingerprints deliberately exclude line numbers: moving code around
must not churn the baseline.  Paths are stored relative to the
baseline file's directory so CI (relative paths) and tests (absolute
tmp paths) agree.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Sequence

from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "BaselineReport",
    "fingerprint",
    "write_baseline",
    "check_baseline",
]

BASELINE_VERSION = 1


class BaselineError(Exception):
    """Missing or malformed baseline file."""


def _relative_path(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(root).as_posix()
    except ValueError:
        return Path(path).as_posix()


def fingerprint(finding: Finding, root: Path) -> str:
    """Stable identity of a finding, independent of line numbers."""
    relative = _relative_path(finding.path, root)
    text = f"{relative}::{finding.rule}::{finding.message}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def _counts(findings: Sequence[Finding], root: Path) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding, root)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(
    findings: Sequence[Finding],
    baseline_path: str,
    suppression_count: int = 0,
) -> Dict[str, object]:
    """Freeze the current findings into ``baseline_path``."""
    root = Path(baseline_path).resolve().parent
    document = {
        "version": BASELINE_VERSION,
        "total": len(findings),
        "suppressions": suppression_count,
        "fingerprints": dict(sorted(_counts(findings, root).items())),
    }
    path = Path(baseline_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


@dataclasses.dataclass(frozen=True)
class BaselineReport:
    """Outcome of a ratchet check."""

    #: Findings absent from (or exceeding their count in) the baseline.
    new_findings: List[Finding]
    #: Number of baselined findings that no longer occur.
    fixed_count: int
    baseline_total: int
    current_total: int

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def summary(self) -> str:
        parts = [
            f"baseline: {self.baseline_total} frozen, "
            f"{self.current_total} current",
        ]
        if self.new_findings:
            parts.append(f"{len(self.new_findings)} NEW")
        if self.fixed_count:
            parts.append(
                f"{self.fixed_count} fixed — rewrite the baseline to "
                "ratchet down"
            )
        return ", ".join(parts)


def check_baseline(
    findings: Sequence[Finding], baseline_path: str
) -> BaselineReport:
    """Compare findings against a frozen baseline."""
    path = Path(baseline_path)
    if not path.is_file():
        raise BaselineError(
            f"no baseline at {baseline_path}; create one with "
            "--baseline write"
        )
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise BaselineError(f"unreadable baseline {baseline_path}: {error}")
    if document.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {baseline_path} has version "
            f"{document.get('version')!r}, expected {BASELINE_VERSION}; "
            "rewrite it with --baseline write"
        )
    frozen: Dict[str, int] = dict(document.get("fingerprints", {}))
    root = path.resolve().parent
    seen: Dict[str, int] = {}
    new_findings: List[Finding] = []
    for finding in sorted(findings, key=Finding.sort_key):
        key = fingerprint(finding, root)
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > frozen.get(key, 0):
            new_findings.append(finding)
    fixed = sum(
        max(0, count - seen.get(key, 0)) for key, count in frozen.items()
    )
    return BaselineReport(
        new_findings=new_findings,
        fixed_count=fixed,
        baseline_total=int(document.get("total", sum(frozen.values()))),
        current_total=len(findings),
    )
