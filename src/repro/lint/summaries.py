"""Per-file analysis summaries for the whole-program lint pass.

The project-wide rules (:mod:`repro.lint.flow`, :mod:`repro.lint.fork`,
:mod:`repro.lint.parity`) never touch raw ASTs: everything they need is
extracted here, once per file, into plain serializable
:class:`ModuleSummary` / :class:`FunctionSummary` records.  That split
is what makes the incremental cache (:mod:`repro.lint.cache`) possible —
an unchanged file contributes its cached summary to the project pass
without being re-parsed.

A summary records, per function (including methods and nested
functions):

* every call site, with a best-effort local resolution (bare name,
  dotted attribute chain through import aliases, ``self.method``) left
  for :mod:`repro.lint.project` to resolve across modules;
* RNG provenance facts: which parameters look like generators or
  :class:`repro.rng.RandomStreams`, and every generator *creation*
  with how it was seeded (literal constant, parameter, other name,
  unseeded);
* host-clock reads, plus a local **reporting-only** classification of
  each read (see :class:`ClockVerdict`) that the project pass upgrades
  to an interprocedural waiver;
* writes to module-level globals and class-level attributes, the raw
  material of the FORK race rules;
* closure captures and the constructor provenance of captured names.

Summaries round-trip through ``to_dict``/``from_dict``; bump
:data:`SUMMARY_VERSION` whenever the schema or extraction logic
changes so stale cache entries are discarded.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import tokenize
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .rules import resolve_imports, qualified_name

__all__ = [
    "SUMMARY_VERSION",
    "CallSite",
    "RngCreation",
    "ClockRead",
    "GlobalWrite",
    "FunctionSummary",
    "ModuleSummary",
    "build_module_summary",
    "module_name_for_path",
    "RNG_PARAM_NAMES",
    "is_rng_param_name",
]

#: Schema/extraction version; cache entries from other versions are stale.
SUMMARY_VERSION = 1

#: Parameter names treated as RNG provenance.
RNG_PARAM_NAMES: FrozenSet[str] = frozenset(
    {"rng", "streams", "random_state", "generator"}
)

#: Annotation fragments treated as RNG provenance.
_RNG_ANNOTATIONS = ("Generator", "RandomStreams")

#: Dotted callables that read the host clock (mirrors rules.DET003).
_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The subset of clock reads eligible for the reporting-only waiver:
#: interval clocks used for wall-time measurement.  Absolute time
#: (``time.time``, ``datetime``) is never waived.
WAIVABLE_CLOCKS: FrozenSet[str] = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)

#: Dotted names whose call creates a numpy generator.
_GENERATOR_CTORS: FrozenSet[str] = frozenset(
    {"numpy.random.default_rng", "numpy.random.RandomState"}
)

#: Dotted names that are the sanctioned deterministic fallback.
_FALLBACK_NAMES: FrozenSet[str] = frozenset(
    {"repro.rng.fallback_rng", "rng.fallback_rng"}
)

#: Dotted names naming the stream factory class.
_STREAMS_NAMES: FrozenSet[str] = frozenset(
    {"repro.rng.RandomStreams", "rng.RandomStreams"}
)

#: Module-level numpy convenience API (hidden global RandomState) and
#: the stdlib random module: "global" RNG state uses.
_NP_GLOBAL_PREFIX = "numpy.random."
_NP_GLOBAL_FUNCS: FrozenSet[str] = frozenset(
    f"numpy.random.{name}"
    for name in (
        "random", "rand", "randn", "randint", "random_sample",
        "random_integers", "ranf", "sample", "choice", "shuffle",
        "permutation", "seed", "normal", "uniform", "standard_normal",
        "exponential", "poisson", "binomial", "beta", "gamma", "bytes",
    )
)

#: Builtins through which a clock-derived value may flow while staying
#: "reporting-only" (pure arithmetic/formatting helpers).
_REPORTING_BUILTINS: FrozenSet[str] = frozenset(
    {
        "print", "format", "repr", "str", "float", "int", "round",
        "abs", "min", "max", "sum", "len", "sorted", "list", "tuple",
        "dict", "set",
    }
)

#: Mutating container-method names; calling one on a shared object is a
#: write for FORK purposes, and on a local taints the receiver.
_MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "append", "extend", "insert", "add", "update", "clear", "pop",
        "popleft", "popitem", "remove", "discard", "setdefault",
        "appendleft",
    }
)

#: Keyword-argument names under which a timing value may be handed to
#: any callee (the record-constructor escape hatch).
_REPORTING_KEYWORDS = (
    "wall", "elapsed", "duration", "seconds", "timing", "latency",
    "time_s", "_s", "took",
)

#: Method names through which a timing value may leave the function
#: without breaking determinism: container mutation on locals (tracked
#: by the taint pass), string formatting, stream/log writes.
_SINK_METHODS: FrozenSet[str] = _MUTATOR_METHODS | frozenset(
    {"format", "join", "write", "info", "debug", "warning", "error", "log",
     "get"}
)

#: Marker comment declaring a function a worker entry point.
FORK_ENTRY_MARKER = "lint: fork-entry"


def is_rng_param_name(name: str) -> bool:
    """Whether a parameter name denotes RNG provenance."""
    lowered = name.lower()
    return (
        lowered in RNG_PARAM_NAMES
        or lowered.endswith("_rng")
        or lowered.endswith("_streams")
    )


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a file path.

    Walks up through directories containing ``__init__.py`` so
    ``.../src/repro/graphs/metrics.py`` maps to
    ``repro.graphs.metrics`` regardless of where the tree is checked
    out.  A file outside any package maps to its stem.
    """
    import pathlib

    file_path = pathlib.Path(path)
    parts = [file_path.stem] if file_path.stem != "__init__" else []
    parent = file_path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else file_path.stem


# ----------------------------------------------------------------------
# record types
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    line: int
    #: How the callee was written: ``name`` (bare), ``attr`` (dotted
    #: chain rooted at a name), ``self`` (method on self), ``other``.
    kind: str
    #: The textual target: bare name, dotted chain, or method name.
    target: str
    #: Dotted path through import aliases, when the chain bottoms out
    #: at an import (e.g. ``numpy.random.default_rng``); else None.
    dotted: Optional[str]
    num_pos: int = 0
    keywords: Tuple[str, ...] = ()
    #: Whether any argument expression mentions an rng-like name.
    rng_arg: bool = False
    #: Argument expressions that are lambdas / local function names /
    #: generator expressions, recorded as (slot, shape) where slot is a
    #: 0-based position or a keyword name and shape is one of
    #: ``lambda``, ``genexp``, ``name:<identifier>``.
    callable_args: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        data = dict(data)
        data["keywords"] = tuple(data.get("keywords", ()))
        data["callable_args"] = tuple(
            tuple(item) for item in data.get("callable_args", ())
        )
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class RngCreation:
    """One generator-creating expression."""

    line: int
    #: ``default_rng`` | ``streams`` | ``fallback`` | ``global_api``.
    kind: str
    #: How it was seeded: ``literal`` | ``param`` | ``name`` | ``none``.
    seeded_from: str

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RngCreation":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class ClockRead:
    """One host-clock call, with its local waiver classification."""

    line: int
    column: int
    qualified: str
    #: ``waived`` — locally proven reporting-only; ``conditional`` —
    #: reporting-only if every name in ``deps`` resolves to a recorder
    #: function; ``kept`` — the finding stands.
    verdict: str = "kept"
    #: Callee references (local/dotted) the waiver depends on.
    deps: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClockRead":
        data = dict(data)
        data["deps"] = tuple(data.get("deps", ()))
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class GlobalWrite:
    """One write to shared (module- or class-level) state."""

    line: int
    #: ``rebind`` (global X; X = ...), ``store`` (X[k] = v),
    #: ``mutate`` (X.append(...)), ``setattr`` (X.attr = v),
    #: ``class_attr`` (Cls.attr = v / type(self).attr = v).
    kind: str
    #: The shared name written (module global or ``Class.attr``).
    target: str
    #: Whether the write is the guarded-memoization idiom: the function
    #: reads the same global (``X.get(...)`` / ``k in X``) before a
    #: keyed ``store`` into it.  Deterministic per-process memo caches
    #: are fork-safe and not flagged.
    memo_guarded: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GlobalWrite":
        return cls(**data)


@dataclasses.dataclass
class FunctionSummary:
    """Everything the project pass knows about one function."""

    qualname: str
    module: str
    path: str
    line: int
    name: str
    class_name: Optional[str]
    params: Tuple[str, ...]
    rng_params: Tuple[str, ...]
    calls: Tuple[CallSite, ...]
    rng_creations: Tuple[RngCreation, ...]
    clock_reads: Tuple[ClockRead, ...]
    global_writes: Tuple[GlobalWrite, ...]
    #: Free names referencing enclosing function scopes (captures).
    captures: Tuple[str, ...]
    #: Captured names whose enclosing assignment is ``Name = Ctor(...)``,
    #: as (name, dotted-ctor-reference) pairs.
    capture_ctors: Tuple[Tuple[str, str], ...]
    #: Explicitly marked with ``# lint: fork-entry``.
    fork_entry_marker: bool = False
    #: Index of each rng-like parameter among positional params.
    rng_param_indexes: Tuple[int, ...] = ()

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_") and "<locals>" not in self.qualname

    @property
    def is_fork_entry_name(self) -> bool:
        """Name-convention worker entries: ``_*_task`` / ``_worker_main``."""
        return (
            self.name == "_worker_main"
            or (self.name.startswith("_") and self.name.endswith("_task"))
        )

    def uses_global_rng(self) -> bool:
        """Whether this function touches hidden-global RNG state."""
        return any(c.kind == "global_api" for c in self.rng_creations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "name": self.name,
            "class_name": self.class_name,
            "params": list(self.params),
            "rng_params": list(self.rng_params),
            "calls": [c.to_dict() for c in self.calls],
            "rng_creations": [c.to_dict() for c in self.rng_creations],
            "clock_reads": [c.to_dict() for c in self.clock_reads],
            "global_writes": [w.to_dict() for w in self.global_writes],
            "captures": list(self.captures),
            "capture_ctors": [list(p) for p in self.capture_ctors],
            "fork_entry_marker": self.fork_entry_marker,
            "rng_param_indexes": list(self.rng_param_indexes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            module=data["module"],
            path=data["path"],
            line=data["line"],
            name=data["name"],
            class_name=data.get("class_name"),
            params=tuple(data.get("params", ())),
            rng_params=tuple(data.get("rng_params", ())),
            calls=tuple(CallSite.from_dict(c) for c in data.get("calls", ())),
            rng_creations=tuple(
                RngCreation.from_dict(c) for c in data.get("rng_creations", ())
            ),
            clock_reads=tuple(
                ClockRead.from_dict(c) for c in data.get("clock_reads", ())
            ),
            global_writes=tuple(
                GlobalWrite.from_dict(w) for w in data.get("global_writes", ())
            ),
            captures=tuple(data.get("captures", ())),
            capture_ctors=tuple(
                tuple(p) for p in data.get("capture_ctors", ())
            ),
            fork_entry_marker=data.get("fork_entry_marker", False),
            rng_param_indexes=tuple(data.get("rng_param_indexes", ())),
        )


@dataclasses.dataclass
class ModuleSummary:
    """One file's contribution to the project index."""

    module: str
    path: str
    #: Import-alias map (local name -> dotted path).
    aliases: Dict[str, str]
    #: Names assigned at module top level, with mutability flag.
    module_globals: Dict[str, bool]
    #: Class name -> {method names}; used for parity and resolution.
    classes: Dict[str, List[str]]
    #: Class name -> class-level mutable attribute names.
    class_mutable_attrs: Dict[str, List[str]]
    #: Class name -> positional parameter lists of each method, used by
    #: the parity signature check: {class: {method: [params]}}.
    class_signatures: Dict[str, Dict[str, List[str]]]
    functions: Dict[str, FunctionSummary]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "aliases": dict(self.aliases),
            "module_globals": dict(self.module_globals),
            "classes": {k: list(v) for k, v in self.classes.items()},
            "class_mutable_attrs": {
                k: list(v) for k, v in self.class_mutable_attrs.items()
            },
            "class_signatures": {
                cls: {m: list(p) for m, p in methods.items()}
                for cls, methods in self.class_signatures.items()
            },
            "functions": {
                name: summary.to_dict()
                for name, summary in self.functions.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            aliases=dict(data.get("aliases", {})),
            module_globals=dict(data.get("module_globals", {})),
            classes={k: list(v) for k, v in data.get("classes", {}).items()},
            class_mutable_attrs={
                k: list(v)
                for k, v in data.get("class_mutable_attrs", {}).items()
            },
            class_signatures={
                cls: {m: list(p) for m, p in methods.items()}
                for cls, methods in data.get("class_signatures", {}).items()
            },
            functions={
                name: FunctionSummary.from_dict(raw)
                for name, raw in data.get("functions", {}).items()
            },
        )


# ----------------------------------------------------------------------
# extraction helpers
# ----------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


def _positional_params(args: ast.arguments) -> List[ast.arg]:
    return list(args.posonlyargs) + list(args.args)


def _all_params(args: ast.arguments) -> List[ast.arg]:
    params = _positional_params(args) + list(args.kwonlyargs)
    if args.vararg is not None:
        params.append(args.vararg)
    if args.kwarg is not None:
        params.append(args.kwarg)
    return params


def _annotation_mentions_rng(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    text = ast.dump(annotation)
    return any(marker in text for marker in _RNG_ANNOTATIONS)


def _mentions_rng_name(node: ast.AST) -> bool:
    """Whether an expression references an rng-like identifier."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and is_rng_param_name(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and (
            is_rng_param_name(sub.attr) or sub.attr in ("substream", "spawn")
        ):
            return True
        if isinstance(sub, ast.Call):
            callee = sub.func
            attr = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if attr in ("substream", "fallback_rng"):
                return True
    return False


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names bound inside a function body (excluding nested defs)."""
    bound: Set[str] = set()
    for node in _walk_function_body(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bound.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                bound.update(_target_names(comp.target))
    return bound


def _target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.update(_target_names(element))
    elif isinstance(target, ast.Starred):
        names.update(_target_names(target.value))
    return names


def _walk_function_body(func: ast.AST):
    """Walk a function's statements without entering nested functions."""
    from collections import deque

    queue = deque()
    for stmt in getattr(func, "body", []):
        queue.append(stmt)
    while queue:
        node = queue.popleft()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))


def _fork_entry_lines(source: str) -> Set[int]:
    """Line numbers carrying the ``# lint: fork-entry`` marker."""
    lines: Set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT and FORK_ENTRY_MARKER in token.string:
                lines.add(token.start[0])
    except (tokenize.TokenError, IndentationError):
        pass
    return lines


# ----------------------------------------------------------------------
# the extractor
# ----------------------------------------------------------------------


class _FunctionExtractor:
    """Builds one :class:`FunctionSummary` for one function node."""

    def __init__(
        self,
        func: ast.AST,
        qualname: str,
        module: str,
        path: str,
        class_name: Optional[str],
        aliases: Dict[str, str],
        module_globals: Dict[str, bool],
        enclosing_bindings: Dict[str, Optional[str]],
        marker_lines: Set[int],
    ) -> None:
        self.func = func
        self.qualname = qualname
        self.module = module
        self.path = path
        self.class_name = class_name
        self.aliases = aliases
        self.module_globals = module_globals
        #: name -> dotted ctor reference (or None) for names bound in
        #: enclosing function scopes.
        self.enclosing_bindings = enclosing_bindings
        self.marker_lines = marker_lines

    def extract(self) -> FunctionSummary:
        func = self.func
        args = func.args
        positional = [a.arg for a in _positional_params(args)]
        params = tuple(a.arg for a in _all_params(args))
        rng_params = tuple(
            a.arg
            for a in _all_params(args)
            if is_rng_param_name(a.arg) or _annotation_mentions_rng(a.annotation)
        )
        rng_param_indexes = tuple(
            i for i, name in enumerate(positional) if name in rng_params
        )

        locals_bound = _local_bindings(func) | set(params)
        global_decls: Set[str] = set()
        for node in _walk_function_body(func):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)

        calls: List[CallSite] = []
        rng_creations: List[RngCreation] = []
        clock_reads: List[ClockRead] = []
        global_writes: List[GlobalWrite] = []
        reads_of_global: Set[str] = set()
        free_names: Set[str] = set()

        def classify_seed(call: ast.Call) -> str:
            if not call.args and not call.keywords:
                return "none"
            first = call.args[0] if call.args else (
                call.keywords[0].value if call.keywords else None
            )
            if isinstance(first, ast.Constant):
                return "literal"
            if isinstance(first, ast.UnaryOp) and isinstance(
                first.operand, ast.Constant
            ):
                return "literal"
            if isinstance(first, ast.Name):
                if first.id in params:
                    return "param"
                return "name"
            if first is not None and _mentions_rng_name(first):
                return "param"
            return "name"

        for node in _walk_function_body(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in locals_bound and node.id not in global_decls:
                    free_names.add(node.id)
                if node.id in self.module_globals:
                    reads_of_global.add(node.id)
            if isinstance(node, ast.Call):
                self._record_call(
                    node, calls, rng_creations, clock_reads, classify_seed
                )
            self._record_write(
                node, locals_bound, global_decls, global_writes
            )

        # Memo-guard classification: a keyed store into a global the
        # function also *reads* (``X.get``/``in X``) is the standard
        # deterministic memoization idiom.
        guarded_reads = self._memo_read_targets()
        global_writes = [
            dataclasses.replace(
                write,
                memo_guarded=(
                    write.kind == "store" and write.target in guarded_reads
                ),
            )
            for write in global_writes
        ]

        captures = tuple(
            sorted(name for name in free_names if name in self.enclosing_bindings)
        )
        capture_ctors = tuple(
            (name, self.enclosing_bindings[name])
            for name in captures
            if self.enclosing_bindings.get(name)
        )

        header_lines = _header_span(func)
        marker = any(line in self.marker_lines for line in header_lines)

        return FunctionSummary(
            qualname=self.qualname,
            module=self.module,
            path=self.path,
            line=func.lineno,
            name=func.name,
            class_name=self.class_name,
            params=params,
            rng_params=rng_params,
            calls=tuple(calls),
            rng_creations=tuple(rng_creations),
            clock_reads=tuple(clock_reads),
            global_writes=tuple(global_writes),
            captures=captures,
            capture_ctors=capture_ctors,
            fork_entry_marker=marker,
            rng_param_indexes=rng_param_indexes,
        )

    # -- call sites ----------------------------------------------------

    def _record_call(
        self,
        node: ast.Call,
        calls: List[CallSite],
        rng_creations: List[RngCreation],
        clock_reads: List[ClockRead],
        classify_seed,
    ) -> None:
        callee = node.func
        dotted = qualified_name(callee, self.aliases)
        kind = "other"
        target = ""
        if isinstance(callee, ast.Name):
            kind, target = "name", callee.id
        elif isinstance(callee, ast.Attribute):
            parts: List[str] = []
            current: ast.AST = callee
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                if current.id == "self":
                    kind, target = "self", ".".join(reversed(parts))
                else:
                    kind = "attr"
                    target = ".".join([current.id] + list(reversed(parts)))
            else:
                kind, target = "other", callee.attr

        keywords = tuple(kw.arg for kw in node.keywords if kw.arg is not None)
        rng_arg = any(_mentions_rng_name(arg) for arg in node.args) or any(
            _mentions_rng_name(kw.value) for kw in node.keywords
        )
        callable_args: List[Tuple[str, str]] = []
        for slot, arg in list(enumerate(node.args)) + [
            (kw.arg, kw.value) for kw in node.keywords if kw.arg
        ]:
            if isinstance(arg, ast.Lambda):
                callable_args.append((str(slot), "lambda"))
            elif isinstance(arg, ast.GeneratorExp):
                callable_args.append((str(slot), "genexp"))
            elif isinstance(arg, ast.Name):
                callable_args.append((str(slot), f"name:{arg.id}"))

        calls.append(
            CallSite(
                line=node.lineno,
                kind=kind,
                target=target,
                dotted=dotted,
                num_pos=len(node.args),
                keywords=keywords,
                rng_arg=rng_arg,
                callable_args=tuple(callable_args),
            )
        )

        # RNG-creation facts.
        resolved = dotted or target
        if resolved in _GENERATOR_CTORS:
            rng_creations.append(
                RngCreation(node.lineno, "default_rng", classify_seed(node))
            )
        elif resolved in _STREAMS_NAMES or (
            kind == "name" and target == "RandomStreams"
        ):
            rng_creations.append(
                RngCreation(node.lineno, "streams", classify_seed(node))
            )
        elif resolved in _FALLBACK_NAMES or (
            kind == "name" and target == "fallback_rng"
        ):
            rng_creations.append(
                RngCreation(node.lineno, "fallback", "none")
            )
        elif dotted is not None and (
            dotted in _NP_GLOBAL_FUNCS
            or dotted == "random"
            or (dotted.startswith("random.") and not dotted.startswith("random_"))
        ):
            rng_creations.append(
                RngCreation(node.lineno, "global_api", "none")
            )

        if dotted in _CLOCK_CALLS:
            clock_reads.append(
                ClockRead(node.lineno, node.col_offset, dotted)
            )

    # -- shared-state writes -------------------------------------------

    def _record_write(
        self,
        node: ast.AST,
        locals_bound: Set[str],
        global_decls: Set[str],
        out: List[GlobalWrite],
    ) -> None:
        def is_shared_name(name: str) -> bool:
            if name in global_decls:
                return True
            return name in self.module_globals and name not in locals_bound

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and (
                    target.id in global_decls
                ):
                    out.append(GlobalWrite(node.lineno, "rebind", target.id))
                elif isinstance(target, ast.Subscript):
                    base = target.value
                    if isinstance(base, ast.Name) and is_shared_name(base.id):
                        out.append(GlobalWrite(node.lineno, "store", base.id))
                elif isinstance(target, ast.Attribute):
                    base = target.value
                    if isinstance(base, ast.Name) and is_shared_name(base.id):
                        out.append(
                            GlobalWrite(node.lineno, "setattr", base.id)
                        )
                    elif _is_class_ref(base):
                        out.append(
                            GlobalWrite(
                                node.lineno,
                                "class_attr",
                                f"{_class_ref_text(base)}.{target.attr}",
                            )
                        )
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in _MUTATOR_METHODS
            ):
                base = callee.value
                if isinstance(base, ast.Name) and is_shared_name(base.id):
                    out.append(GlobalWrite(node.lineno, "mutate", base.id))

    def _memo_read_targets(self) -> Set[str]:
        """Globals read via ``X.get(...)`` or ``key in X`` in this body."""
        reads: Set[str] = set()
        for node in _walk_function_body(self.func):
            if isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr == "get"
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id in self.module_globals
                ):
                    reads.add(callee.value.id)
            elif isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                        comparator, ast.Name
                    ):
                        if comparator.id in self.module_globals:
                            reads.add(comparator.id)
        return reads


def _is_class_ref(node: ast.AST) -> bool:
    """``self.__class__`` / ``type(self)`` / CapitalizedName receivers."""
    if isinstance(node, ast.Attribute) and node.attr == "__class__":
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "type"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id == "self"
    ):
        return True
    if isinstance(node, ast.Name) and node.id[:1].isupper():
        return True
    return False


def _class_ref_text(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    return "<class>"


def _header_span(func: ast.AST) -> range:
    """Lines of a def's decorators + signature (not the body)."""
    start = func.lineno
    for decorator in getattr(func, "decorator_list", []):
        start = min(start, decorator.lineno)
    body = getattr(func, "body", [])
    end = body[0].lineno - 1 if body else func.lineno
    end = max(end, func.lineno)
    return range(start, end + 1)


# ----------------------------------------------------------------------
# reporting-only clock classification (the DET003 waiver, local half)
# ----------------------------------------------------------------------


class _TaintResult:
    __slots__ = ("verdict", "deps")

    def __init__(self, verdict: str, deps: Sequence[str] = ()) -> None:
        self.verdict = verdict
        self.deps = tuple(sorted(set(deps)))


def _unit_has_waivable_clock(func: ast.AST, aliases: Dict[str, str]) -> bool:
    """Whether a function unit (incl. closures) reads an interval clock."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if qualified_name(node.func, aliases) in WAIVABLE_CLOCKS:
                return True
    return False


def _apply_clock_verdict(
    reads: Tuple[ClockRead, ...], result: "_TaintResult"
) -> Tuple[ClockRead, ...]:
    """Stamp a unit-level taint verdict onto waivable clock reads.

    The analysis treats a top-level function together with all its
    nested functions as one unit (closures share names with their
    enclosing scope): one verdict is computed on the top-level def and
    applied to every waivable read in the unit, nested or not.
    """
    return tuple(
        dataclasses.replace(read, verdict=result.verdict, deps=result.deps)
        if read.qualified in WAIVABLE_CLOCKS
        else read
        for read in reads
    )


class _ClockTaint:
    """Taint analysis over one function unit (top-level def + closures).

    Every value derived from an interval-clock read is tracked through
    local assignments, arithmetic, container appends, and calls to
    nested functions.  The unit is **reporting-only** when tainted
    values never influence control flow (``if``/``while`` tests, loop
    iterables, subscript indices) and only escape through reporting
    sinks: f-strings and ``print``, dict/list/tuple literals, return
    values, timing-named keyword arguments, and calls whose callee the
    project pass confirms to be a pure *recorder* function (the
    ``deps``).
    """

    def __init__(self, func: ast.AST, aliases: Dict[str, str]) -> None:
        self.func = func
        self.aliases = aliases
        self.tainted: Set[str] = set()
        #: nested function name -> per-slot taint of its returns
        #: (True = whole value / slot tainted).
        self.nested_returns: Dict[str, List[bool]] = {}
        self.nested_funcs: Dict[str, ast.AST] = {}
        self.deps: Set[str] = set()
        self.violation = False
        self._collect_nested(func)

    def _collect_nested(self, func: ast.AST) -> None:
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    self.nested_funcs[node.name] = node

    # -- taint sources and propagation ---------------------------------

    def _expr_taint(self, node: ast.AST) -> bool:
        """Whether an expression's value is clock-derived."""
        if isinstance(node, ast.Call):
            dotted = qualified_name(node.func, self.aliases)
            if dotted in WAIVABLE_CLOCKS:
                return True
            if isinstance(node.func, ast.Name):
                name = node.func.id
                if name in self.nested_returns and any(
                    self.nested_returns[name]
                ):
                    return True
            return any(self._expr_taint(arg) for arg in node.args) or any(
                self._expr_taint(kw.value) for kw in node.keywords
            )
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.JoinedStr):
            # Stringifying for display IS the reporting sink; the text
            # that comes out is no longer a timing value.
            return False
        for child in ast.iter_child_nodes(node):
            if self._expr_taint(child):
                return True
        return False

    def _call_slot_taint(self, node: ast.AST) -> Optional[List[bool]]:
        """Per-slot taint for ``a, b = f(...)`` unpacking, if known."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            slots = self.nested_returns.get(node.func.id)
            if slots is not None and len(slots) > 1:
                return slots
        if isinstance(node, ast.Tuple):
            return [self._expr_taint(element) for element in node.elts]
        return None

    def _propagate(self) -> None:
        changed = True
        iterations = 0
        while changed and iterations < 30:
            changed = False
            iterations += 1
            for node in ast.walk(self.func):
                if isinstance(node, ast.Assign):
                    slots = self._call_slot_taint(node.value)
                    for target in node.targets:
                        if (
                            slots is not None
                            and isinstance(target, (ast.Tuple, ast.List))
                            and len(target.elts) == len(slots)
                        ):
                            for element, hot in zip(target.elts, slots):
                                if hot and isinstance(element, ast.Name):
                                    if element.id not in self.tainted:
                                        self.tainted.add(element.id)
                                        changed = True
                        elif self._expr_taint(node.value):
                            for name in _target_names(target):
                                if name not in self.tainted:
                                    self.tainted.add(name)
                                    changed = True
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if node.value is not None and self._expr_taint(node.value):
                        for name in _target_names(node.target):
                            if name not in self.tainted:
                                self.tainted.add(name)
                                changed = True
                elif isinstance(node, ast.Call):
                    # times.append(elapsed) taints the receiver.
                    callee = node.func
                    if (
                        isinstance(callee, ast.Attribute)
                        and callee.attr in _MUTATOR_METHODS
                        and isinstance(callee.value, ast.Name)
                        and any(self._expr_taint(arg) for arg in node.args)
                    ):
                        if callee.value.id not in self.tainted:
                            self.tainted.add(callee.value.id)
                            changed = True
                    # f(tainted) taints f's matching parameter when f is
                    # a nested function in this unit.
                    if isinstance(callee, ast.Name):
                        nested = self.nested_funcs.get(callee.id)
                        if nested is not None:
                            names = [
                                a.arg for a in _positional_params(nested.args)
                            ]
                            for i, arg in enumerate(node.args):
                                if i < len(names) and self._expr_taint(arg):
                                    if names[i] not in self.tainted:
                                        self.tainted.add(names[i])
                                        changed = True
            # Refresh nested return slots.
            for name, nested in self.nested_funcs.items():
                slots = self._return_slots(nested)
                if slots != self.nested_returns.get(name):
                    self.nested_returns[name] = slots
                    changed = True

    def _return_slots(self, nested: ast.AST) -> List[bool]:
        slots: List[bool] = []
        for node in _walk_function_body(nested):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Tuple):
                    current = [
                        self._bare_taint(element)
                        for element in node.value.elts
                    ]
                else:
                    current = [self._bare_taint(node.value)]
                if not slots:
                    slots = current
                else:
                    if len(slots) != len(current):
                        slots = [any(slots) or any(current)]
                    else:
                        slots = [a or b for a, b in zip(slots, current)]
        return slots

    def _bare_taint(self, node: ast.AST) -> bool:
        """Taint of a return expression; container literals absorb it."""
        if isinstance(node, (ast.Dict, ast.List, ast.Set)):
            return False  # values escape as keyed/positional data
        return self._expr_taint(node)

    # -- use validation ------------------------------------------------

    def analyze(self) -> _TaintResult:
        self._propagate()
        if not self.tainted:
            return _TaintResult("waived")
        self._validate(self.func, top_level=True)
        if self.violation:
            return _TaintResult("kept")
        if self.deps:
            return _TaintResult("conditional", self.deps)
        return _TaintResult("waived")

    def _validate(self, root: ast.AST, top_level: bool) -> None:
        for node in ast.walk(root):
            if isinstance(node, (ast.If, ast.While)):
                if self._expr_taint(node.test):
                    self.violation = True
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._expr_taint(node.iter):
                    self.violation = True
            elif isinstance(node, ast.Subscript):
                if self._expr_taint(node.slice):
                    self.violation = True
            elif isinstance(node, ast.Return) and node.value is not None:
                if self._bare_taint(node.value) and self._returns_from_top(
                    node
                ):
                    # A bare tainted value escaping the whole unit:
                    # callers outside the unit are invisible here.
                    self.violation = True
            elif isinstance(node, ast.Call):
                self._validate_call(node)

    def _returns_from_top(self, ret: ast.Return) -> bool:
        """Whether a return belongs to the top-level def (not a closure)."""
        for nested in self.nested_funcs.values():
            for node in ast.walk(nested):
                if node is ret:
                    return False
        return True

    def _validate_call(self, node: ast.Call) -> None:
        tainted_pos = [
            i for i, arg in enumerate(node.args) if self._expr_taint(arg)
        ]
        tainted_kw = [
            kw.arg
            for kw in node.keywords
            if kw.arg is not None and self._expr_taint(kw.value)
        ]
        if not tainted_pos and not tainted_kw:
            return
        callee = node.func
        # Nested functions: their own uses are validated in this unit.
        if isinstance(callee, ast.Name) and callee.id in self.nested_funcs:
            return
        # Reporting builtins.
        if isinstance(callee, ast.Name) and callee.id in _REPORTING_BUILTINS:
            return
        # Exceptions carry timing text in their message.
        if isinstance(callee, ast.Name) and callee.id.endswith("Error"):
            return
        # Container/formatting methods on local receivers.
        if isinstance(callee, ast.Attribute) and isinstance(
            callee.value, (ast.Name, ast.Constant, ast.JoinedStr)
        ):
            dotted = qualified_name(callee, self.aliases)
            if dotted is None and callee.attr in _SINK_METHODS:
                return
        # Timing-named keyword arguments are record-constructor fields.
        remaining_kw = [
            kw
            for kw in tainted_kw
            if not any(marker in kw.lower() for marker in _REPORTING_KEYWORDS)
        ]
        if not tainted_pos and not remaining_kw:
            return
        # Everything else: allowed only if the callee turns out to be a
        # recorder (no RNG, no clocks, no shared-state writes) — the
        # project pass decides using the callee's summary.
        dotted = qualified_name(callee, self.aliases)
        if dotted is not None:
            self.deps.add(dotted)
        elif isinstance(callee, ast.Name):
            self.deps.add(callee.id)
        elif isinstance(callee, ast.Attribute):
            self.deps.add(callee.attr)
        else:
            self.violation = True


# ----------------------------------------------------------------------
# module summary construction
# ----------------------------------------------------------------------


def build_module_summary(
    source: str, path: str, tree: Optional[ast.AST] = None
) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` for one parsed file."""
    if tree is None:
        tree = ast.parse(source, filename=path)
    module = module_name_for_path(path)
    aliases = resolve_imports(tree)
    _add_relative_aliases(aliases, tree, module, path)
    marker_lines = _fork_entry_lines(source)

    module_globals: Dict[str, bool] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    module_globals[target.id] = _is_mutable_value(node.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            mutable = node.value is not None and _is_mutable_value(node.value)
            module_globals[node.target.id] = mutable

    classes: Dict[str, List[str]] = {}
    class_mutable_attrs: Dict[str, List[str]] = {}
    class_signatures: Dict[str, Dict[str, List[str]]] = {}
    functions: Dict[str, FunctionSummary] = {}

    def extract_function(
        func: ast.AST,
        qualname: str,
        class_name: Optional[str],
        enclosing: Dict[str, Optional[str]],
        unit_result: Optional[_TaintResult],
    ) -> None:
        if unit_result is None and _unit_has_waivable_clock(func, aliases):
            # One reporting-only verdict per top-level unit; nested
            # functions (closures) share it.
            unit_result = _ClockTaint(func, aliases).analyze()
        extractor = _FunctionExtractor(
            func,
            qualname,
            module,
            path,
            class_name,
            aliases,
            module_globals,
            enclosing,
            marker_lines,
        )
        summary = extractor.extract()
        if unit_result is not None and summary.clock_reads:
            summary.clock_reads = _apply_clock_verdict(
                summary.clock_reads, unit_result
            )
        functions[qualname] = summary

        child_bindings = dict(enclosing)
        for name, ctor in _ctor_assignments(func, aliases).items():
            child_bindings[name] = ctor
        for stmt in ast.walk(func):
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt is not func
                and _is_direct_child_function(func, stmt)
            ):
                extract_function(
                    stmt,
                    f"{qualname}.<locals>.{stmt.name}",
                    class_name,
                    child_bindings,
                    unit_result,
                )

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(node, f"{module}.{node.name}", None, {}, None)
        elif isinstance(node, ast.ClassDef):
            method_names: List[str] = []
            mutable_attrs: List[str] = []
            signatures: Dict[str, List[str]] = {}
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_names.append(stmt.name)
                    signatures[stmt.name] = [
                        a.arg for a in _all_params(stmt.args)
                    ]
                    extract_function(
                        stmt,
                        f"{module}.{node.name}.{stmt.name}",
                        node.name,
                        {},
                        None,
                    )
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name) and _is_mutable_value(
                            stmt.value
                        ):
                            mutable_attrs.append(target.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.value is not None and _is_mutable_value(stmt.value):
                        mutable_attrs.append(stmt.target.id)
            classes[node.name] = method_names
            class_mutable_attrs[node.name] = mutable_attrs
            class_signatures[node.name] = signatures

    return ModuleSummary(
        module=module,
        path=path,
        aliases=aliases,
        module_globals=module_globals,
        classes=classes,
        class_mutable_attrs=class_mutable_attrs,
        class_signatures=class_signatures,
        functions=functions,
    )


def _add_relative_aliases(
    aliases: Dict[str, str], tree: ast.AST, module: str, path: str
) -> None:
    """Absolutize relative imports into the alias map.

    :func:`repro.lint.rules.resolve_imports` deliberately ignores
    relative imports (they never shadow stdlib/numpy, which is all the
    per-file rules care about), but the project pass must follow them
    to build cross-module call edges: ``from ..rng import
    RandomStreams`` in ``repro.experiments.figures`` binds
    ``RandomStreams`` to ``repro.rng.RandomStreams``.
    """
    import pathlib

    is_package = pathlib.Path(path).stem == "__init__"
    parts = module.split(".") if module else []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or not node.level:
            continue
        # level=1 is the containing package; each extra level walks up.
        drop = node.level if not is_package else node.level - 1
        if drop > len(parts):
            continue
        base = parts[: len(parts) - drop] if drop else list(parts)
        if node.module:
            base = base + node.module.split(".")
        if not base:
            continue
        prefix = ".".join(base)
        for alias in node.names:
            local = alias.asname or alias.name
            aliases.setdefault(local, f"{prefix}.{alias.name}")


def _is_direct_child_function(parent: ast.AST, candidate: ast.AST) -> bool:
    """Whether ``candidate`` is nested directly in ``parent`` (not deeper)."""
    for node in _walk_function_body(parent):
        if node is candidate:
            return True
    return False


def _ctor_assignments(
    func: ast.AST, aliases: Dict[str, str]
) -> Dict[str, Optional[str]]:
    """Names assigned from constructor-looking calls in a function body."""
    out: Dict[str, Optional[str]] = {}
    for node in _walk_function_body(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = node.value.func
            ctor: Optional[str] = None
            if isinstance(callee, ast.Name) and callee.id[:1].isupper():
                ctor = aliases.get(callee.id, callee.id)
            elif isinstance(callee, ast.Attribute):
                dotted = qualified_name(callee, aliases)
                if dotted and dotted.rsplit(".", 1)[-1][:1].isupper():
                    ctor = dotted
            for target in node.targets:
                for name in _target_names(target):
                    out[name] = ctor
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in _target_names(target):
                    out.setdefault(name, None)
    return out
